PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint lint-strict compile test bench bench-fast bench-sweep \
	bench-vcache bench-autoscale bench-attribution trace-smoke \
	profile-smoke report-smoke explain-smoke bench-check

check: lint compile test trace-smoke profile-smoke report-smoke explain-smoke

lint:
	$(PYTHON) -m tools.lint src tests benchmarks

# Whole-tree lint under the ratchet (tools included) plus the R9
# injected-drift canary proving the parity analysis is live.
lint-strict:
	$(PYTHON) -m tools.lint src tests benchmarks tools \
		--baseline tools/lint/baseline.json
	$(PYTHON) -m tools.lint.canary

compile:
	$(PYTHON) -m compileall -q src tools tests benchmarks

test:
	RMSSD_SANITIZE=1 $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-fast:
	$(PYTHON) -m pytest benchmarks/bench_fastpath_speedup.py -q -s

# Serving-sweep replay speedup + Fig. 12/13 regeneration through the
# parallel runner, against the committed wall-clock budget.
bench-sweep:
	$(PYTHON) -m pytest benchmarks/bench_sweep_speedup.py -q -s

bench-vcache:
	$(PYTHON) -m pytest benchmarks/bench_vcache_locality.py -q -s

# Flash-crowd autoscaling: the burn-rate controller must meet the p99
# SLA a fixed one-replica fleet violates, on both pipeline paths.
bench-autoscale:
	$(PYTHON) -m pytest benchmarks/bench_ext_autoscale.py -q -s

# Tail-blame attribution across saturation: the p99 tail's blame must
# shift from service to queueing as the flash crowd saturates the
# fleet, with byte-identical explain documents on both paths.
bench-attribution:
	$(PYTHON) -m pytest benchmarks/bench_ext_tail_attribution.py -q -s

# Tiny traced RMC1 run; validates the exported trace/metrics JSON
# (balanced B/E, monotonic timestamps, required spans, schema).
trace-smoke:
	RMSSD_TRACE=1 $(PYTHON) -m repro run rmc1 --backend rm-ssd \
		--requests 2 --rows 64 --no-compute \
		--trace-out /tmp/rmssd_trace_smoke.json \
		--metrics-out /tmp/rmssd_metrics_smoke.json
	PYTHONPATH=src:. $(PYTHON) -m tools.check_trace /tmp/rmssd_trace_smoke.json \
		--require request translate flash_read ev_sum bottom_mlp top_mlp \
		--metrics /tmp/rmssd_metrics_smoke.json

# Tiny profiled RMC1 run; validates the utilization/bottleneck profile
# (schema, utilization in [0,1], busy <= elapsed, trace overlap).
profile-smoke:
	RMSSD_SANITIZE=1 $(PYTHON) -m repro profile rmc1 --backend rm-ssd \
		--requests 2 --batch 1 --rows 64 \
		--profile-out /tmp/rmssd_profile_smoke.json \
		--trace-out /tmp/rmssd_profile_trace_smoke.json
	PYTHONPATH=src:. $(PYTHON) -m tools.check_trace \
		/tmp/rmssd_profile_trace_smoke.json \
		--profile /tmp/rmssd_profile_smoke.json

# Tiny attributed RMC1 run on both pipeline paths; the DES and
# closed-form replay must export byte-identical rmssd-explain/v1
# documents (cmp), validated and cross-checked against the Chrome
# trace of the same run.
explain-smoke:
	RMSSD_SANITIZE=1 $(PYTHON) -m repro explain rmc1 \
		--queries 120 --rows 64 \
		--explain-out /tmp/rmssd_explain_smoke_fast.json \
		--trace-out /tmp/rmssd_explain_trace_smoke.json > /dev/null
	RMSSD_SANITIZE=1 $(PYTHON) -m repro explain rmc1 \
		--queries 120 --rows 64 --no-fastpath \
		--explain-out /tmp/rmssd_explain_smoke_des.json > /dev/null
	cmp /tmp/rmssd_explain_smoke_fast.json /tmp/rmssd_explain_smoke_des.json
	PYTHONPATH=src:. $(PYTHON) -m tools.check_trace \
		/tmp/rmssd_explain_trace_smoke.json \
		--explain /tmp/rmssd_explain_smoke_fast.json

# Tiny serving-report run; validates the windowed timeseries export
# (schema, monotone windows, conservation, SLO section) and
# cross-checks it against the metrics export of the same run.
report-smoke:
	RMSSD_SANITIZE=1 $(PYTHON) -m repro report rmc1 \
		--queries 120 --rows 64 --window-ms 2.0 \
		--timeseries-out /tmp/rmssd_timeseries_smoke.json \
		--metrics-out /tmp/rmssd_report_metrics_smoke.json > /dev/null
	PYTHONPATH=src:. $(PYTHON) -m tools.check_trace \
		--timeseries /tmp/rmssd_timeseries_smoke.json \
		--metrics /tmp/rmssd_report_metrics_smoke.json

# Regenerate the benchmarks and diff them against the committed
# BENCH_*.json baselines with per-metric tolerances (see
# tools/bench_compare.py).  Slow: re-runs the full DES speedup bench.
# To refresh baselines instead, run bench-fast/bench-vcache and commit
# the rewritten BENCH_*.json (see docs/performance.md).
bench-check: bench-fast bench-sweep bench-vcache bench-autoscale \
		bench-attribution
	git show HEAD:BENCH_fastpath.json > /tmp/rmssd_bench_fastpath_base.json
	git show HEAD:BENCH_sweep.json > /tmp/rmssd_bench_sweep_base.json
	git show HEAD:BENCH_vcache.json > /tmp/rmssd_bench_vcache_base.json
	git show HEAD:BENCH_autoscale.json > /tmp/rmssd_bench_autoscale_base.json
	git show HEAD:BENCH_attribution.json > /tmp/rmssd_bench_attribution_base.json
	PYTHONPATH=src:. $(PYTHON) -m tools.bench_compare \
		--baseline /tmp/rmssd_bench_fastpath_base.json \
		--fresh BENCH_fastpath.json
	PYTHONPATH=src:. $(PYTHON) -m tools.bench_compare \
		--baseline /tmp/rmssd_bench_sweep_base.json \
		--fresh BENCH_sweep.json
	PYTHONPATH=src:. $(PYTHON) -m tools.bench_compare \
		--baseline /tmp/rmssd_bench_vcache_base.json \
		--fresh BENCH_vcache.json
	PYTHONPATH=src:. $(PYTHON) -m tools.bench_compare \
		--baseline /tmp/rmssd_bench_autoscale_base.json \
		--fresh BENCH_autoscale.json
	PYTHONPATH=src:. $(PYTHON) -m tools.bench_compare \
		--baseline /tmp/rmssd_bench_attribution_base.json \
		--fresh BENCH_attribution.json
