PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint compile test bench bench-fast bench-vcache trace-smoke

check: lint compile test trace-smoke

lint:
	$(PYTHON) -m tools.lint src tests benchmarks

compile:
	$(PYTHON) -m compileall -q src tools tests benchmarks

test:
	RMSSD_SANITIZE=1 $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-fast:
	$(PYTHON) -m pytest benchmarks/bench_fastpath_speedup.py -q -s

bench-vcache:
	$(PYTHON) -m pytest benchmarks/bench_vcache_locality.py -q -s

# Tiny traced RMC1 run; validates the exported trace/metrics JSON
# (balanced B/E, monotonic timestamps, required spans, schema).
trace-smoke:
	RMSSD_TRACE=1 $(PYTHON) -m repro run rmc1 --backend rm-ssd \
		--requests 2 --rows 64 --no-compute \
		--trace-out /tmp/rmssd_trace_smoke.json \
		--metrics-out /tmp/rmssd_metrics_smoke.json
	PYTHONPATH=src:. $(PYTHON) -m tools.check_trace /tmp/rmssd_trace_smoke.json \
		--require request translate flash_read ev_sum bottom_mlp top_mlp \
		--metrics /tmp/rmssd_metrics_smoke.json
