PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint compile test bench bench-fast

check: lint compile test

lint:
	$(PYTHON) -m tools.lint src tests benchmarks

compile:
	$(PYTHON) -m compileall -q src tools tests benchmarks

test:
	RMSSD_SANITIZE=1 $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-fast:
	$(PYTHON) -m pytest benchmarks/bench_fastpath_speedup.py -q -s
