"""Benchmark harness package.

One ``bench_*`` module per paper figure/table, plus ablations and
extensions (see DESIGN.md's experiment index).  Run with::

    pytest benchmarks/ --benchmark-only -s
"""
