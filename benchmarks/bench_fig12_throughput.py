"""Fig. 12 — throughput (QPS) vs batch size, six systems, RMC1-3.

The headline figure.  Shape checks encoded below:

* RM-SSD delivers 20-100x the baseline SSD-S throughput;
* RM-SSD beats RecSSD by 1.5x or more;
* RM-SSD throughput is flat vs batch for embedding-dominated RMC1/2;
* RMC3 throughput grows with batch until ~4 (the MLP-to-embedding
  crossover), then flattens;
* DRAM-only overtakes RM-SSD at large batch on RMC1/2 (vectorized host
  math amortizes), which is the paper's DRAM curve shape;
* RM-SSD-Naive matches RM-SSD on RMC1/2, trails it on RMC3.
"""

import pytest

from benchmarks.conftest import make_requests
from benchmarks.runner import cached_model, run_parallel
from repro.analysis.report import Table, emit
from repro.baselines import (
    DRAMBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
    RMSSDBackend,
    RecSSDBackend,
)

BATCHES = (1, 2, 4, 8, 16, 32)
SYSTEMS = ("SSD-S", "RecSSD", "EMB-VectorSum", "RM-SSD-Naive", "RM-SSD", "DRAM")


def _backend_for(system, config, model):
    if system == "SSD-S":
        return NaiveSSDBackend(model, 0.25)
    if system == "RecSSD":
        return RecSSDBackend(model)
    if system == "EMB-VectorSum":
        return EMBVectorSumBackend(model)
    if system == "RM-SSD-Naive":
        return RMSSDBackend(
            model, config.lookups_per_table, mlp_design="naive", use_des=False
        )
    if system == "RM-SSD":
        return RMSSDBackend(model, config.lookups_per_table, use_des=False)
    if system == "DRAM":
        return DRAMBackend(model)
    raise ValueError(f"unknown system {system!r}")


def fig12_cell(task):
    """One (model, system) cell: QPS per batch size, in batch order."""
    key, system = task
    config, model = cached_model(key)
    backend = _backend_for(system, config, model)
    qps = []
    for batch in BATCHES:
        count = 4 if batch <= 4 else 2
        requests = make_requests(config, batch, count=count)
        qps.append(backend.run(requests, compute=False).qps)
    return qps


def _measure(_models):
    # One task per (model, system); workers rebuild models per process
    # (cached_model), so the session fixture stays unused here.
    tasks = [
        (key, system)
        for key in ("rmc1", "rmc2", "rmc3")
        for system in SYSTEMS
    ]
    rows = run_parallel(fig12_cell, tasks)
    qps = {}
    for (key, system), row in zip(tasks, rows):
        for batch, value in zip(BATCHES, row):
            qps[(key, system, batch)] = value
    return qps


@pytest.mark.benchmark(group="fig12")
def test_fig12_throughput(benchmark, models):
    qps = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    from repro.analysis.charts import line_chart

    for key in ("rmc1", "rmc2", "rmc3"):
        table = Table(
            f"Fig. 12 ({key.upper()}): throughput (QPS) vs batch size",
            ["system", *[str(b) for b in BATCHES]],
        )
        for system in SYSTEMS:
            table.add_row(
                system,
                *[f"{qps[(key, system, b)]:.0f}" for b in BATCHES],
            )
        table.print()
        emit(
            line_chart(
                {s: [qps[(key, s, b)] for b in BATCHES] for s in SYSTEMS},
                [str(b) for b in BATCHES],
                title=f"Fig. 12 ({key.upper()}) shape (log QPS)",
                log=True,
            )
        )

    for key in ("rmc1", "rmc2", "rmc3"):
        rm = {b: qps[(key, "RM-SSD", b)] for b in BATCHES}
        # 20-100x over the baseline SSD (abstract); allow >=10x here
        # since the host-cost calibration is conservative.
        assert rm[8] / qps[(key, "SSD-S", 8)] > 10, key
        # 1.5-15x over RecSSD at matched batch.
        assert rm[8] / qps[(key, "RecSSD", 8)] > 1.3, key
    # Flat vs batch for embedding-dominated models.
    for key in ("rmc1", "rmc2"):
        rm = {b: qps[(key, "RM-SSD", b)] for b in BATCHES}
        assert rm[32] == pytest.approx(rm[1], rel=0.25), key
    # RMC3 grows to the crossover (~4), then flattens.
    rm3 = {b: qps[("rmc3", "RM-SSD", b)] for b in BATCHES}
    assert rm3[4] > 2.5 * rm3[1]
    assert rm3[32] == pytest.approx(rm3[8], rel=0.25)
    # RM-SSD-Naive: equal on embedding-dominated, behind on RMC3.
    assert qps[("rmc1", "RM-SSD-Naive", 8)] == pytest.approx(
        qps[("rmc1", "RM-SSD", 8)], rel=0.25
    )
    assert qps[("rmc3", "RM-SSD", 8)] > 1.5 * qps[("rmc3", "RM-SSD-Naive", 8)]
    # DRAM's vectorized host math overtakes at large batch on RMC1.
    assert qps[("rmc1", "DRAM", 32)] > qps[("rmc1", "RM-SSD", 32)]
    # ...but RM-SSD wins at batch 1 (Fig. 12a's left edge).
    assert qps[("rmc1", "RM-SSD", 1)] > qps[("rmc1", "DRAM", 1)]
