"""Fig. 11 — end-to-end performance of SSD-based recommendation systems.

SSD-S / EMB-MMIO / EMB-PageSum / EMB-VectorSum / DRAM on RMC1-3 with
the emb/mlp/others breakdown.  Key shapes: EMB-VectorSum delivers an
order-of-magnitude speedup over SSD-S everywhere, DRAM stays ahead on
the embedding-dominated models, and EMB-VectorSum overtakes DRAM on
MLP-dominated RMC3 where the host MLP becomes the shared bottleneck.
"""

import pytest

from benchmarks.conftest import make_requests, per_1k_seconds
from repro.analysis.report import Table
from repro.baselines import (
    DRAMBackend,
    EMBMMIOBackend,
    EMBPageSumBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
)

#: Paper values (Fig. 11, seconds per 1K inferences).
PAPER = {
    "rmc1": {"SSD-S": 23.5, "EMB-MMIO": 4.0, "EMB-PageSum": 2.2,
             "EMB-VectorSum": 1.9, "DRAM": 1.4},
    "rmc2": {"SSD-S": 135.4, "EMB-MMIO": 81.4, "EMB-PageSum": 18.5,
             "EMB-VectorSum": 7.9, "DRAM": 3.8},
    "rmc3": {"SSD-S": 9.9, "EMB-MMIO": 5.9, "EMB-PageSum": 2.7,
             "EMB-VectorSum": 1.6, "DRAM": 2.2},
}

SYSTEMS = ("SSD-S", "EMB-MMIO", "EMB-PageSum", "EMB-VectorSum", "DRAM")


def _measure(models):
    results = {}
    for key in ("rmc1", "rmc2", "rmc3"):
        config, model = models[key]
        requests = make_requests(config, batch_size=1, count=6)
        for backend in (
            NaiveSSDBackend(model, 0.25),
            EMBMMIOBackend(model),
            EMBPageSumBackend(model),
            EMBVectorSumBackend(model),
            DRAMBackend(model),
        ):
            results[(key, backend.name)] = backend.run(requests, compute=False)
    return results


@pytest.mark.benchmark(group="fig11")
def test_fig11_end_to_end(benchmark, models):
    results = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Fig. 11: end-to-end s per 1K inferences, emb%/mlp% breakdown "
        "[paper in brackets]",
        ["model", *SYSTEMS],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        cells = []
        for system in SYSTEMS:
            result = results[(key, system)]
            seconds = per_1k_seconds(result)
            emb = result.embedding_ns / result.total_ns
            cells.append(f"{seconds:.1f} (e{emb:.0%}) [{PAPER[key][system]}]")
        table.add_row(key.upper(), *cells)
    table.print()

    for key in ("rmc1", "rmc2", "rmc3"):
        t = {s: per_1k_seconds(results[(key, s)]) for s in SYSTEMS}
        # The in-storage ladder holds end to end.
        assert t["SSD-S"] > t["EMB-MMIO"] > t["EMB-PageSum"] > t["EMB-VectorSum"]
        # "Compared to SSD-S, EMB-VectorSum achieves up to 17x speedup".
        assert t["SSD-S"] / t["EMB-VectorSum"] > 5
    # "It even outperforms the ideal DRAM-only performance in RMC3".
    assert per_1k_seconds(results[("rmc3", "EMB-VectorSum")]) < per_1k_seconds(
        results[("rmc3", "DRAM")]
    )
    # ...but not on the embedding-dominated models.
    assert per_1k_seconds(results[("rmc1", "DRAM")]) < per_1k_seconds(
        results[("rmc1", "EMB-VectorSum")]
    )
    # In RMC3, the MLP dominates EMB-VectorSum's remaining time
    # (Section VI-B: "the MLP layers have become the bottleneck").
    vector_rmc3 = results[("rmc3", "EMB-VectorSum")]
    assert vector_rmc3.mlp_ns > vector_rmc3.embedding_ns
