"""Fig. 13 — latency of 1K batch-1 inferences, five systems, RMC1-3.

Shape checks: RM-SSD cuts latency by >90% vs SSD-S (paper: up to 97%)
and by >40% vs EMB-VectorSum (paper: 42-65%), and sits at or below
RecSSD everywhere (paper: up to 64% reduction).
"""

import pytest

from benchmarks.conftest import make_requests, per_1k_seconds
from benchmarks.runner import cached_model, run_parallel
from repro.analysis.metrics import latency_reduction
from repro.analysis.report import Table, emit
from repro.baselines import (
    DRAMBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
    RMSSDBackend,
    RecSSDBackend,
)

#: Paper values (Fig. 13, seconds per 1K batch-1 inferences).
PAPER = {
    "rmc1": {"SSD-S": 29.2, "DRAM": 1.4},
    "rmc2": {"SSD-S": 135.4, "DRAM": 3.8},
    "rmc3": {"SSD-S": 9.9, "DRAM": 2.7},
}

SYSTEMS = ("SSD-S", "RecSSD", "EMB-VectorSum", "RM-SSD", "DRAM")


def _backend_for(system, config, model):
    if system == "SSD-S":
        return NaiveSSDBackend(model, 0.25)
    if system == "RecSSD":
        return RecSSDBackend(model)
    if system == "EMB-VectorSum":
        return EMBVectorSumBackend(model)
    if system == "RM-SSD":
        return RMSSDBackend(model, config.lookups_per_table, use_des=False)
    if system == "DRAM":
        return DRAMBackend(model)
    raise ValueError(f"unknown system {system!r}")


def fig13_cell(task):
    """One (model, system) cell: seconds per 1K batch-1 inferences."""
    key, system = task
    config, model = cached_model(key)
    requests = make_requests(config, batch_size=1, count=6)
    backend = _backend_for(system, config, model)
    # Latency: unpipelined per-request time.
    if system == "RM-SSD":
        total = 0.0
        for request in requests:
            _, timing = backend.device.infer_batch(request.dense, request.sparse)
            total += timing.latency_ns
        return total / len(requests) * 1000 / 1e9
    return per_1k_seconds(backend.run(requests, compute=False))


def _measure(_models):
    tasks = [
        (key, system)
        for key in ("rmc1", "rmc2", "rmc3")
        for system in SYSTEMS
    ]
    values = run_parallel(fig13_cell, tasks)
    return dict(zip(tasks, values))


@pytest.mark.benchmark(group="fig13")
def test_fig13_latency(benchmark, models):
    seconds = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Fig. 13: latency, s per 1K batch-1 inferences [paper in brackets]",
        ["model", *SYSTEMS],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        cells = []
        for system in SYSTEMS:
            paper = PAPER.get(key, {}).get(system)
            note = f" [{paper}]" if paper is not None else ""
            cells.append(f"{seconds[(key, system)]:.2f}{note}")
        table.add_row(key.upper(), *cells)
    table.print()

    from repro.analysis.charts import bar_chart

    for key in ("rmc1", "rmc2", "rmc3"):
        emit(
            bar_chart(
                list(SYSTEMS),
                [seconds[(key, s)] for s in SYSTEMS],
                title=f"Fig. 13 ({key.upper()}): s per 1K inferences (log)",
                unit="s",
                log=True,
            )
        )

    reductions = {}
    for key in ("rmc1", "rmc2", "rmc3"):
        rm = seconds[(key, "RM-SSD")]
        # Large latency cuts vs the baseline SSD everywhere...
        reductions[key] = latency_reduction(seconds[(key, "SSD-S")], rm)
        assert reductions[key] > 0.75, key
        # "cut down the latency by up to 64% compared with RecSSD".
        assert rm < seconds[(key, "RecSSD")], key
    # ..."up to 97%" at the extreme (the embedding-dominated models).
    assert max(reductions.values()) > 0.9
    # "Compared with EMB-VectorSum, the latency is reduced by 42-65%":
    # holds for RMC1 where the host MLP was a real share of the total.
    # RMC2 is bounded by the shared embedding floor, and RMC3's batch-1
    # latency pays the FPGA's DRAM-streamed bottom layer (both recorded
    # in EXPERIMENTS.md); neither exceeds EMB-VectorSum by much.
    assert latency_reduction(seconds[("rmc1", "EMB-VectorSum")],
                             seconds[("rmc1", "RM-SSD")]) > 0.25
    for key in ("rmc2", "rmc3"):
        assert seconds[(key, "RM-SSD")] < 1.3 * seconds[(key, "EMB-VectorSum")], key
