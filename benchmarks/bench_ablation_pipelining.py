"""Ablation — system-level pipelining (Section IV-D).

The host pre-sends the next small batch's inputs while the device
computes, hiding parameter-transfer and enabling the engines to run
back to back.  This ablation runs the same request stream with
pipelining on and off, for the device pipeline (RM-SSD run_workload)
and for the abstract host pipeline model.
"""

import pytest

from benchmarks.conftest import ROWS_PER_TABLE, make_requests
from repro.analysis.report import Table
from repro.core.device import RMSSD
from repro.host.runtime import HostPipeline
from repro.models import build_model, get_config

MODELS = ("rmc1", "rmc3")


def _measure(models):
    out = {}
    for key in MODELS:
        config, model = models[key]
        requests = make_requests(config, batch_size=2, count=6)
        device = RMSSD(model, config.lookups_per_table, use_des=False)
        dense_batches = [r.dense for r in requests]
        sparse_batches = [r.sparse for r in requests]
        piped = device.run_workload(dense_batches, sparse_batches, pipelined=True)
        serial = device.run_workload(dense_batches, sparse_batches, pipelined=False)
        out[key] = (piped.total_ns, serial.total_ns)
    # The abstract host pipeline: balanced send/compute/receive stages
    # approach 3x; device-bound stages approach (send+recv)/device + 1.
    pipe = HostPipeline(pipelined=True)
    for _ in range(50):
        pipe.add(100, 100, 100)
    out["balanced_speedup"] = pipe.speedup_from_pipelining()
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_system_pipelining(benchmark, models):
    results = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Ablation: system-level pipelining (pre-send of next batch)",
        ["model", "pipelined", "serial", "speedup"],
    )
    for key in MODELS:
        piped, serial = results[key]
        table.add_row(
            key.upper(),
            f"{piped / 1e6:.2f} ms",
            f"{serial / 1e6:.2f} ms",
            f"{serial / piped:.2f}x",
        )
    table.add_row("(balanced 3-stage)", "-", "-",
                  f"{results['balanced_speedup']:.2f}x")
    table.print()

    for key in MODELS:
        piped, serial = results[key]
        assert piped < serial, key
    # RMC3 gains more: its top-MLP stage is a real fraction of the
    # batch time, so overlapping stages pays off.
    gain_rmc1 = results["rmc1"][1] / results["rmc1"][0]
    gain_rmc3 = results["rmc3"][1] / results["rmc3"][0]
    assert gain_rmc3 > gain_rmc1
    # A perfectly balanced 3-stage pipeline approaches 3x.
    assert results["balanced_speedup"] > 2.5
