"""SLA autoscaling under a flash crowd: closed-loop vs fixed fleet.

Serves one seeded flash-crowd arrival trace (0.7x saturation baseline,
a 4x burst for 40% of the run) against two fleets of the same RMC1
pipeline:

* **fixed** — one replica, no controller.  The burst outruns the
  device ~3x, the queue grows for the whole burst window, and the
  run-aggregate p99 blows through the SLA.
* **autoscaled** — the same single replica plus the burn-rate
  :class:`~repro.host.autoscale.Autoscaler`.  The controller alerts on
  a tighter internal threshold (SLA/4, standard burn-rate practice:
  page *before* the customer-visible objective is gone), scales out
  during the burst, and drains back to one replica afterwards.

The payload commits the controller's win — the autoscaled fleet meets
the p99 SLA the fixed fleet violates — and the cluster equivalence
contract: the DES and closed-form replay must export byte-identical
``rmssd-timeseries/v1`` documents, scaling-event log included.

Results land in ``BENCH_autoscale.json`` for the
``tools/bench_compare.py`` gate.  Not part of ``make bench`` (no
``benchmark`` fixture); run via ``make bench-autoscale``.
"""

import json
import time

from repro.analysis.report import Table, emit_json
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.host.autoscale import Autoscaler
from repro.host.cluster_serving import ClusterServingSimulator
from repro.models import build_model, get_config
from repro.obs import MetricsRegistry, Profiler
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.workloads.arrivals import flash_crowd_trace

MODEL = "rmc1"
SEED = 7
DURATION_NS = 3e8
BURST_START_NS = 9e7
BURST_DURATION_NS = 1.2e8
BURST_FACTOR = 4.0
BASE_LOAD = 0.7
SLA_NS = 4e7
QUANTILE = 99.0
#: Burn-rate alerts page on SLA/4: detection delay scales with the
#: alerting threshold, so alerting at the SLA itself would let the
#: backlog grow ~3x past it before the controller reacts.
ALERT_DIVISOR = 4.0
WINDOW_NS = 2e6
MAX_REPLICAS = 6
SCALE_UP_STEP = 2
BALANCER = "jsq"


def _operating_point():
    config = get_config(MODEL)
    model = build_model(config, rows_per_table=64)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    return kernel_search(dec, flash)


def _autoscaler():
    return Autoscaler(
        sla_ns=SLA_NS / ALERT_DIVISOR,
        quantile=QUANTILE,
        window_ns=WINDOW_NS,
        min_replicas=1,
        max_replicas=MAX_REPLICAS,
        scale_up_step=SCALE_UP_STEP,
        epoch_windows=2,
    )


def _serve(result, trace, scaler, fast):
    metrics = MetricsRegistry(window_ns=WINDOW_NS)
    sim = ClusterServingSimulator(
        result.times,
        nbatch=result.nbatch,
        replicas=1,
        balancer=BALANCER,
        autoscaler=scaler,
        metrics=metrics,
        profiler=Profiler(),
    )
    point = sim.serve_trace(trace, fast=fast)
    document = json.dumps(sim.timeseries_document(), sort_keys=True)
    return point, document


def test_autoscale_flash_crowd():
    result = _operating_point()
    replica_qps = result.times.throughput_qps(1e9 / 5.0)
    trace = flash_crowd_trace(
        BASE_LOAD * replica_qps,
        DURATION_NS,
        burst_start_ns=BURST_START_NS,
        burst_duration_ns=BURST_DURATION_NS,
        burst_factor=BURST_FACTOR,
        seed=SEED,
    )
    sla_ns = SLA_NS

    begin = time.perf_counter()
    fixed, fixed_doc = _serve(result, trace, None, fast=False)
    auto, auto_doc = _serve(result, trace, _autoscaler(), fast=False)
    fixed_fast, fixed_fast_doc = _serve(result, trace, None, fast=True)
    auto_fast, auto_fast_doc = _serve(result, trace, _autoscaler(), fast=True)
    wall_s = time.perf_counter() - begin

    # Equivalence first: both fleets must export byte-identical
    # timeseries documents (scaling-event log included) on both paths.
    bitwise = fixed_doc == fixed_fast_doc and auto_doc == auto_fast_doc
    bitwise = bitwise and auto.latencies_ns == auto_fast.latencies_ns  # lint: ok[R2]
    assert bitwise

    # The controller's win: the fixed fleet violates the SLA the
    # autoscaled fleet meets, and the burst really forced a scale-out.
    assert not fixed.meets_sla(sla_ns, QUANTILE)
    assert auto.meets_sla(sla_ns, QUANTILE)
    assert auto.scale_ups >= 1
    assert auto.scale_downs >= 1

    table = Table(
        f"Flash crowd on {MODEL.upper()}: {trace.count} queries, "
        f"{BURST_FACTOR:g}x burst, SLA p{QUANTILE:g} <= {SLA_NS / 1e6:g} ms",
        ["fleet", "p99 ms", "replicas", "SLA"],
    )
    table.add_row(
        "fixed", f"{fixed.p99_ns / 1e6:.2f}",
        f"{fixed.initial_replicas}->{fixed.final_replicas}", "VIOLATED",
    )
    table.add_row(
        "autoscaled", f"{auto.p99_ns / 1e6:.2f}",
        f"{auto.initial_replicas}->{auto.final_replicas}",
        f"ok ({auto.scale_ups} up / {auto.scale_downs} down)",
    )
    table.print()

    emit_json(
        "autoscale",
        {
            "model": MODEL,
            "arrivals": "flash-crowd",
            "queries": trace.count,
            "balancer": BALANCER,
            "sla_ms": SLA_NS / 1e6,
            "quantile": QUANTILE,
            "alert_threshold_ms": SLA_NS / ALERT_DIVISOR / 1e6,
            "window_ms": WINDOW_NS / 1e6,
            "burst_factor": BURST_FACTOR,
            "initial_replicas": 1,
            "max_replicas": MAX_REPLICAS,
            "scale_up_step": SCALE_UP_STEP,
            "fixed": {
                "p99_ms": fixed.p99_ns / 1e6,
                "meets_sla": fixed.meets_sla(sla_ns, QUANTILE),
                "final_replicas": fixed.final_replicas,
            },
            "autoscaled": {
                "p99_ms": auto.p99_ns / 1e6,
                "meets_sla": auto.meets_sla(sla_ns, QUANTILE),
                "scale_ups": auto.scale_ups,
                "scale_downs": auto.scale_downs,
                "final_replicas": auto.final_replicas,
            },
            "bitwise_equal": bitwise,
            "wall_s": wall_s,
        },
    )
