"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one figure or table of the paper.
Models are cached per session (building RMC3's 12 MB of MLP weights and
the scaled-down embedding tables dominates setup time otherwise).

Scale note: embedding tables are materialized at ``ROWS_PER_TABLE``
rows instead of the paper's 30 GB (DESIGN.md records the substitution);
request counts are scaled down and reported per-1K-inference.
"""

import os

import pytest

from repro.models import build_model, get_config

# Sanitizer mode on by default, as in tests/ (observation-only; see
# docs/correctness.md).  Opt out with RMSSD_SANITIZE=0.
os.environ.setdefault("RMSSD_SANITIZE", "1")
from repro.workloads.inputs import RequestGenerator

#: Scaled-down table height used across the harness.
ROWS_PER_TABLE = 8192
#: Requests simulated per measurement (scaled from the paper's 1K).
REQUESTS = 8


@pytest.fixture(scope="session")
def models():
    """All evaluated models, built once."""
    cache = {}
    for key in ("rmc1", "rmc2", "rmc3", "ncf", "wnd"):
        config = get_config(key)
        cache[key] = (config, build_model(config, rows_per_table=ROWS_PER_TABLE, seed=0))
    return cache


@pytest.fixture(scope="session")
def request_streams(models):
    """Batch-1 request streams per model at the default 65% locality."""
    streams = {}
    for key, (config, _model) in models.items():
        gen = RequestGenerator(config, ROWS_PER_TABLE, seed=1)
        streams[key] = gen.requests(REQUESTS, batch_size=1)
    return streams


def make_requests(config, batch_size, count=REQUESTS, hot=0.65, seed=1):
    gen = RequestGenerator(config, ROWS_PER_TABLE, hot_access_fraction=hot, seed=seed)
    return gen.requests(count, batch_size=batch_size)


def per_1k_seconds(result):
    """Scale a RunResult to the paper's 1K-request metric."""
    return result.total_ns / result.requests * 1000 / 1e9
