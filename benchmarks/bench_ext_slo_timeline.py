"""Extension — per-window SLO timeline under a flash crowd.

The serving benchmarks report run-aggregate percentiles, which is how
a flash crowd hides: a two-window overload inside a long compliant run
barely moves the run p99.  This extension drives the serving pipeline
with an explicit flash-crowd arrival pattern (steady Poisson load with
a dense mid-run burst), rolls completions into fixed windows on the
simulated clock, and evaluates the serving-tail SLO per window with
multi-window burn-rate alerting.  The timeline shows what the
aggregate cannot: the exact windows where the tail objective burned
through its budget, and the page/ticket alerts firing there and
nowhere else.
"""

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.host.serving import ServingSimulator
from repro.models import build_model, get_config
from repro.obs import MetricsRegistry, SLOEngine, names
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

MODEL = "rmc1"
#: Windows of steady load before / after the crowd.
STEADY_BATCHES = 60
#: Batches packed into the crowd.
CROWD_BATCHES = 40
#: SLO: per-window p99 under this multiple of the unloaded latency.
SLA_FACTOR = 5.0


def _serving_for(key, window_ns):
    config = get_config(key)
    model = build_model(config, rows_per_table=64)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    metrics = MetricsRegistry(window_ns=window_ns)
    return (
        ServingSimulator(
            result.times,
            nbatch=result.nbatch,
            seed=13,
            metrics=metrics,
            window_ns=window_ns,
        ),
        metrics,
    )


def _flash_crowd_arrivals(serving, rng):
    """Steady Erlang-thinned Poisson at 30% saturation with a dense
    burst (back-to-back batches) injected in the middle."""
    steady_gap_ns = serving.nbatch * 1e9 / (0.3 * serving.saturation_qps)
    crowd_gap_ns = serving.nbatch * 1e9 / (5.0 * serving.saturation_qps)
    gaps = np.concatenate([
        rng.exponential(steady_gap_ns, size=STEADY_BATCHES),
        rng.exponential(crowd_gap_ns, size=CROWD_BATCHES),
        rng.exponential(steady_gap_ns, size=STEADY_BATCHES),
    ])
    arrivals = np.cumsum(gaps) - gaps[0]
    crowd_start_ns = arrivals[STEADY_BATCHES]
    crowd_end_ns = arrivals[STEADY_BATCHES + CROWD_BATCHES - 1]
    return list(arrivals), crowd_start_ns, crowd_end_ns


def _measure():
    probe, _ = _serving_for(MODEL, window_ns=1e9)
    unloaded_ns = probe.offered_load(
        0.01 * probe.saturation_qps, queries=40
    ).p50_ns
    # ~8 batches of steady load per window.
    window_ns = 8 * probe.nbatch * 1e9 / (0.3 * probe.saturation_qps)

    serving, metrics = _serving_for(MODEL, window_ns=window_ns)
    arrivals, crowd_start_ns, crowd_end_ns = _flash_crowd_arrivals(
        serving, np.random.default_rng(29)
    )
    serving.pipeline.run(len(arrivals), arrival_times_ns=arrivals)

    slo = SLOEngine(window_ns)
    slo.objective(
        names.SLO_SERVING_TAIL,
        names.METRIC_SERVING_LATENCY,
        quantile=99.0,
        threshold_ns=SLA_FACTOR * unloaded_ns,
    )
    return {
        "window_ns": window_ns,
        "unloaded_ns": unloaded_ns,
        "crowd_windows": (
            int(crowd_start_ns // window_ns),
            int(crowd_end_ns // window_ns),
        ),
        "report": slo.report_dict(metrics),
    }


@pytest.mark.benchmark(group="extension")
def test_ext_slo_timeline(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    (objective,) = results["report"]["objectives"]
    alerts_by_window = {}
    for alert in objective["alerts"]:
        alerts_by_window.setdefault(alert["window"], []).append(
            alert["severity"]
        )
    crowd_first, crowd_last = results["crowd_windows"]

    table = Table(
        f"Extension ({MODEL.upper()}): per-window p99 vs "
        f"{SLA_FACTOR:.0f}x-unloaded SLO, "
        f"{results['window_ns'] / 1e6:.1f} ms windows "
        f"(crowd spans windows {crowd_first}-{crowd_last})",
        ["window", "batches", "p99 ms", "ok", "alerts"],
    )
    for window in objective["windows"]:
        table.add_row(
            f"{window['index']}",
            f"{window['count']}",
            f"{window['value_ns'] / 1e6:.2f}" if window["count"] else "-",
            "yes" if window["ok"] else "NO",
            ",".join(alerts_by_window.get(window["index"], [])) or "-",
        )
    table.print()

    windows = {w["index"]: w for w in objective["windows"]}
    # The crowd violates the tail objective; the steady lead-in complies.
    violating = [i for i, w in windows.items() if not w["ok"]]
    assert violating, "flash crowd never violated the SLO"
    assert min(violating) >= crowd_first
    # Burn-rate alerting localizes the incident: at least one page or
    # ticket, every alert at/after the crowd onset, none in the lead-in.
    assert objective["alerts"], "violation produced no alerts"
    assert all(a["window"] >= crowd_first for a in objective["alerts"])
    severities = {a["severity"] for a in objective["alerts"]}
    assert severities <= {names.ALERT_PAGE, names.ALERT_TICKET}
