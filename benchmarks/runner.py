"""Process-parallel benchmark runner with deterministic result merge.

The figure benchmarks are embarrassingly parallel — every (model,
system) or (model, sweep-point) cell simulates an independent device —
but ran on one core.  ``run_parallel`` fans the cells out over a
``multiprocessing`` *spawn* pool and merges results **by submission
index**, never by completion order, so the merged output is identical
to the sequential run no matter how the OS schedules the workers.

Workers are plain top-level functions (spawn pickles them by
reference); each bench module defines its own.  Models are rebuilt
per worker process through :func:`cached_model` — the build is
deterministic (same config, rows, seed as the session fixture), so a
worker's cell equals the sequential cell bit for bit.

``RMSSD_BENCH_PROCS`` caps the pool (default: ``os.cpu_count()``);
``RMSSD_BENCH_PROCS=1`` — or a single-core machine — degrades to an
in-process loop over the same tasks, which keeps the merge-order
contract trivially and makes the runner safe under pytest on any box.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, List, Optional, Sequence

from benchmarks.conftest import ROWS_PER_TABLE

from repro.models import build_model, get_config

#: Per-process model cache: spawn workers cannot see the pytest
#: session fixture, so each process builds (once) what it needs.
_MODEL_CACHE = {}


def cached_model(key: str, rows_per_table: int = ROWS_PER_TABLE):
    """(config, model) for ``key``, built once per worker process.

    Same build recipe as the session ``models`` fixture (seed 0), so
    parallel cells see bit-identical weights and tables.
    """
    cache_key = (key, rows_per_table)
    if cache_key not in _MODEL_CACHE:
        config = get_config(key)
        model = build_model(config, rows_per_table=rows_per_table, seed=0)
        _MODEL_CACHE[cache_key] = (config, model)
    return _MODEL_CACHE[cache_key]


def _run_indexed(job):
    """Pool target: tag each result with its submission index."""
    worker, index, task = job
    return index, worker(task)


def default_processes(task_count: int) -> int:
    """Pool size: ``RMSSD_BENCH_PROCS`` or the machine's core count,
    never more than there are tasks."""
    env = os.environ.get("RMSSD_BENCH_PROCS", "").strip()
    limit = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(limit, task_count))


def run_parallel(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    processes: Optional[int] = None,
) -> List[Any]:
    """Map ``worker`` over ``tasks``; results in submission order.

    The pool consumes completions as they happen (``imap_unordered``)
    and the merge re-sorts by submission index, so the output order —
    and therefore everything derived from it — is deterministic.
    """
    tasks = list(tasks)
    if processes is None:
        processes = default_processes(len(tasks))
    if processes <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    jobs = [(worker, index, task) for index, task in enumerate(tasks)]
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes) as pool:
        indexed = list(pool.imap_unordered(_run_indexed, jobs))
    indexed.sort(key=lambda pair: pair[0])
    return [result for _index, result in indexed]


def sleep_echo_task(task):
    """Test worker: sleep, then return the payload.

    Longer sleeps on earlier submissions invert the completion order,
    which is exactly what the determinism test needs the merge to
    survive.
    """
    payload, delay_s = task
    time.sleep(delay_s)
    return payload
