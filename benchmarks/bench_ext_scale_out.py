"""Extension — scaling one model across multiple RM-SSDs.

Shards RMC2 (the heaviest embedding workload: 32 tables x 120 lookups)
across 1-4 devices.  Table sharding divides the embedding time but
runs into the aggregator-MLP and gather floors; replication scales
throughput linearly at N x the flash capacity.  The shape mirrors the
scale-out literature the paper cites: embedding-dominated models are
the ones that shard well.
"""

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.cluster import MODE_REPLICA, MODE_TABLE_SHARD, RMSSDCluster
from repro.models import build_model, get_config

ROWS = 1024
DEVICES = (1, 2, 4)
LOOKUPS = 16  # scaled from 120 to keep the DES fast


def _qps(cluster, config, batch=4, seed=0):
    rng = np.random.default_rng(seed)
    sparse = [
        [list(rng.integers(0, ROWS, size=LOOKUPS)) for _ in range(config.num_tables)]
        for _ in range(batch)
    ]
    dense = rng.standard_normal((batch, config.dense_dim)).astype(np.float32)
    _, timing = cluster.infer_batch(dense, sparse)
    base = batch / (timing.interval_ns / 1e9)
    if cluster.mode == MODE_REPLICA:
        base *= cluster.num_devices
    return base, timing


def _measure():
    config = get_config("rmc2")
    model = build_model(config, rows_per_table=ROWS, seed=0)
    out = {}
    for devices in DEVICES:
        for mode in (MODE_TABLE_SHARD, MODE_REPLICA):
            cluster = RMSSDCluster(
                model, lookups_per_table=LOOKUPS, num_devices=devices, mode=mode
            )
            qps, timing = _qps(cluster, config)
            out[(mode, devices)] = (qps, timing.emb_ns, cluster.total_capacity_bytes)
    return out


@pytest.mark.benchmark(group="extension")
def test_ext_scale_out(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Extension: RMC2 sharded across RM-SSDs",
        ["mode", "devices", "QPS", "emb ms", "flash capacity"],
    )
    for mode in (MODE_TABLE_SHARD, MODE_REPLICA):
        for devices in DEVICES:
            qps, emb_ns, capacity = results[(mode, devices)]
            table.add_row(
                mode, devices, f"{qps:.0f}", f"{emb_ns / 1e6:.2f}",
                f"{capacity / 1e6:.0f} MB",
            )
    table.print()

    # Table sharding: embedding time falls with devices.
    emb = [results[(MODE_TABLE_SHARD, d)][1] for d in DEVICES]
    assert emb[1] < emb[0]
    assert emb[2] < emb[1]
    # Throughput improves with sharding (embedding-dominated model).
    qps_shard = [results[(MODE_TABLE_SHARD, d)][0] for d in DEVICES]
    assert qps_shard[2] > 1.5 * qps_shard[0]
    # Replication: linear throughput, linear capacity cost.
    qps_rep = [results[(MODE_REPLICA, d)][0] for d in DEVICES]
    assert qps_rep[2] == pytest.approx(4 * qps_rep[0], rel=0.05)
    cap_shard = results[(MODE_TABLE_SHARD, 4)][2]
    cap_rep = results[(MODE_REPLICA, 4)][2]
    assert cap_rep == 4 * cap_shard
