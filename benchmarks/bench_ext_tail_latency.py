"""Extension — tail latency under mixed block I/O.

The ISC literature the paper builds on (Kim & Lee, APSys'20) targets
*tail* latency: embedding reads queueing behind bulk block I/O blow up
p99 long before they move the mean.  The discrete-event substrate
makes this measurable: we serve batch-1 inferences with and without a
concurrent block-read stream and report the latency distribution.
"""

import numpy as np
import pytest

from benchmarks.runner import run_parallel
from repro.analysis.metrics import percentile
from repro.analysis.report import Table
from repro.core.device import RMSSD
from repro.models import build_model, get_config

ROWS = 2048
INFERENCES = 30
BACKGROUND_PAGES_PER_INFERENCE = 16


def _run(background: bool):
    config = get_config("rmc1")
    model = build_model(config, rows_per_table=ROWS, seed=0)
    device = RMSSD(model, lookups_per_table=8)
    rng = np.random.default_rng(5)
    latencies = []
    for i in range(INFERENCES):
        if background:
            lbas = rng.integers(0, 1024, size=BACKGROUND_PAGES_PER_INFERENCE)
            device.start_background_block_reads([int(l) for l in lbas])
        sparse = [
            [list(rng.integers(0, ROWS, size=8)) for _ in range(config.num_tables)]
        ]
        dense = rng.standard_normal((1, config.dense_dim)).astype(np.float32)
        _, timing = device.infer_batch(dense, sparse)
        latencies.append(timing.latency_ns)
    return latencies


def _measure():
    # The clean and mixed streams simulate independent devices, so
    # they fan out as two runner tasks (merged in submission order).
    clean, mixed = run_parallel(_run, (False, True))
    return {"clean": clean, "mixed": mixed}


@pytest.mark.benchmark(group="extension")
def test_ext_tail_latency_under_block_io(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Extension: inference latency with concurrent block I/O (us)",
        ["workload", "p50", "p95", "p99", "max"],
    )
    for name in ("clean", "mixed"):
        lat = results[name]
        table.add_row(
            name,
            f"{percentile(lat, 50) / 1e3:.0f}",
            f"{percentile(lat, 95) / 1e3:.0f}",
            f"{percentile(lat, 99) / 1e3:.0f}",
            f"{max(lat) / 1e3:.0f}",
        )
    table.print()

    clean, mixed = results["clean"], results["mixed"]
    # Block I/O pushes the whole distribution right...
    assert percentile(mixed, 50) > percentile(clean, 50)
    # ...and the tail grows at least as much as the median.
    p99_growth = percentile(mixed, 99) / percentile(clean, 99)
    p50_growth = percentile(mixed, 50) / percentile(clean, 50)
    assert p99_growth >= 0.9 * p50_growth
    # The clean distribution is tight: the vector path has no
    # cache-miss bimodality (p99 within 2x of p50).
    assert percentile(clean, 99) < 2.0 * percentile(clean, 50)
