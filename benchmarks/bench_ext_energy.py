"""Extension — energy per inference.

Quantifies the power argument of Section III-B3: the naive SSD path
spends most of its energy moving redundant pages over the flash bus
and PCIe and burning host-CPU static power while it waits; RM-SSD
senses the same flash cells but moves two orders of magnitude fewer
bytes and computes on a 2 W FPGA.
"""

import pytest

from benchmarks.conftest import ROWS_PER_TABLE, make_requests
from repro.analysis.energy import EnergyModel, naive_ssd_energy, rmssd_energy
from repro.analysis.report import Table
from repro.baselines import NaiveSSDBackend, RMSSDBackend
from repro.models import build_model, get_config

MODELS = ("rmc1", "rmc2", "rmc3")


def _measure(models):
    out = {}
    for key in MODELS:
        config, model = models[key]
        requests = make_requests(config, batch_size=1, count=6)
        macs = sum(r * c for r, c in model.fc_shapes_bottom()) + sum(
            r * c for r, c in model.fc_shapes_top()
        )
        vectors = config.lookups_per_inference

        ssd_backend = NaiveSSDBackend(model, 0.25)
        ssd_result = ssd_backend.run(requests, compute=False)
        miss_pages = (
            ssd_backend.costs.readahead_pages
            * ssd_backend.page_cache.misses
            // ssd_result.requests
        )
        hit_bytes = 4096 * ssd_backend.page_cache.hits // ssd_result.requests
        ssd_elapsed = ssd_result.total_ns / ssd_result.inferences / 1e9
        ssd_energy = naive_ssd_energy(
            macs, miss_pages, hit_bytes, config.ev_size, vectors, ssd_elapsed
        )

        rm_backend = RMSSDBackend(model, config.lookups_per_table, use_des=False)
        rm_result = rm_backend.run(requests, compute=False)
        rm_elapsed = rm_result.total_ns / rm_result.inferences / 1e9
        rm_energy = rmssd_energy(
            macs, vectors, config.ev_size, 96, rm_elapsed
        )
        out[key] = (ssd_energy, rm_energy)
    return out


@pytest.mark.benchmark(group="extension")
def test_ext_energy_per_inference(benchmark, models):
    results = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Extension: energy per inference (uJ)",
        ["model", "SSD-S total", "RM-SSD total", "saving",
         "SSD-S link uJ", "RM-SSD link uJ"],
    )
    for key in MODELS:
        ssd, rm = results[key]
        table.add_row(
            key.upper(),
            f"{ssd.total_uj:.0f}",
            f"{rm.total_uj:.0f}",
            f"{ssd.total_nj / rm.total_nj:.1f}x",
            f"{ssd.host_link_nj / 1e3:.0f}",
            f"{rm.host_link_nj / 1e3:.0f}",
        )
    table.print()

    for key in MODELS:
        ssd, rm = results[key]
        # RM-SSD saves energy overall...
        assert rm.total_nj < ssd.total_nj, key
        # ...dominated by the host-link traffic it eliminates.
        assert rm.host_link_nj < 0.01 * ssd.host_link_nj, key
        # The FPGA compute itself is cheap relative to data movement.
        assert rm.compute_nj < rm.flash_nj, key
