"""Extension — the quantization trade-off the paper declined.

Section IV-C1 keeps everything FP32 because recommendation models are
accuracy-sensitive.  This extension quantifies the choice: int8 weight
quantization of the MLP engine would cut its LUT/DSP/BRAM bill by
~3-4x, but perturbs the CTR outputs and *re-orders recommendation
rankings* — the failure mode that matters for a ranking model even when
absolute errors look small.
"""

import numpy as np
import pytest

from benchmarks.conftest import ROWS_PER_TABLE
from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.models import build_model, get_config
from repro.models.quantize import (
    compare_outputs,
    int8_resource_estimate,
    quantize_dlrm,
)
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.workloads.inputs import RequestGenerator

MODELS = ("rmc1", "rmc2", "rmc3")
SAMPLES = 64


def _measure():
    out = {}
    for key in MODELS:
        config = get_config(key)
        model = build_model(config, rows_per_table=ROWS_PER_TABLE, seed=3)
        quantized = quantize_dlrm(model)
        generator = RequestGenerator(config, ROWS_PER_TABLE, seed=4)
        request = generator.request(batch_size=SAMPLES)
        reference = model.forward(request.dense, request.sparse)
        q_outputs = quantized.forward(request.dense, request.sparse)
        report = compare_outputs(reference, q_outputs)

        dec = decompose_model(model, config.lookups_per_table)
        flash = flash_read_cycles(
            dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
            config.ev_size,
        )
        fp32 = kernel_search(dec, flash).resources
        int8 = int8_resource_estimate(fp32)
        out[key] = (report, fp32, int8)
    return out


@pytest.mark.benchmark(group="extension")
def test_ext_quantization_tradeoff(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Extension: int8 MLP quantization — accuracy cost vs resource saving",
        ["model", "max |dCTR|", "mean |dCTR|", "rank flips",
         "LUT fp32->int8", "DSP fp32->int8"],
    )
    for key in MODELS:
        report, fp32, int8 = results[key]
        table.add_row(
            key.upper(),
            f"{report.max_abs_error:.2e}",
            f"{report.mean_abs_error:.2e}",
            f"{report.flipped_rankings}/{report.samples * (report.samples - 1) // 2}"
            f" ({report.flip_rate:.2%})",
            f"{fp32.lut} -> {int8['lut']}",
            f"{fp32.dsp} -> {int8['dsp']}",
        )
    table.print()

    for key in MODELS:
        report, fp32, int8 = results[key]
        # Quantization is not free: outputs move measurably.
        assert report.max_abs_error > 1e-6, key
        # ...but it is a *rounding* error, not a collapse.
        assert report.max_abs_error < 0.5, key
        # The resource saving the paper left on the table.
        assert int8["lut"] <= fp32.lut / 3, key
        assert int8["dsp"] <= fp32.dsp, key
    # The deeper the MLP, the more the error compounds.
    assert results["rmc3"][0].mean_abs_error >= results["rmc1"][0].mean_abs_error / 10
