"""Fig. 15 — NCF and Wide & Deep: the extreme MLP-dominated models.

One lookup per table, large MLP share.  Shape checks: RM-SSD beats the
baseline SSD by ~two orders of magnitude, beats RecSSD clearly
(paper: 6-15x), beats the all-DRAM version ("the predominant MLP
layers in DRAM can be accelerated by the SSD-side FPGA"), and
RM-SSD-Naive lands within a small factor of RM-SSD (both emulated
points sit near each other in the paper's bars).
"""

import pytest

from benchmarks.conftest import make_requests
from repro.analysis.report import Table
from repro.baselines import (
    DRAMBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
    RMSSDBackend,
    RecSSDBackend,
)

#: Paper values (Fig. 15, QPS x1000).
PAPER = {
    "ncf": {"SSD-S": 2.1, "RecSSD": 15.8, "EMB-VectorSum": 20.0,
            "RM-SSD-Naive": 200.0, "RM-SSD": 232.6, "DRAM": 21.8},
    "wnd": {"SSD-S": 0.3, "RecSSD": 5.3, "EMB-VectorSum": 8.9,
            "RM-SSD-Naive": 12.5, "RM-SSD": 33.3, "DRAM": 10.3},
}

SYSTEMS = ("SSD-S", "RecSSD", "EMB-VectorSum", "RM-SSD-Naive", "RM-SSD", "DRAM")
BATCH = 16


def _measure(models):
    qps = {}
    for key in ("ncf", "wnd"):
        config, model = models[key]
        requests = make_requests(config, BATCH, count=4)
        for backend in (
            NaiveSSDBackend(model, 0.25),
            RecSSDBackend(model),
            EMBVectorSumBackend(model),
            RMSSDBackend(model, config.lookups_per_table, mlp_design="naive",
                         use_des=False),
            RMSSDBackend(model, config.lookups_per_table, use_des=False),
            DRAMBackend(model),
        ):
            qps[(key, backend.name)] = backend.run(requests, compute=False).qps
    return qps


@pytest.mark.benchmark(group="fig15")
def test_fig15_ncf_wnd(benchmark, models):
    qps = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    for key in ("ncf", "wnd"):
        table = Table(
            f"Fig. 15 ({key.upper()}): throughput, KQPS [paper in brackets]",
            ["system", "measured", "paper"],
        )
        for system in SYSTEMS:
            table.add_row(
                system, f"{qps[(key, system)] / 1e3:.1f}", PAPER[key][system]
            )
        table.print()

    for key in ("ncf", "wnd"):
        rm = qps[(key, "RM-SSD")]
        # "outperforms the baseline SSD-S by around 100x".  WnD's gain
        # is bounded here by its DRAM-streamed 6.8 MB first deep layer
        # (per-batch weight restreaming floor; see EXPERIMENTS.md).
        floor = 25 if key == "ncf" else 12
        assert rm / qps[(key, "SSD-S")] > floor, key
        # "Compared with RecSSD, the speedup of 6-15x".
        assert rm / qps[(key, "RecSSD")] > 2, key
        # "It even achieves better performance than the all-DRAM version".
        assert rm > qps[(key, "DRAM")], key
        # MLP acceleration matters beyond the lookup engine alone.
        assert rm > qps[(key, "EMB-VectorSum")], key
