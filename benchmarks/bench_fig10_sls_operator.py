"""Fig. 10 — SLS operator performance across implementations.

(a) Standalone SparseLengthSum time for SSD-S / EMB-MMIO / EMB-PageSum
    / EMB-VectorSum / DRAM on RMC1 (80 lookups/table).
(b) Sensitivity of EMB-VectorSum to the number of lookups per table:
    execution time grows linearly.
"""

import pytest

from benchmarks.conftest import ROWS_PER_TABLE, make_requests, per_1k_seconds
from repro.analysis.report import Table
from repro.baselines import (
    DRAMBackend,
    EMBMMIOBackend,
    EMBPageSumBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
)
from repro.workloads.inputs import RequestGenerator

#: Paper values (Fig. 10a, RMC1, seconds of SLS per 1K inferences).
PAPER_A = {
    "SSD-S": 23.5,
    "EMB-MMIO": 4.0,
    "EMB-PageSum": 2.2,
    "EMB-VectorSum": 1.4,
    "DRAM": 1.0,
}

LOOKUP_SWEEP = (10, 20, 40, 80, 120)


def _measure_a(models):
    config, model = models["rmc1"]
    requests = make_requests(config, batch_size=1, count=6)
    times = {}
    for backend in (
        NaiveSSDBackend(model, 0.25),
        EMBMMIOBackend(model),
        EMBPageSumBackend(model),
        EMBVectorSumBackend(model),
        DRAMBackend(model),
    ):
        result = backend.run(requests, compute=False)
        # Standalone SLS = the embedding components only.
        times[backend.name] = result.embedding_ns / result.requests * 1000 / 1e9
    return times


def _measure_b(models):
    config, model = models["rmc1"]
    times = {}
    for lookups in LOOKUP_SWEEP:
        gen = RequestGenerator(config, ROWS_PER_TABLE, seed=2)
        gen.trace.lookups_per_table = lookups
        requests = gen.requests(4, batch_size=1)
        backend = EMBVectorSumBackend(model)
        result = backend.run(requests, compute=False)
        times[lookups] = result.embedding_ns / result.requests * 1000 / 1e9
    return times


@pytest.mark.benchmark(group="fig10")
def test_fig10a_sls_implementations(benchmark, models):
    times = benchmark.pedantic(_measure_a, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Fig. 10(a): standalone SLS, RMC1, s per 1K inferences "
        "[paper in brackets]",
        ["system", "measured", "paper"],
    )
    for name in ("SSD-S", "EMB-MMIO", "EMB-PageSum", "EMB-VectorSum", "DRAM"):
        table.add_row(name, f"{times[name]:.2f}", PAPER_A[name])
    table.print()

    # The ladder ordering of Section VI-B.
    assert times["SSD-S"] > times["EMB-MMIO"]
    assert times["EMB-MMIO"] > times["EMB-PageSum"]
    assert times["EMB-PageSum"] > times["EMB-VectorSum"]
    # "EMB-VectorSum outperforms the baseline SSD-S by 16x" — an order
    # of magnitude.
    assert times["SSD-S"] / times["EMB-VectorSum"] > 8


@pytest.mark.benchmark(group="fig10")
def test_fig10b_lookup_sensitivity(benchmark, models):
    times = benchmark.pedantic(_measure_b, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Fig. 10(b): EMB-VectorSum vs lookups per table (s per 1K)",
        ["lookups", "seconds"],
    )
    for lookups in LOOKUP_SWEEP:
        table.add_row(lookups, f"{times[lookups]:.2f}")
    table.print()

    # Linear scaling: doubling lookups doubles time (within 15%).
    assert times[20] == pytest.approx(2 * times[10], rel=0.15)
    assert times[40] == pytest.approx(2 * times[20], rel=0.15)
    assert times[80] == pytest.approx(2 * times[40], rel=0.15)
