"""Extension — deadline-aware dynamic batching on RM-SSD.

Sweeps the batching deadline for RMC3 (whose kernel pipeline rewards
batching most: stage times are flat up to II=8 samples) under a
Poisson query stream.  Short deadlines serve mostly singleton batches
and leave the pipeline underfilled; long deadlines fill batches but
tax p99 with queueing delay.  The sweet spot — high throughput at
bounded tail — is the operating point a DeepRecSys-style scheduler
hunts for.
"""

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.device import RMSSD
from repro.host.batching import DynamicBatcher
from repro.models import build_model, get_config

QUERIES = 300
#: Offered load as a fraction of the device's batched saturation QPS.
LOAD_FRACTION = 0.6
#: Deadlines comparable to the inter-arrival time (~0.6 ms at 60% load).
WAITS_US = (0.0, 500.0, 2000.0, 5000.0)


def _measure():
    config = get_config("rmc3")
    model = build_model(config, rows_per_table=512, seed=0)
    device = RMSSD(model, config.lookups_per_table, use_des=False)
    nbatch = device.supported_nbatch
    saturation_qps = nbatch * 1e9 / device.mlp_engine.interval_ns(nbatch)
    qps = LOAD_FRACTION * saturation_qps
    rng = np.random.default_rng(4)
    arrivals = np.cumsum(rng.exponential(1e9 / qps, size=QUERIES)).tolist()

    out = {}
    for wait_us in WAITS_US:
        batcher = DynamicBatcher.from_engine(
            device.mlp_engine, max_batch=nbatch, max_wait_ns=wait_us * 1e3
        )
        result = batcher.run(arrivals)
        out[wait_us] = result
    return out, saturation_qps


@pytest.mark.benchmark(group="extension")
def test_ext_dynamic_batching(benchmark):
    results, saturation = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        f"Extension (RMC3): batching deadline sweep at "
        f"{LOAD_FRACTION:.0%} of saturation ({saturation:.0f} QPS)",
        ["max wait (us)", "mean batch", "achieved QPS", "p50 ms", "p99 ms"],
    )
    for wait_us, result in results.items():
        table.add_row(
            wait_us,
            f"{result.mean_batch_size:.1f}",
            f"{result.qps:.0f}",
            f"{result.latency_percentile_ns(50) / 1e6:.2f}",
            f"{result.latency_percentile_ns(99) / 1e6:.2f}",
        )
    table.print()

    waits = sorted(results)
    # Longer deadlines form bigger batches.
    batch_sizes = [results[w].mean_batch_size for w in waits]
    assert batch_sizes == sorted(batch_sizes)
    # Under load, batching beats singleton service on tail latency:
    # singleton batches can't keep up with the arrival rate, so their
    # queueing delay explodes.
    assert (
        results[waits[-1]].latency_percentile_ns(99)
        < results[0.0].latency_percentile_ns(99)
    )
    # The classic U-shape: an over-patient deadline taxes the tail
    # again relative to the sweet spot.
    p99 = {w: results[w].latency_percentile_ns(99) for w in waits}
    sweet = min(w for w in waits if w > 0)
    assert p99[waits[-1]] > p99[sweet]
