"""Ablation — inter-layer composition (Fig. 9a vs 9b).

Section IV-C3 claims alternating the kernel scan direction of adjacent
layers pipelines them into pairs, cutting the MLP chain time roughly in
half versus the same-scan design.  This ablation evaluates both chain
schedules with the *same* kernels for every model.
"""

import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.compose import chain_cycles, uncomposed_chain_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

MODELS = ("rmc1", "rmc2", "rmc3", "ncf", "wnd")


def _measure():
    out = {}
    for key in MODELS:
        config = get_config(key)
        model = build_model(config, rows_per_table=64)
        dec = decompose_model(model, config.lookups_per_table)
        flash = flash_read_cycles(
            dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
            config.ev_size,
        )
        result = kernel_search(dec, flash)
        composed = 0
        uncomposed = 0
        for chain in (result.model.bottom, result.model.top):
            if chain:
                composed += chain_cycles(chain, result.nbatch)
                uncomposed += uncomposed_chain_cycles(chain, result.nbatch)
        out[key] = (composed, uncomposed)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_interlayer_composition(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Ablation: inter-layer composition (MLP chain cycles)",
        ["model", "same-scan (Fig. 9a)", "alternating (Fig. 9b)", "saving"],
    )
    for key in MODELS:
        composed, uncomposed = results[key]
        saving = 1 - composed / uncomposed if uncomposed else 0.0
        table.add_row(key.upper(), uncomposed, composed, f"{saving:.0%}")
    table.print()

    for key in MODELS:
        composed, uncomposed = results[key]
        if uncomposed == 0:
            continue
        # Composition never hurts, and strictly helps multi-layer chains.
        assert composed <= uncomposed, key
    for key in ("rmc1", "rmc2", "rmc3"):
        composed, uncomposed = results[key]
        assert composed < uncomposed, key
    # The paper's "reduced by half" is the balanced-pair limit: with
    # equal-time adjacent layers the composed chain costs exactly half.
    from repro.fpga.decompose import LayerAssignment
    from repro.fpga.kernel import KernelSize

    balanced = [
        LayerAssignment(f"L{i}", 64, 64, kernel=KernelSize(4, 2))
        for i in range(4)
    ]
    assert chain_cycles(balanced, 1) * 2 == uncomposed_chain_cycles(balanced, 1)
