"""Fig. 4 — embedding vector access pattern.

Regenerates the occurrence histogram and its two headline statistics
for the synthetic Criteo-like trace: the fraction of distinct indices
accessed exactly once (paper: 84.74%) and the share of lookups going
to the hottest indices (paper: top-10K indices take 59.2%).

Scale note: the trace is generated over the scaled-down index space,
so the hot-set share is measured at the equivalent scaled k.
"""

import pytest

from repro.analysis.report import Table
from repro.workloads import TraceGenerator, TraceStatistics

PAPER_UNIQUE_FRACTION = 0.8474
PAPER_TOP10K_SHARE = 0.592

#: Generator sized for statistics (bigger space than the perf benches).
ROWS = 400_000
INFERENCES = 600


def _measure():
    gen = TraceGenerator(
        num_tables=1,
        rows_per_table=ROWS,
        lookups_per_table=80,
        hot_access_fraction=0.59,  # the paper's top-10K share
        seed=7,
    )
    flat = gen.flat_indices(gen.generate(INFERENCES))
    stats = TraceStatistics.from_indices(flat)
    return gen, stats


@pytest.mark.benchmark(group="fig04")
def test_fig04_access_pattern(benchmark):
    gen, stats = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Fig. 4: trace statistics [paper in brackets]",
        ["metric", "measured", "paper"],
    )
    unique = stats.unique_access_fraction()
    hot_share = stats.top_k_share(gen.hot_set_size)
    table.add_row("total lookups", stats.total_lookups, "45,840,617")
    table.add_row("distinct indices", stats.total_indices, "10,131,227")
    table.add_row("accessed-once fraction", f"{unique:.2%}", f"{PAPER_UNIQUE_FRACTION:.2%}")
    table.add_row(
        f"top-{gen.hot_set_size} share", f"{hot_share:.2%}", f"{PAPER_TOP10K_SHARE:.2%}"
    )
    table.print()

    occurrence = Table(
        "Fig. 4 (right table): occurrence -> #indices (head)",
        ["occurrence", "#indices"],
    )
    for occ, count in list(stats.occurrence_table(10).items())[:6]:
        occurrence.add_row(occ, count)
    occurrence.print()

    # Shape checks: cold tail dominated by once-accessed indices; hot
    # head owns the majority of lookups.
    assert unique > 0.60
    assert hot_share == pytest.approx(PAPER_TOP10K_SHARE, abs=0.08)
    # Occurrence histogram is heavy-tailed: #indices falls steeply over
    # the first occurrence counts (Fig. 4's right table).
    head = stats.occurrence_table(3)
    assert head.get(1, 0) > 10 * head.get(2, 1)
    assert head.get(2, 0) >= head.get(3, 0)
