"""Extension — SLA-constrained serving capacity.

The paper opens with SLA requirements but evaluates closed-loop
throughput.  This extension answers the operational question: with
Poisson arrivals, how many QPS can each system sustain while keeping
p99 latency under an SLA?  RM-SSD's tight, cache-free latency
distribution lets it run much closer to its saturation throughput than
the naive SSD path, whose miss-dependent service times force early
over-provisioning.
"""

import pytest

from benchmarks.runner import run_parallel
from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.compose import StageTimes
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.host.serving import ServingSimulator
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

MODELS = ("rmc1", "rmc3")
#: SLA: p99 under 5x the unloaded latency.
SLA_FACTOR = 5.0


def _serving_for(key):
    config = get_config(key)
    model = build_model(config, rows_per_table=64)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    return ServingSimulator(result.times, nbatch=result.nbatch, seed=7), result


def sla_cell(key):
    """One model's sweep + SLA bisection (all points kept)."""
    serving, _result = _serving_for(key)
    sweep = serving.load_sweep(fractions=(0.3, 0.6, 0.9), queries=150)
    unloaded_ns = sweep[0].p50_ns
    search = serving.sla_search(sla_ns=SLA_FACTOR * unloaded_ns, queries=150)
    return (
        serving.saturation_qps,
        sweep,
        search.max_qps,
        unloaded_ns,
        search.points,
    )


def _measure():
    return dict(zip(MODELS, run_parallel(sla_cell, MODELS)))


@pytest.mark.benchmark(group="extension")
def test_ext_sla_serving(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    for key in MODELS:
        saturation, sweep, max_qps, unloaded, probes = results[key]
        table = Table(
            f"Extension ({key.upper()}): RM-SSD latency vs offered load "
            f"(saturation {saturation:.0f} QPS)",
            ["offered QPS", "p50 ms", "p95 ms", "p99 ms"],
        )
        for point in sweep:
            table.add_row(
                f"{point.offered_qps:.0f}",
                f"{point.p50_ns / 1e6:.2f}",
                f"{point.p95_ns / 1e6:.2f}",
                f"{point.p99_ns / 1e6:.2f}",
            )
        table.add_row(
            f"max under SLA (p99 <= {SLA_FACTOR:.0f}x unloaded, "
            f"{len(probes)} probes)",
            f"{max_qps:.0f} QPS", "-", "-",
        )
        table.print()

    for key in MODELS:
        saturation, sweep, max_qps, unloaded, probes = results[key]
        # Latency rises with load.
        assert sweep[-1].p99_ns > sweep[0].p99_ns
        # RM-SSD sustains a large fraction of saturation under the SLA
        # — the tight latency distribution at work.
        assert max_qps > 0.5 * saturation, key
        assert max_qps <= saturation, key
        # The bisection exposes every probe it evaluated (trickle
        # first), so the curve needs no re-simulation.
        assert len(probes) >= 2, key
        assert probes[0].offered_qps == pytest.approx(0.01 * saturation)
