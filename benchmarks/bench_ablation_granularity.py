"""Ablation — read granularity and flash page size.

The vector-grained read strategy's benefit depends on the
vector-to-page size ratio: ``CEV = (EVsize/Psize)*Ttrans + Tflush``.
This ablation sweeps page size (4-32 KB, the range Section III-B cites)
and vector size (64-256 B, the production range), reporting per-read
latency saving and bulk-throughput gain of vector-grained over
page-grained access.
"""

import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import (
    effective_page_bandwidth,
    effective_vector_bandwidth,
)
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

PAGE_SIZES = (4096, 8192, 16384, 32768)
EV_SIZES = (64, 128, 256)


def _measure():
    out = {}
    for page_size in PAGE_SIZES:
        # Tpage grows with page size (transfer portion scales).
        timing = SSDTimingModel(
            page_read_us=20.0 * (0.7 + 0.3 * page_size / 4096),
            page_size=page_size,
        )
        geometry = SSDGeometry(page_size=page_size)
        for ev_size in EV_SIZES:
            latency_saving = 1 - timing.vector_read_ns(ev_size) / timing.page_read_ns
            throughput_gain = effective_vector_bandwidth(
                geometry, timing, ev_size
            ) / effective_page_bandwidth(geometry, timing)
            out[(page_size, ev_size)] = (latency_saving, throughput_gain)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_read_granularity(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Ablation: vector-grained vs page-grained reads",
        ["page size", "EV size", "latency saving", "bulk throughput gain"],
    )
    for page_size in PAGE_SIZES:
        for ev_size in EV_SIZES:
            saving, gain = results[(page_size, ev_size)]
            table.add_row(
                f"{page_size // 1024}K", f"{ev_size}B",
                f"{saving:.0%}", f"{gain:.2f}x",
            )
    table.print()

    # Vector reads always help, and help more on bigger pages (the
    # transfer share grows with page size).
    for page_size in PAGE_SIZES:
        for ev_size in EV_SIZES:
            saving, gain = results[(page_size, ev_size)]
            assert saving > 0
            assert gain > 1.0
    for ev_size in EV_SIZES:
        savings = [results[(p, ev_size)][0] for p in PAGE_SIZES]
        assert savings == sorted(savings), "saving grows with page size"
    # Smaller vectors save more of the transfer.
    for page_size in PAGE_SIZES:
        s64 = results[(page_size, 64)][0]
        s256 = results[(page_size, 256)][0]
        assert s64 >= s256
