"""Ablation — striping across channels and dies.

Section IV-B2 stripes embedding reads "over all flash channels and
dies".  This ablation sweeps the array shape and measures the
embedding-stage throughput ceiling it imposes on RM-SSD (RMC1), on
both the analytic bandwidth model and the discrete-event simulator.
"""

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import effective_vector_bandwidth
from repro.sim import Simulator
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

SHAPES = ((1, 1), (2, 2), (4, 2), (4, 4), (8, 4))
VECTORS = 640  # one RMC1 inference
EV_SIZE = 128


def _geometry(channels, dies):
    return SSDGeometry(
        channels=channels,
        dies_per_channel=dies,
        planes_per_die=2,
        blocks_per_plane=128,
        pages_per_block=64,
    )


def _measure():
    timing = SSDTimingModel()
    out = {}
    for channels, dies in SHAPES:
        geometry = _geometry(channels, dies)
        bev = effective_vector_bandwidth(geometry, timing, EV_SIZE)
        analytic_ns = timing.cycles_to_ns(VECTORS / bev)

        sim = Simulator()
        flash = FlashArray(sim, geometry, timing)
        rng = np.random.default_rng(1)
        pages = rng.integers(0, geometry.total_pages, size=VECTORS)
        slots = geometry.page_size // EV_SIZE
        cols = rng.integers(0, slots, size=VECTORS) * EV_SIZE
        des_ns = flash.run_reads(
            [(int(p), int(c), EV_SIZE) for p, c in zip(pages, cols)], vector=True
        )
        out[(channels, dies)] = (analytic_ns, des_ns)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_striping(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        f"Ablation: array shape vs time to read {VECTORS} x {EV_SIZE}B vectors",
        ["channels x dies", "analytic", "DES", "QPS ceiling (RMC1)"],
    )
    for shape in SHAPES:
        analytic_ns, des_ns = results[shape]
        table.add_row(
            f"{shape[0]} x {shape[1]}",
            f"{analytic_ns / 1e3:.0f} us",
            f"{des_ns / 1e3:.0f} us",
            f"{1e9 / des_ns:.0f}",
        )
    table.print()

    # More parallelism -> faster, monotonically (per the analytic model).
    analytic = [results[s][0] for s in SHAPES]
    assert analytic == sorted(analytic, reverse=True)
    # DES agrees with the analytic model within striping losses.
    for shape in SHAPES:
        analytic_ns, des_ns = results[shape]
        assert des_ns >= 0.95 * analytic_ns, shape
        assert des_ns <= 2.5 * analytic_ns, shape
    # The default 4x2 shape lands near the paper's RMC1 ceiling
    # (~1-1.8 KQPS in Fig. 12a).
    _, des_default = results[(4, 2)]
    assert 500 < 1e9 / des_default < 2500
