"""Table IV — I/O traffic reduction vs the SSD-S baseline.

The paper reports host-link read-traffic reduction factors for RecSSD,
EMB-VectorSum, and RM-SSD on each model.  Shape checks: RecSSD and
EMB-VectorSum tie (both return one pooled vector set per inference,
just with different content — partial vs final sums), and RM-SSD's
factor is another 1-2 orders of magnitude higher (only the MMIO-width
result crosses the link).
"""

import pytest

from benchmarks.conftest import make_requests
from repro.analysis.report import Table, format_si
from repro.baselines import (
    EMBVectorSumBackend,
    NaiveSSDBackend,
    RMSSDBackend,
    RecSSDBackend,
)

#: Paper values (Table IV): traffic reduction factor vs SSD-S.
PAPER = {
    "rmc1": {"RecSSD": 1989, "EMB-VectorSum": 1989, "RM-SSD": 31826},
    "rmc2": {"RecSSD": 1071, "EMB-VectorSum": 1071, "RM-SSD": 137142},
    "rmc3": {"RecSSD": 546, "EMB-VectorSum": 546, "RM-SSD": 10914},
}


def _measure(models):
    # Snapshot/diff windows scope the measurement to the serving run,
    # excluding the table-layout writes each backend issues at
    # construction time.
    factors = {}
    raw = {}
    for key in ("rmc1", "rmc2", "rmc3"):
        config, model = models[key]
        requests = make_requests(config, batch_size=1, count=6)
        baseline = NaiveSSDBackend(model, 0.25)
        before = baseline.stats.snapshot()
        baseline.run(requests, compute=False)
        base_window = baseline.stats.diff(before)
        for backend in (
            RecSSDBackend(model),
            EMBVectorSumBackend(model),
            RMSSDBackend(model, config.lookups_per_table, use_des=False),
        ):
            before = backend.stats.snapshot()
            backend.run(requests, compute=False)
            window = backend.stats.diff(before)
            factors[(key, backend.name)] = window.reduction_factor_vs(
                base_window
            )
            raw[(key, backend.name)] = window.host_read_bytes / len(requests)
        raw[(key, "SSD-S")] = base_window.host_read_bytes / len(requests)
    return factors, raw


@pytest.mark.benchmark(group="table04")
def test_table04_io_traffic_reduction(benchmark, models):
    factors, raw = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Table IV: host read-traffic reduction vs SSD-S "
        "[paper in brackets]",
        ["model", "SSD-S B/inf", "RecSSD", "EMB-VectorSum", "RM-SSD"],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        table.add_row(
            key.upper(),
            format_si(raw[(key, "SSD-S")]),
            f"{factors[(key, 'RecSSD')]:.0f} [{PAPER[key]['RecSSD']}]",
            f"{factors[(key, 'EMB-VectorSum')]:.0f} [{PAPER[key]['EMB-VectorSum']}]",
            f"{factors[(key, 'RM-SSD')]:.0f} [{PAPER[key]['RM-SSD']}]",
        )
    table.print()

    for key in ("rmc1", "rmc2", "rmc3"):
        # All ISC realizations cut traffic by orders of magnitude.
        assert factors[(key, "RecSSD")] > 50, key
        assert factors[(key, "EMB-VectorSum")] > 50, key
        # RecSSD and EMB-VectorSum move the same pooled bytes.
        assert raw[(key, "RecSSD")] == raw[(key, "EMB-VectorSum")], key
        # RM-SSD keeps everything inside: another order of magnitude.
        assert (
            factors[(key, "RM-SSD")] > 5 * factors[(key, "EMB-VectorSum")]
        ), key
    # Per-inference RM-SSD return is about the MMIO width (~64 B) plus
    # the status poll.
    assert raw[("rmc1", "RM-SSD")] < 256
