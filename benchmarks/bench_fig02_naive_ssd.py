"""Fig. 2 — performance of naive SSD deployment.

Regenerates (a)-(c): execution time of 1K (batched) inferences for
SSD-S / SSD-M / DRAM at batch sizes 1, 32, 64 on RMC1-3, and (d)-(f):
the execution-time breakdown.  Shape checks: SSD-S > SSD-M >> DRAM at
every point, SSD-S/DRAM gap largest for RMC2 and smallest for RMC3,
and the SSD deployments' time dominated by the embedding path.
"""

import pytest

from benchmarks.conftest import make_requests, per_1k_seconds
from repro.analysis.report import Table
from repro.baselines import DRAMBackend, NaiveSSDBackend

#: Paper values: seconds per 1K inferences (Fig. 2a-c).
PAPER = {
    ("rmc1", 1): {"SSD-S": 29.2, "SSD-M": 22.1, "DRAM": 1.4},
    ("rmc2", 1): {"SSD-S": 135.4, "SSD-M": 108.5, "DRAM": 3.8},
    ("rmc3", 1): {"SSD-S": 9.9, "SSD-M": 7.7, "DRAM": 2.7},
    ("rmc1", 32): {"SSD-S": 841.4, "SSD-M": 633.9, "DRAM": 1.8},
    ("rmc1", 64): {"SSD-S": 1687.1, "SSD-M": 1281.7, "DRAM": 2.2},
}

BATCHES = (1, 32, 64)


def _measure(models):
    rows = {}
    for key in ("rmc1", "rmc2", "rmc3"):
        config, model = models[key]
        for batch in BATCHES:
            count = 6 if batch == 1 else 2
            requests = make_requests(config, batch, count=count)
            for backend in (
                NaiveSSDBackend(model, 0.25),
                NaiveSSDBackend(model, 0.5),
                DRAMBackend(model),
            ):
                result = backend.run(requests, compute=False)
                rows[(key, batch, backend.name)] = result
    return rows


@pytest.mark.benchmark(group="fig02")
def test_fig02_naive_ssd_deployment(benchmark, models):
    rows = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Fig. 2(a-c): execution time of 1K inferences (s) [paper in brackets]",
        ["model", "batch", "SSD-S", "SSD-M", "DRAM"],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        for batch in BATCHES:
            cells = []
            for system in ("SSD-S", "SSD-M", "DRAM"):
                seconds = per_1k_seconds(rows[(key, batch, system)])
                paper = PAPER.get((key, batch), {}).get(system)
                note = f" [{paper}]" if paper is not None else ""
                cells.append(f"{seconds:.1f}{note}")
            table.add_row(key.upper(), batch, *cells)
    table.print()

    breakdown = Table(
        "Fig. 2(d-f): SSD-S time breakdown at batch 1 (%)",
        ["model", "emb-ssd", "emb-fs", "emb-op", "bot-mlp", "top-mlp", "concat"],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        fractions = rows[(key, 1, "SSD-S")].breakdown_fractions()
        breakdown.add_row(
            key.upper(),
            *(
                f"{fractions.get(c, 0.0):.0%}"
                for c in ("emb-ssd", "emb-fs", "emb-op", "bot-mlp", "top-mlp", "concat")
            ),
        )
    breakdown.print()

    # Shape assertions.
    for key in ("rmc1", "rmc2", "rmc3"):
        for batch in BATCHES:
            ssd_s = per_1k_seconds(rows[(key, batch, "SSD-S")])
            ssd_m = per_1k_seconds(rows[(key, batch, "SSD-M")])
            dram = per_1k_seconds(rows[(key, batch, "DRAM")])
            assert ssd_s > ssd_m > dram, (key, batch)
            assert ssd_s > 3 * dram, (key, batch)
    # Degradation largest for RMC2, smallest for RMC3 (Section III-B1).
    gap = {
        key: per_1k_seconds(rows[(key, 1, "SSD-S")])
        / per_1k_seconds(rows[(key, 1, "DRAM")])
        for key in ("rmc1", "rmc2", "rmc3")
    }
    assert gap["rmc2"] > gap["rmc1"] > gap["rmc3"]
    # The MLP share is largest for MLP-dominated RMC3.
    mlp_share = {
        key: rows[(key, 1, "SSD-S")].mlp_ns / rows[(key, 1, "SSD-S")].total_ns
        for key in ("rmc1", "rmc2", "rmc3")
    }
    assert mlp_share["rmc3"] > mlp_share["rmc1"]
    assert mlp_share["rmc3"] > mlp_share["rmc2"]
