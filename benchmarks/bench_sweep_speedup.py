"""Serving fast-path speedup: closed-form sweep replay vs the DES.

Runs the RMC2 latency-vs-load curve (6 offered loads x 200 Poisson
queries) twice — once through the event-driven pipeline reference,
once through the closed-form replay (``repro/core/pipeline_fast.py``)
— and reports the wall-clock ratio.  The two sweeps must agree
exactly: every :class:`LoadPoint` field including the raw per-batch
latencies, and byte-identical utilization profiles.

The payload also times a full Fig. 12 + Fig. 13 regeneration through
the process-parallel bench runner and holds it to a committed
wall-clock budget (``max_wall_s``), so a slow-path regression in the
bench harness itself fails the gate, not just the sweep.

Results land in ``BENCH_sweep.json`` for automated gates.  Not part of
``make bench`` (no ``benchmark`` fixture); run via ``make bench-sweep``.
``RMSSD_BENCH_SWEEP_QUERIES`` scales the sweep down for quick checks
(the speedup floor is only asserted at full size, where wall-clock
noise is small relative to the DES run).
"""

import os
import time

from benchmarks import bench_fig12_throughput as fig12
from benchmarks import bench_fig13_latency as fig13
from repro.analysis.report import Table, emit_json
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.host.serving import ServingSimulator
from repro.models import build_model, get_config
from repro.obs.profiler import Profiler
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

QUERIES = int(os.environ.get("RMSSD_BENCH_SWEEP_QUERIES", "200"))
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 0.9, 0.95)
#: Wall clock is min-of-N per path: the sweep is deterministic, so the
#: fastest repeat is the least-noise estimate of its true cost.
REPEATS = 3
MIN_SPEEDUP = 10.0
#: Committed budget for regenerating Fig. 12 + Fig. 13 through the
#: parallel runner (measured ~20 s sequential on the reference box).
MAX_WALL_S = 90.0

#: Every LoadPoint field, compared exactly between the two paths.
_POINT_FIELDS = (
    "offered_qps",
    "achieved_qps",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "mean_ns",
    "mean_queue_ns",
    "latencies_ns",
)


def _serving(profiler=None):
    """The RMC2 serving pipeline under the kernel-search operating point."""
    config = get_config("rmc2")
    model = build_model(config, rows_per_table=64)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    return ServingSimulator(
        result.times, nbatch=result.nbatch, seed=7, profiler=profiler
    )


def _timed_sweep(serving, fast):
    begin = time.perf_counter()
    points = serving.load_sweep(fractions=FRACTIONS, queries=QUERIES, fast=fast)
    return points, time.perf_counter() - begin


def sweeps_bitwise_equal(des_points, fast_points) -> bool:
    """Exact equality of every field of every sweep point."""
    if len(des_points) != len(fast_points):
        return False
    return all(
        getattr(des, field) == getattr(fast, field)
        for des, fast in zip(des_points, fast_points)
        for field in _POINT_FIELDS
    )


def profiles_bitwise_equal(tmp_path) -> bool:
    """Byte-identical profiler exports from one sweep on each path."""
    exports = []
    for label, fast in (("des", False), ("fast", True)):
        profiler = Profiler()
        serving = _serving(profiler=profiler)
        serving.load_sweep(fractions=FRACTIONS, queries=QUERIES, fast=fast)
        path = tmp_path / f"profile_{label}.json"
        profiler.export_json(str(path))
        exports.append(path.read_bytes())
    return exports[0] == exports[1]


def test_sweep_speedup(tmp_path):
    serving = _serving()
    # Warm both paths (first-call import/alloc costs are not the
    # steady-state cost of either), then take min-of-REPEATS.
    _timed_sweep(serving, fast=True)
    _timed_sweep(serving, fast=False)
    des_points, des_wall_s = _timed_sweep(serving, fast=False)
    fast_points, fast_wall_s = _timed_sweep(serving, fast=True)
    for _ in range(REPEATS - 1):
        des_wall_s = min(des_wall_s, _timed_sweep(serving, fast=False)[1])
        fast_wall_s = min(fast_wall_s, _timed_sweep(serving, fast=True)[1])

    # Equivalence first — a fast wrong answer is worthless.
    bitwise = sweeps_bitwise_equal(des_points, fast_points)
    bitwise = bitwise and profiles_bitwise_equal(tmp_path)
    assert bitwise

    speedup = des_wall_s / fast_wall_s

    # Full figure regeneration through the parallel runner, against
    # the committed budget.
    begin = time.perf_counter()
    fig12._measure(None)
    fig13._measure(None)
    fig_wall_s = time.perf_counter() - begin
    assert fig_wall_s <= MAX_WALL_S

    table = Table(
        f"Serving sweep, RMC2, {len(FRACTIONS)} loads x {QUERIES} queries "
        f"(min of {REPEATS})",
        ["path", "wall clock"],
    )
    table.add_row("des", f"{des_wall_s * 1e3:.1f}ms")
    table.add_row("fast", f"{fast_wall_s * 1e3:.2f}ms")
    table.add_row("speedup", f"{speedup:.1f}x")
    table.add_row("fig12+13 regen", f"{fig_wall_s:.1f}s / {MAX_WALL_S:.0f}s budget")
    table.print()

    emit_json(
        "sweep",
        {
            "model": "rmc2",
            "queries": QUERIES,
            "fractions": list(FRACTIONS),
            "sweep_points": len(FRACTIONS),
            "repeats": REPEATS,
            "des_wall_s": des_wall_s,
            "fast_wall_s": fast_wall_s,
            "speedup": speedup,
            "bitwise_equal": bitwise,
            "min_speedup": MIN_SPEEDUP,
            "wall_s": fig_wall_s,
            "max_wall_s": MAX_WALL_S,
        },
    )
    if QUERIES >= 200:
        assert speedup >= MIN_SPEEDUP
