"""Table II — settings and performance of the emulated SSD.

Validates that the substrate reproduces the published device model:
the CEV/Cpage cycle formulas, the ~45K IOPS 4K-random-read figure at
queue depth 1, and that the discrete-event simulator's measured bulk
read throughput agrees with the analytic bandwidth model it was
derived from.
"""

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import effective_vector_bandwidth
from repro.sim import Simulator
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def _measure():
    geometry = SSDGeometry()
    timing = SSDTimingModel()
    results = {
        "capacity_gb": geometry.capacity_bytes / (1 << 30),
        "channels": geometry.channels,
        "cpage_cycles": timing.page_read_cycles,
        "cev_64": timing.vector_read_cycles(64),
        "cev_128": timing.vector_read_cycles(128),
        "cev_256": timing.vector_read_cycles(256),
        "qd1_iops": timing.random_read_iops_bound(channels=1),
    }
    # DES cross-check: stream 512 random 128 B vector reads and compare
    # against the analytic bandwidth.
    sim = Simulator()
    flash = FlashArray(sim, geometry, timing)
    rng = np.random.default_rng(0)
    pages = rng.integers(0, geometry.total_pages, size=512)
    cols = rng.integers(0, geometry.page_size // 128, size=512) * 128
    elapsed_ns = flash.run_reads(
        [(int(p), int(c), 128) for p, c in zip(pages, cols)], vector=True
    )
    analytic_ns = timing.cycles_to_ns(
        512 / effective_vector_bandwidth(geometry, timing, 128)
    )
    results["des_bulk_ns"] = elapsed_ns
    results["analytic_bulk_ns"] = analytic_ns
    return results


@pytest.mark.benchmark(group="table02")
def test_table02_emulated_ssd(benchmark):
    r = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Table II: emulated SSD settings [paper values in brackets]",
        ["setting", "value"],
    )
    table.add_row("Capacity", f"{r['capacity_gb']:.0f} GB [32 GB]")
    table.add_row("#Channels", f"{r['channels']} [4]")
    table.add_row("Page read delay Cpage", f"{r['cpage_cycles']:.0f} cycles [4000]")
    table.add_row("EV read delay CEV(64B)", f"{r['cev_64']:.1f} [0.293*64+2800=2818.8]")
    table.add_row("EV read delay CEV(128B)", f"{r['cev_128']:.1f} [2837.5]")
    table.add_row("EV read delay CEV(256B)", f"{r['cev_256']:.1f} [2875.0]")
    table.add_row("4K random read (QD1)", f"{r['qd1_iops'] / 1e3:.1f}K IOPS [45K]")
    table.add_row("DES 512-vector bulk read", f"{r['des_bulk_ns'] / 1e3:.0f} us")
    table.add_row("analytic bulk read", f"{r['analytic_bulk_ns'] / 1e3:.0f} us")
    table.print()

    assert r["capacity_gb"] == pytest.approx(32.0)
    assert r["channels"] == 4
    assert r["cpage_cycles"] == pytest.approx(4000)
    for size in (64, 128, 256):
        assert r[f"cev_{size}"] == pytest.approx(0.29296875 * size + 2800)
    assert 40_000 < r["qd1_iops"] < 50_000
    # The DES tracks the analytic model within striping losses
    # (random addresses do not balance channels perfectly).
    assert r["des_bulk_ns"] >= 0.9 * r["analytic_bulk_ns"]
    assert r["des_bulk_ns"] < 2.2 * r["analytic_bulk_ns"]
