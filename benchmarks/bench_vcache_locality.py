"""Fig. 14 companion — the controller-DRAM vector cache under locality.

Stock RM-SSD is locality-invariant (every lookup walks FTL + flash),
which Fig. 14 shows as a flat line.  The optional hot-vector cache
(``repro.ssd.vcache``) re-introduces locality sensitivity on the
*winning* side: hits are served from controller DRAM and skip flash
entirely, so throughput now rises as the trace gets hotter (low K)
while never dropping below the stock device.  RecSSD is re-measured as
the host/SSD-cache reference point.

Shape checks: RM-SSD+cache degrades monotonically toward stock RM-SSD
as locality drops; stock RM-SSD stays flat; the cache never hurts.

Results land in ``BENCH_vcache.json``.  Not part of ``make bench`` (no
``benchmark`` fixture); run via ``make bench-vcache``.
"""

from pytest import approx

from benchmarks.conftest import ROWS_PER_TABLE
from repro.analysis.charts import line_chart
from repro.analysis.report import Table, emit, emit_json
from repro.baselines import RMSSDBackend, RecSSDBackend
from repro.ssd.vcache import VectorCache
from repro.workloads import hit_ratio_for_k
from repro.workloads.inputs import RequestGenerator

KS = (0.0, 0.3, 1.0, 2.0)
MODEL_KEYS = ("rmc1", "rmc2", "rmc3")
SYSTEMS = ("RecSSD", "RM-SSD", "RM-SSD+cache")
#: Same 1%-of-rows sizing rule as RecSSD's host cache, for a fair fight.
CACHE_FRACTION = 100


def _measure(models):
    qps = {}
    hit_ratios = {}
    for key in MODEL_KEYS:
        config, model = models[key]
        capacity = max(1, sum(t.rows for t in model.tables) // CACHE_FRACTION)
        for k in KS:
            gen = RequestGenerator(
                config, ROWS_PER_TABLE, hot_access_fraction=hit_ratio_for_k(k), seed=5
            )
            requests = gen.requests(5, batch_size=4)

            recssd = RecSSDBackend(model)
            qps[(key, "RecSSD", k)] = recssd.run(requests, compute=False).qps

            stock = RMSSDBackend(model, config.lookups_per_table, use_des=False)
            qps[(key, "RM-SSD", k)] = stock.run(requests, compute=False).qps

            cached = RMSSDBackend(
                model,
                config.lookups_per_table,
                use_des=False,
                vcache=VectorCache(capacity, policy="lru"),
            )
            cached.run(requests, compute=False)  # warm the hot set
            cached.vcache.reset_stats()
            qps[(key, "RM-SSD+cache", k)] = cached.run(requests, compute=False).qps
            hit_ratios[(key, k)] = cached.vcache.hit_ratio
    return qps, hit_ratios


def test_vcache_locality_sweep(models):
    qps, hit_ratios = _measure(models)

    for key in MODEL_KEYS:
        table = Table(
            f"Vector cache ({key.upper()}): QPS vs locality K "
            f"(1% capacity, lru)",
            ["system", *[f"K={k}" for k in KS]],
        )
        for system in SYSTEMS:
            table.add_row(system, *[f"{qps[(key, system, k)]:.0f}" for k in KS])
        table.add_row(
            "cache hit ratio", *[f"{hit_ratios[(key, k)]:.0%}" for k in KS]
        )
        table.print()
        emit(
            line_chart(
                {s: [qps[(key, s, k)] for k in KS] for s in SYSTEMS},
                [f"K={k}" for k in KS],
                height=8,
                title=f"Vector cache ({key.upper()}) shape",
            )
        )

    for key in MODEL_KEYS:
        stock = [qps[(key, "RM-SSD", k)] for k in KS]
        cached = [qps[(key, "RM-SSD+cache", k)] for k in KS]
        ratios = [hit_ratios[(key, k)] for k in KS]
        # Stock RM-SSD stays locality-invariant (Fig. 14's flat line).
        assert max(stock) == approx(min(stock), rel=0.05), key
        # The cache sees more hits as the trace gets hotter...
        for hotter, colder in zip(ratios, ratios[1:]):
            assert hotter >= colder, key
        # ...and turns them into throughput: rises with locality, and
        # never drops below the cache-free device.
        assert cached[0] > cached[-1] * 1.02, key
        for hotter, colder in zip(cached, cached[1:]):
            assert hotter >= colder * 0.98, key
        for with_cache, without in zip(cached, stock):
            assert with_cache >= without * 0.98, key

    emit_json(
        "vcache",
        {
            "ks": list(KS),
            "capacity_rule": f"total_rows / {CACHE_FRACTION}",
            "policy": "lru",
            "rows_per_table": ROWS_PER_TABLE,
            "qps": {
                f"{key}/{system}": [qps[(key, system, k)] for k in KS]
                for key in MODEL_KEYS
                for system in SYSTEMS
            },
            "hit_ratios": {
                key: [hit_ratios[(key, k)] for k in KS] for key in MODEL_KEYS
            },
        },
    )
