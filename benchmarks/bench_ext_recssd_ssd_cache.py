"""Extension — RecSSD's SSD-side cache, measured.

RecSSD's original design includes a second, device-side cache that the
RM-SSD authors could not emulate; they argue (citing RecSSD's own
evaluation) that it "only brings marginal benefits" because the
host-side cache already absorbs the hot set, leaving the device cache
a near-random miss stream.  This extension implements the SSD-side
cache and measures exactly that.
"""

import pytest

from benchmarks.conftest import ROWS_PER_TABLE
from repro.analysis.report import Table
from repro.baselines import RecSSDBackend
from repro.models import build_model, get_config
from repro.workloads.inputs import RequestGenerator

MODELS = ("rmc1", "rmc2")
#: SSD cache sized like RecSSD's: a few MB of controller DRAM.
SSD_CACHE_VECTORS = 4096


def _measure():
    out = {}
    for key in MODELS:
        config = get_config(key)
        model = build_model(config, rows_per_table=ROWS_PER_TABLE, seed=0)
        generator = RequestGenerator(config, ROWS_PER_TABLE, seed=2)
        requests = generator.requests(8, batch_size=2)
        without = RecSSDBackend(model).run(requests, compute=False)
        with_cache_backend = RecSSDBackend(
            model, ssd_cache_vectors=SSD_CACHE_VECTORS
        )
        with_cache = with_cache_backend.run(requests, compute=False)
        ssd_hit_ratio = with_cache_backend.ssd_cache.hit_ratio
        out[key] = (without.qps, with_cache.qps, ssd_hit_ratio)
    return out


@pytest.mark.benchmark(group="extension")
def test_ext_recssd_ssd_side_cache(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Extension: RecSSD with/without the SSD-side cache",
        ["model", "QPS without", "QPS with", "gain", "SSD-cache hit ratio"],
    )
    for key in MODELS:
        without, with_cache, hit = results[key]
        table.add_row(
            key.upper(),
            f"{without:.0f}",
            f"{with_cache:.0f}",
            f"{with_cache / without - 1:+.1%}",
            f"{hit:.1%}",
        )
    table.print()

    for key in MODELS:
        without, with_cache, hit = results[key]
        # The cache never hurts...
        assert with_cache >= without * 0.999, key
        # ...but the benefit is marginal (the paper's claim): the host
        # cache already stripped the locality the device cache needs.
        assert with_cache < 1.25 * without, key
        assert hit < 0.5, key
