"""Table VI — FPGA resource consumption of the MLP Acceleration Engine.

Compares three design points per model through the analytic resource
model: MLP-naive (a shared 16x16 GEMM run layer by layer), MLP (all
layers mapped with default kernels), and MLP-op (kernel-searched).
The absolute counts come from a calibrated analytic model rather than
Vivado synthesis; the *verdicts* the paper draws are asserted:

* the optimized engine costs an order of magnitude less than the
  default mapping for RMC1/2;
* RMC1/2 fit the low-end XC7A200T at every design point's optimized
  configuration;
* RMC3 does **not** fit the XC7A200T with the naive or default
  designs, but the kernel-searched engine does.
"""

import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.kernel import KernelSize
from repro.fpga.resources import engine_resources, naive_gemm_resources
from repro.fpga.search import default_kernels, kernel_search
from repro.fpga.specs import XC7A200T, XCVU9P
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

#: Paper values (Table VI): (LUT, FF, BRAM, DSP).
PAPER = {
    ("rmc1", "MLP-naive"): (154541, 59032, 237, 612),
    ("rmc1", "MLP"): (159338, 60672, 194, 604),
    ("rmc1", "MLP-op"): (19064, 8294, 85, 41),
    ("rmc3", "MLP-naive"): (219671, 82676, 246.5, 612),
    ("rmc3", "MLP"): (284120, 96598, 320, 928),
    ("rmc3", "MLP-op"): (131720, 49277, 221.5, 366),
}


def _design_points(key):
    config = get_config(key)
    model = build_model(config, rows_per_table=64)
    shapes = list(model.fc_shapes_bottom()) + list(model.fc_shapes_top())
    naive = naive_gemm_resources(shapes)

    dec_default = decompose_model(model, config.lookups_per_table)
    if key == "rmc3":
        default_kernels(dec_default, kernel_area_log2=6,
                        first_bottom_kernel=KernelSize(16, 8))
    else:
        default_kernels(dec_default, kernel_area_log2=8)
    default = engine_resources(dec_default)

    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    # The deployable design point targets the low-end part: Rule One's
    # BRAM budget is the XC7A200T's 365 tiles minus a reserve for the
    # Embedding Lookup Engine and controller logic.
    optimized = kernel_search(dec, flash, bram_budget_tiles=280).resources
    return {"MLP-naive": naive, "MLP": default, "MLP-op": optimized}


def _measure():
    return {key: _design_points(key) for key in ("rmc1", "rmc2", "rmc3")}


@pytest.mark.benchmark(group="table06")
def test_table06_resource_consumption(benchmark):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Table VI: analytic resource model [paper synthesis in brackets]",
        ["model", "design", "LUT", "FF", "BRAM", "DSP", "fits XC7A200T"],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        for design in ("MLP-naive", "MLP", "MLP-op"):
            usage = points[key][design]
            paper = PAPER.get((key, design))
            note = (
                f" [{paper[0]}]" if paper else ""
            )
            table.add_row(
                key.upper(),
                design,
                f"{usage.lut}{note}",
                usage.ff,
                f"{usage.bram:.0f}",
                usage.dsp,
                "yes" if XC7A200T.fits(usage) else "NO",
            )
    table.add_row("--", "XC7A200T cap", XC7A200T.luts, XC7A200T.ffs,
                  XC7A200T.brams, XC7A200T.dsps, "-")
    table.print()

    for key in ("rmc1", "rmc2", "rmc3"):
        naive = points[key]["MLP-naive"]
        default = points[key]["MLP"]
        optimized = points[key]["MLP-op"]
        # The kernel search shrinks the engine dramatically.
        assert optimized.lut < default.lut, key
        assert optimized.dsp < default.dsp, key
        # Everything fits the big emulation part.
        for usage in (naive, default, optimized):
            assert XCVU9P.fits(usage), key
    # Near-order-of-magnitude claim for the embedding-dominated models.
    for key in ("rmc1", "rmc2"):
        assert points[key]["MLP"].dsp > 5 * points[key]["MLP-op"].dsp, key
        assert points[key]["MLP"].lut > 4 * points[key]["MLP-op"].lut, key
        assert XC7A200T.fits(points[key]["MLP-op"]), key
    # "RMC3 cannot work with both default settings and naive MLP design"
    # on the low-end part — but the optimized engine can.
    assert not XC7A200T.fits(points["rmc3"]["MLP"])
    assert not XC7A200T.fits(points["rmc3"]["MLP-naive"])
    assert XC7A200T.fits(points["rmc3"]["MLP-op"])
