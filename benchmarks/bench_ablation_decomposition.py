"""Ablation — intra-layer decomposition (Fig. 8).

Splitting the top MLP's first layer lets the bottom chain and the
embedding stage run fully in parallel.  Without it, L0 cannot start
until *both* producers finish, and the whole of L0 sits on the
latency path.  This ablation compares batch latency with and without
the decomposition (kernels held identical) and re-verifies numerical
exactness of the split.
"""

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.core.mlp_engine import dlrm_forward_decomposed
from repro.embedding.pooling import sls_all_tables
from repro.fpga.compose import chain_cycles, stage_times
from repro.fpga.decompose import decompose_model
from repro.fpga.kernel import batch_cycles
from repro.fpga.search import kernel_search
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

MODELS = ("rmc1", "rmc2", "rmc3")


def _latency_without_decomposition(result):
    """Latency when L0 is evaluated whole after both producers finish.

    bottom chain (without Lb) and embedding flash run in parallel; then
    the un-split L0 (Lb+Le recombined at Le's kernel) runs; then the
    top chain.
    """
    model = result.model
    nbatch = result.nbatch
    flash = result.flash_cycles_batch1 * nbatch
    bottom_wo_lb = model.bottom[:-1] if model.bottom else []
    bottom_time = chain_cycles(bottom_wo_lb, nbatch) if bottom_wo_lb else 0
    l0_rows = (model.bottom[-1].rows if model.bottom else 0) + (
        model.emb.rows if model.emb else 0
    )
    l0_cols = model.emb.cols if model.emb else model.bottom[-1].cols
    l0_time = batch_cycles(l0_rows, l0_cols, model.emb.kernel, nbatch)
    top_time = chain_cycles(model.top, nbatch) if model.top else 0
    return max(flash, bottom_time) + l0_time + top_time


def _measure():
    out = {}
    for key in MODELS:
        config = get_config(key)
        model = build_model(config, rows_per_table=64, seed=1)
        dec = decompose_model(model, config.lookups_per_table)
        flash = flash_read_cycles(
            dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
            config.ev_size,
        )
        result = kernel_search(dec, flash)
        with_dec = result.times.latency
        without_dec = _latency_without_decomposition(result)
        out[key] = (with_dec, without_dec, result.nbatch)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_intralayer_decomposition(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Ablation: intra-layer decomposition (batch latency, cycles)",
        ["model", "with (Fig. 8)", "without", "saving"],
    )
    for key in MODELS:
        with_dec, without_dec, nbatch = results[key]
        table.add_row(
            key.upper(), with_dec, without_dec,
            f"{1 - with_dec / without_dec:.0%}",
        )
    table.print()

    for key in MODELS:
        with_dec, without_dec, _ = results[key]
        assert with_dec < without_dec, key
        # And the split is numerically exact — the latency saving is
        # free (also covered by the unit tests).
        config = get_config(key)
        model = build_model(config, rows_per_table=64, seed=2)
        rng = np.random.default_rng(0)
        dense = rng.standard_normal(model.dense_dim).astype(np.float32)
        sparse = [[1, 5, 9]] * config.num_tables
        pooled = sls_all_tables(model.tables, sparse)
        reference = model.forward_one(dense, sparse)
        split = dlrm_forward_decomposed(model, dense, pooled)
        np.testing.assert_allclose(split, reference, rtol=1e-5, atol=1e-6)
