"""Ablation — Rule One's BRAM budget.

Sweeps the on-chip weight budget the kernel search may use for RMC3
(the only evaluated model whose weights do not trivially fit).  As the
budget shrinks, more layers spill to DRAM: the engine's BRAM bill
falls, its DSP/LUT bill rises (DRAM kernels are 16x8 = 16 MAC units),
and the pipeline interval is unchanged as long as the embedding stage
still dominates — which is exactly why the paper can target a low-end
part without losing throughput.
"""

import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import PLACEMENT_DRAM, decompose_model
from repro.fpga.search import kernel_search
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

BUDGETS = (2400, 1024, 280, 64)


def _measure():
    config = get_config("rmc3")
    out = {}
    for budget in BUDGETS:
        model = build_model(config, rows_per_table=64)
        dec = decompose_model(model, config.lookups_per_table)
        flash = flash_read_cycles(
            dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
            config.ev_size,
        )
        result = kernel_search(dec, flash, bram_budget_tiles=budget)
        spilled = [
            l.name for l in result.model.all_layers()
            if l.placement == PLACEMENT_DRAM
        ]
        out[budget] = (result, spilled)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_bram_budget(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Ablation (RMC3): Rule One BRAM budget sweep",
        ["budget (tiles)", "DRAM layers", "BRAM", "DSP", "Nbatch",
         "interval (cyc)"],
    )
    for budget in BUDGETS:
        result, spilled = results[budget]
        table.add_row(
            budget,
            ",".join(spilled) or "(none)",
            f"{result.resources.bram:.0f}",
            result.resources.dsp,
            result.nbatch,
            result.times.interval,
        )
    table.print()

    # Tighter budgets spill monotonically more layers...
    spill_counts = [len(results[b][1]) for b in BUDGETS]
    assert spill_counts == sorted(spill_counts)
    # ...and cut the BRAM bill.
    brams = [results[b][0].resources.bram for b in BUDGETS]
    assert brams[-1] < brams[0]
    # The 10 MB first layer spills at every realistic budget.
    for budget in BUDGETS:
        assert "Lb0" in results[budget][1]
    # Throughput is embedding-bound at the two deployment-relevant
    # budgets (the VU9P-class and the XC7A200T-class points), so
    # spilling between them is free.
    assert (
        results[1024][0].times.interval == results[280][0].times.interval
    )
