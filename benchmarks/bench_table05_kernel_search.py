"""Table V — kernel sizes chosen by the kernel search per layer.

The search must reproduce the published kernel row for RMC1/RMC2 and
RMC3 exactly, including the Rule-Two 16x8 DRAM kernel for RMC3's
spilled first layer, and the searched kernels must achieve the same
pipeline interval as the maximal default kernels (the paper: "the
default and optimized kernel setting can achieve the same
performance").
"""

import pytest

from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.compose import stage_times
from repro.fpga.decompose import decompose_model
from repro.fpga.kernel import KernelSize
from repro.fpga.search import default_kernels, kernel_search
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

#: Paper values (Table V).
PAPER = {
    "rmc1": {"Lb0": "4x2", "Lb1": "2x4", "Lb": "4x2", "Le": "4x2",
             "Lt1": "2x4", "Lt2": "4x1"},
    "rmc2": {"Lb0": "4x2", "Lb1": "2x4", "Lb": "4x2", "Le": "4x2",
             "Lt1": "2x4", "Lt2": "4x1"},
    "rmc3": {"Lb0": "16x8", "Lb1": "8x2", "Lb2": "2x4", "Lb": "4x2",
             "Le": "4x2", "Lt1": "2x4", "Lt2": "4x1"},
}


def _search(key):
    config = get_config(key)
    model = build_model(config, rows_per_table=64)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    return config, model, kernel_search(dec, flash), flash


def _measure():
    out = {}
    for key in ("rmc1", "rmc2", "rmc3"):
        config, model, result, flash = _search(key)
        # The default (maximal) kernel design point for the same model.
        dec_default = decompose_model(model, config.lookups_per_table)
        if key == "rmc3":
            default_kernels(dec_default, kernel_area_log2=6,
                            first_bottom_kernel=KernelSize(16, 8))
        else:
            default_kernels(dec_default, kernel_area_log2=8)
        rate = dec_default.vectors_per_inference / flash
        default_times = stage_times(dec_default, result.nbatch, rate)
        out[key] = (result, default_times)
    return out


@pytest.mark.benchmark(group="table05")
def test_table05_kernel_search(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Table V: kernel size per layer [paper values match exactly]",
        ["model", "layer", "searched", "paper", "Nbatch"],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        result, _ = results[key]
        for name, kernel in result.kernels.items():
            table.add_row(key.upper(), name, str(kernel), PAPER[key][name],
                          result.nbatch)
    table.print()

    for key in ("rmc1", "rmc2", "rmc3"):
        result, default_times = results[key]
        kernels = {name: str(k) for name, k in result.kernels.items()}
        assert kernels == PAPER[key], key
        assert result.feasible, key
        # "the default and optimized kernel setting can achieve the
        # same performance": both are embedding-bound, so intervals tie.
        assert result.times.interval == default_times.interval, key
