"""Tail-blame attribution across saturation: service -> queueing.

Serves a seeded flash-crowd arrival trace (3x burst) against a fixed
two-replica RMC2 fleet at rising base loads and asks the per-request
critical-path attribution (:mod:`repro.obs.critpath`) *why* the p99
tail is slow at each operating point:

* **light load** — the burst stays near fleet capacity, batches mostly
  find idle stages, and the tail's blame is dominated by *service*
  time (embedding + MLP compute).
* **saturation** — the burst outruns the fleet, the backlog grows for
  the whole burst window, and the blame shifts to *queueing*: the p99
  exemplars spend most of their latency waiting, not computing.

The payload commits that shift — ``queue_share_p99`` must rise from
the first load to the last — plus the explain equivalence contract:
the DES and closed-form replay must export byte-identical
``rmssd-explain/v1`` documents at every load.  The highest-load
document (sans per-request records) is embedded under ``explain`` so
``tools/bench_compare.py`` can print the cross-run regression
explainer's attribution lines when the gate fails.

Results land in ``BENCH_attribution.json`` for the
``tools/bench_compare.py`` gate.  Not part of ``make bench`` (no
``benchmark`` fixture); run via ``make bench-attribution``.
"""

import json
import time

from repro.analysis.report import Table, emit_json
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.host.cluster_serving import ClusterServingSimulator
from repro.models import build_model, get_config
from repro.obs import CritPathCollector, build_explain_document
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.workloads.arrivals import flash_crowd_trace

MODEL = "rmc2"
SEED = 11
DURATION_NS = 1.2e9
BURST_START_NS = 3.6e8
BURST_DURATION_NS = 4.8e8
BURST_FACTOR = 3.0
#: Base load as a fraction of fleet capacity (replicas x replica QPS).
#: With the 3x burst the windows peak at ~0.15x, ~1.5x and ~2.55x
#: capacity — from a mostly-idle fleet to deep overload.
LOADS = (0.05, 0.5, 0.85)
REPLICAS = 2
BALANCER = "jsq"
QUANTILE = 99.0
TOP_K = 3


def _operating_point():
    config = get_config(MODEL)
    model = build_model(config, rows_per_table=64)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    return kernel_search(dec, flash)


def _serve(result, trace, load, fast):
    collector = CritPathCollector()
    sim = ClusterServingSimulator(
        result.times,
        nbatch=result.nbatch,
        replicas=REPLICAS,
        balancer=BALANCER,
        critpath=collector,
    )
    point = sim.serve_trace(trace, fast=fast)
    document = build_explain_document(
        collector.requests,
        top_k=TOP_K,
        meta={
            "arrivals": "flash-crowd",
            "balancer": BALANCER,
            "load": load,
            "model": MODEL,
            "queries": trace.count,
            "replicas": REPLICAS,
            "seed": SEED,
        },
    )
    return point, document


def _p99_blame(document):
    """(queue share, service share) of the p99 tail's mean latency."""
    entry = next(q for q in document["quantiles"] if q["q"] == QUANTILE)
    blame = entry["tail"]["blame"]
    queue = blame["dispatch_wait_ns"] + blame["queue_ns"]
    service = blame["emb_ns"] + blame["bot_ns"] + blame["top_ns"]
    return queue, service


def test_tail_attribution_flash_crowd():
    result = _operating_point()
    fleet_qps = REPLICAS * result.times.throughput_qps(1e9 / 5.0)

    begin = time.perf_counter()
    queries, p99s_ns = [], []
    queue_shares, service_shares = [], []
    bitwise = True
    final_document = None
    for load in LOADS:
        trace = flash_crowd_trace(
            load * fleet_qps,
            DURATION_NS,
            burst_start_ns=BURST_START_NS,
            burst_duration_ns=BURST_DURATION_NS,
            burst_factor=BURST_FACTOR,
            seed=SEED,
        )
        point, document = _serve(result, trace, load, fast=False)
        _, fast_document = _serve(result, trace, load, fast=True)
        bitwise = bitwise and json.dumps(
            document, sort_keys=True
        ) == json.dumps(fast_document, sort_keys=True)
        queue_share, service_share = _p99_blame(document)
        queries.append(trace.count)
        p99s_ns.append(point.p99_ns)
        queue_shares.append(queue_share)
        service_shares.append(service_share)
        final_document = document
    wall_s = time.perf_counter() - begin

    # Equivalence first: both paths must export byte-identical explain
    # documents at every load.
    assert bitwise  # lint: ok[R2]

    # The claim: saturation moves the p99 tail's blame from service
    # time to queueing.
    assert queue_shares[-1] > queue_shares[0]

    table = Table(
        f"Flash crowd on {MODEL.upper()}: {BURST_FACTOR:g}x burst, "
        f"{REPLICAS} replicas, p{QUANTILE:g} tail blame",
        ["load", "queries", "p99 ms", "queue", "service"],
    )
    for index, load in enumerate(LOADS):
        table.add_row(
            f"{load:.2f}x", str(queries[index]),
            f"{p99s_ns[index] / 1e6:.2f}",
            f"{queue_shares[index]:.0%}", f"{service_shares[index]:.0%}",
        )
    table.print()

    # Embed the saturated document (sans per-request records) so the
    # bench_compare gate can attribute a failure, not just report it.
    embedded = {
        key: value for key, value in final_document.items()
        if key != "requests"
    }
    emit_json(
        "attribution",
        {
            "model": MODEL,
            "arrivals": "flash-crowd",
            "replicas": REPLICAS,
            "balancer": BALANCER,
            "burst_factor": BURST_FACTOR,
            "quantile": QUANTILE,
            "loads": list(LOADS),
            "queries": queries,
            "p99_ms": [p99 / 1e6 for p99 in p99s_ns],
            "queue_share_p99": queue_shares,
            "service_share_p99": service_shares,
            "bitwise_equal": bitwise,
            "explain": embedded,
            "wall_s": wall_s,
        },
    )
