"""Fig. 3 — read amplification of the SSD-based recommendation system.

Ideal (byte-addressable) traffic is 1x by definition; SSD-S and SSD-M
drag whole pages (plus readahead) through the host for every cache
miss.  Shape checks: SSD-S and SSD-M land within a few percent of each
other (the cold tail dominates misses, so cache size barely matters —
Section III-B2), both an order of magnitude above ideal.
"""

import pytest

from benchmarks.conftest import make_requests
from repro.analysis.report import Table
from repro.baselines import NaiveSSDBackend

#: Paper values (Fig. 3): I/O traffic amplification.
PAPER = {
    "rmc1": {"SSD-S": 25.5, "SSD-M": 24.9},
    "rmc2": {"SSD-S": 26.8, "SSD-M": 17.3},
    "rmc3": {"SSD-S": 27.3, "SSD-M": 26.8},
}


def _measure(models):
    amp = {}
    for key in ("rmc1", "rmc2", "rmc3"):
        config, model = models[key]
        requests = make_requests(config, batch_size=1, count=6)
        for fraction, name in ((0.25, "SSD-S"), (0.5, "SSD-M")):
            backend = NaiveSSDBackend(model, fraction)
            result = backend.run(requests, compute=False)
            amp[(key, name)] = result.stats.read_amplification
    return amp


@pytest.mark.benchmark(group="fig03")
def test_fig03_read_amplification(benchmark, models):
    amp = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    table = Table(
        "Fig. 3: read amplification vs byte-addressable ideal "
        "[paper in brackets]",
        ["model", "Ideal", "SSD-M", "SSD-S"],
    )
    for key in ("rmc1", "rmc2", "rmc3"):
        table.add_row(
            key.upper(),
            "1.0",
            f"{amp[(key, 'SSD-M')]:.1f} [{PAPER[key]['SSD-M']}]",
            f"{amp[(key, 'SSD-S')]:.1f} [{PAPER[key]['SSD-S']}]",
        )
    table.print()

    for key in ("rmc1", "rmc2", "rmc3"):
        # An order of magnitude of amplification, as the paper reports.
        assert amp[(key, "SSD-S")] > 8, key
        assert amp[(key, "SSD-M")] > 8, key
        # Shrinking the cache never reduces amplification.
        assert amp[(key, "SSD-S")] >= amp[(key, "SSD-M")] * 0.98, key
    # dim-32 models (RMC1/RMC3) amplify more than dim-64 RMC2 at equal
    # miss rates (32 vs 16 vectors per page).
    assert amp[("rmc1", "SSD-S")] > amp[("rmc2", "SSD-S")] * 0.9
