"""Fig. 14 — RM-SSD vs RecSSD under varying input-trace locality.

Sweeps the paper's K parameter (K=0, 0.3, 1, 2 -> 80%, 65%, 45%, 30%
hit ratio).  Shape checks: RecSSD's throughput degrades monotonically
as locality drops; RM-SSD's stays flat (its data path has no cache to
miss); and the gap widens at low locality.
"""

import pytest

from benchmarks.conftest import ROWS_PER_TABLE
from benchmarks.runner import cached_model, run_parallel
from repro.analysis.report import Table, emit
from repro.baselines import RMSSDBackend, RecSSDBackend
from repro.workloads import K_TO_HIT_RATIO, hit_ratio_for_k
from repro.workloads.inputs import RequestGenerator

KS = (0.0, 0.3, 1.0, 2.0)
MODEL_KEYS = ("rmc1", "rmc2", "rmc3")


def fig14_cell(task):
    """One (model, K) cell: (RecSSD QPS, RM-SSD QPS)."""
    key, k = task
    config, model = cached_model(key)
    hit = hit_ratio_for_k(k)
    gen = RequestGenerator(config, ROWS_PER_TABLE, hot_access_fraction=hit, seed=5)
    requests = gen.requests(5, batch_size=4)
    recssd = RecSSDBackend(model)
    recssd_qps = recssd.run(requests, compute=False).qps
    rmssd = RMSSDBackend(model, config.lookups_per_table, use_des=False)
    rmssd_qps = rmssd.run(requests, compute=False).qps
    return recssd_qps, rmssd_qps


def _measure(_models):
    tasks = [(key, k) for key in MODEL_KEYS for k in KS]
    cells = run_parallel(fig14_cell, tasks)
    qps = {}
    for (key, k), (recssd_qps, rmssd_qps) in zip(tasks, cells):
        qps[(key, "RecSSD", k)] = recssd_qps
        qps[(key, "RM-SSD", k)] = rmssd_qps
    return qps


@pytest.mark.benchmark(group="fig14")
def test_fig14_locality_sensitivity(benchmark, models):
    qps = benchmark.pedantic(_measure, args=(models,), rounds=1, iterations=1)

    for key in MODEL_KEYS:
        table = Table(
            f"Fig. 14 ({key.upper()}): QPS vs locality K "
            f"(hit ratios {[hit_ratio_for_k(k) for k in KS]})",
            ["system", *[f"K={k}" for k in KS]],
        )
        for system in ("RecSSD", "RM-SSD"):
            table.add_row(
                system, *[f"{qps[(key, system, k)]:.0f}" for k in KS]
            )
        table.print()
        from repro.analysis.charts import line_chart

        emit(
            line_chart(
                {
                    s: [qps[(key, s, k)] for k in KS]
                    for s in ("RecSSD", "RM-SSD")
                },
                [f"K={k}" for k in KS],
                height=8,
                title=f"Fig. 14 ({key.upper()}) shape",
            )
        )

    for key in MODEL_KEYS:
        recssd = [qps[(key, "RecSSD", k)] for k in KS]
        rmssd = [qps[(key, "RM-SSD", k)] for k in KS]
        # RecSSD degrades as locality drops (K rises).
        assert recssd[0] > recssd[-1] * 1.1, key
        for better, worse in zip(recssd, recssd[1:]):
            assert better >= worse * 0.98, key
        # RM-SSD is locality-invariant.
        assert max(rmssd) == pytest.approx(min(rmssd), rel=0.05), key
        # The RM-SSD advantage widens at low locality.
        gap_high = rmssd[0] / recssd[0]
        gap_low = rmssd[-1] / recssd[-1]
        assert gap_low > gap_high, key
