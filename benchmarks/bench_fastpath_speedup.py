"""Fast-path speedup: vectorized replay vs per-read DES processes.

Runs one RMC2-shaped batch (32 tables x 120 lookups x 256 samples =
983 K vector reads by default) through the embedding lookup engine
twice — once on the discrete-event reference, once on the vectorized
fast path — and reports the wall-clock ratio.  The two runs must agree
exactly (same simulated time, bitwise-identical pooled outputs); the
speedup is the point of the exercise.

Results land in ``BENCH_fastpath.json`` for automated gates.  Not part
of ``make bench`` (no ``benchmark`` fixture); run via ``make
bench-fast``.  ``RMSSD_BENCH_FAST_SAMPLES`` scales the batch down for
quick checks.
"""

import os
import time

from pytest import approx

from benchmarks.conftest import make_requests
from repro.analysis.report import Table, emit_json, format_seconds
from repro.core.device import RMSSD

SAMPLES = int(os.environ.get("RMSSD_BENCH_FAST_SAMPLES", "256"))
MIN_SPEEDUP = 10.0


def _run_once(model, config, batch, fast):
    """Fresh device per run so both paths start from identical state."""
    device = RMSSD(model, config.lookups_per_table)
    begin = time.perf_counter()
    lookup = device.lookup_engine.lookup_batch(batch, fast=fast)
    wall_s = time.perf_counter() - begin
    return lookup, wall_s


def test_fastpath_speedup(models):
    config, model = models["rmc2"]
    request = make_requests(config, batch_size=SAMPLES, count=1)[0]
    batch = request.sparse

    fast_lookup, fast_wall_s = _run_once(model, config, batch, fast=True)
    des_lookup, des_wall_s = _run_once(model, config, batch, fast=False)
    assert fast_lookup.path == "fast"
    assert des_lookup.path == "des"
    # Equivalence first — a fast wrong answer is worthless.
    assert fast_lookup.vectors_read == des_lookup.vectors_read
    assert fast_lookup.elapsed_ns == approx(des_lookup.elapsed_ns, rel=0, abs=0)
    assert fast_lookup.pooled.tobytes() == des_lookup.pooled.tobytes()

    speedup = des_wall_s / fast_wall_s

    table = Table(
        f"Fast path vs DES, RMC2, {SAMPLES}-sample batch "
        f"({des_lookup.vectors_read} vector reads)",
        ["path", "wall clock", "simulated"],
    )
    table.add_row("des", f"{des_wall_s:.2f}s", format_seconds(des_lookup.elapsed_ns))
    table.add_row("fast", f"{fast_wall_s:.2f}s", format_seconds(fast_lookup.elapsed_ns))
    table.add_row("speedup", f"{speedup:.1f}x", "-")
    table.print()

    emit_json(
        "fastpath",
        {
            "model": config.name,
            "samples": SAMPLES,
            "vectors_read": des_lookup.vectors_read,
            "des_wall_s": des_wall_s,
            "fast_wall_s": fast_wall_s,
            "speedup": speedup,
            "simulated_ns": des_lookup.elapsed_ns,
            "bitwise_equal": True,
            "min_speedup": MIN_SPEEDUP,
        },
    )
    if SAMPLES >= 256:
        assert speedup >= MIN_SPEEDUP
