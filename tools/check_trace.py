"""Validate exported observability JSON (trace, metrics, profile).

The ``trace-smoke``/``profile-smoke`` gates run a tiny instrumented
inference and pipe the resulting JSON through this checker:

* the trace is valid JSON with a ``traceEvents`` list;
* every track (pid, tid) has balanced ``B``/``E`` events with
  non-decreasing timestamps and proper nesting (an ``E`` always closes
  the most recent open ``B`` of the same name);
* required span names (``--require``) all appear;
* with ``--metrics``, the metrics JSON has the registry schema
  (counters/gauges/histograms/snapshots) and every histogram carries
  the quantile summary fields;
* with ``--profile``, the profile JSON has the ``rmssd-profile/v1``
  schema and is internally consistent: utilizations in [0, 1], every
  resource's busy time <= the run's elapsed time, busy timelines
  sorted and non-overlapping inside [0, elapsed], queue depths
  non-negative, and the bottleneck report well formed;
* with *both* a trace and ``--profile``, the two exports of the same
  run are cross-checked: the profile's busy intervals for span-mapped
  resources (FTL MUX, channel buses, EV Sum) must lie inside the
  union of the corresponding trace spans;
* with ``--timeseries``, the windowed export has the
  ``rmssd-timeseries/v1`` schema and is internally consistent:
  strictly increasing window indices located at ``index * window_ns``,
  per-kind invariants (ordered latency quantiles, gauge min <= last <=
  max, non-negative counter deltas), conservation (window deltas/counts
  sum to each series' total; per-window busy time sums to each
  resource's total busy time; utilizations in [0, 1]), and a
  well-formed ``slo`` section whose alerts reference declared
  objectives inside the evaluated window range.  When ``--metrics`` is
  also given, series totals are cross-checked against the registry
  export's counters and histogram counts;
* with ``--explain``, the critical-path attribution export has the
  ``rmssd-explain/v1`` schema and is internally consistent: every
  request's components sum **exactly** (fixed summation order) to its
  ``latency_ns``, records are in canonical (arrival, replica, batch)
  order, each quantile's tail/blame/exemplars re-derive from the
  records, exemplar latencies are at or above the reported quantile
  value, and blame shares lie in [0, 1] and sum to 1.  With *both* a
  trace and ``--explain``, every explain record must match a ``batch``
  span of the trace (same [arrival, completion) interval).

Exit status 0 on success; 1 with a diagnostic on the first failure.

Usage::

    python -m tools.check_trace trace.json \
        --require translate flash_read ev_sum \
        --metrics metrics.json --profile profile.json \
        --timeseries timeseries.json --explain explain.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

HISTOGRAM_FIELDS = (
    "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "min_ns", "max_ns",
)

PROFILE_SCHEMA = "rmssd-profile/v1"

TIMESERIES_SCHEMA = "rmssd-timeseries/v1"

EXPLAIN_SCHEMA = "rmssd-explain/v1"

#: Fixed summation order defining each explain record's latency
#: (must mirror repro.obs.critpath.COMPONENTS exactly).
EXPLAIN_COMPONENTS = (
    "dispatch_wait_ns", "queue_ns", "emb_ns", "bot_ns", "top_ns",
)

#: Relative slack for float conservation sums (window busy times are
#: exact interval differences re-added in a different order).
CONSERVATION_RTOL = 1e-9

STAGE_KEYS = ("emb", "bot", "top", "io")

#: Slack allowed in the trace/profile cross-check, in nanoseconds:
#: both files derive from the same float quantities, so this only
#: absorbs the µs conversion in the Chrome export.
CROSS_CHECK_TOLERANCE_NS = 1.0


def check_trace(path: str, require: List[str]) -> List[str]:
    """Returns a list of problems (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]

    stacks: dict = {}
    last_ts: dict = {}
    spans = 0
    seen_names = set()
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase not in ("B", "E"):
            problems.append(f"event {index}: unexpected phase {phase!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        name = event.get("name")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index}: missing/invalid ts")
            continue
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"event {index} ({name!r}): ts {ts} goes backwards on "
                f"track {track}"
            )
        last_ts[track] = ts
        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(name)
            seen_names.add(name)
            spans += 1
        else:
            if not stack:
                problems.append(
                    f"event {index}: E for {name!r} with no open span "
                    f"on track {track}"
                )
            elif stack[-1] != name:
                problems.append(
                    f"event {index}: E for {name!r} but innermost open "
                    f"span is {stack[-1]!r} (track {track})"
                )
                stack.pop()
            else:
                stack.pop()
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: {len(stack)} span(s) never closed: {stack}"
            )
    if spans == 0:
        problems.append("trace contains no spans")
    for name in require:
        if name not in seen_names:
            problems.append(f"required span {name!r} missing from trace")
    return problems


def check_metrics(path: str) -> List[str]:
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    for section in ("counters", "gauges", "histograms", "snapshots"):
        if not isinstance(document.get(section), dict):
            problems.append(f"{path}: missing section {section!r}")
    for name, histogram in document.get("histograms", {}).items():
        for field in HISTOGRAM_FIELDS:
            if field not in histogram:
                problems.append(
                    f"{path}: histogram {name!r} missing {field!r}"
                )
    return problems


def check_profile(path: str) -> List[str]:
    """Internal consistency of a ``rmssd-profile/v1`` export."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    if document.get("schema") != PROFILE_SCHEMA:
        return [f"{path}: schema {document.get('schema')!r} is not "
                f"{PROFILE_SCHEMA!r}"]
    elapsed = document.get("elapsed_ns")
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        return [f"{path}: invalid elapsed_ns {elapsed!r}"]
    resources = document.get("resources")
    if not isinstance(resources, dict) or not resources:
        problems.append(f"{path}: no resources profiled")
        resources = {}
    for name, entry in resources.items():
        utilization = entry.get("utilization", -1.0)
        if not 0.0 <= utilization <= 1.0:
            problems.append(
                f"{path}: {name}: utilization {utilization} outside [0, 1]"
            )
        busy = entry.get("busy_ns", -1.0)
        if busy < 0 or busy > elapsed:
            problems.append(
                f"{path}: {name}: busy_ns {busy} outside [0, elapsed="
                f"{elapsed}]"
            )
        intervals = entry.get("busy_intervals", [])
        cursor = 0.0
        covered = 0.0
        for interval in intervals:
            start, end = interval
            if start < cursor or end < start:
                problems.append(
                    f"{path}: {name}: busy timeline not sorted/disjoint "
                    f"at [{start}, {end}]"
                )
                break
            cursor = end
            covered += end - start
        if cursor > elapsed:
            problems.append(
                f"{path}: {name}: busy timeline extends past elapsed "
                f"({cursor} > {elapsed})"
            )
        if not entry.get("intervals_omitted", 0) and intervals:
            # Full timeline exported: it must account for busy_ns.
            if abs(covered - busy) > max(1e-6 * busy, 1e-6):
                problems.append(
                    f"{path}: {name}: timeline covers {covered} ns but "
                    f"busy_ns says {busy}"
                )
        queue = entry.get("queue")
        if queue is not None:
            if queue.get("max_depth", -1) < 0 or queue.get("mean_depth", -1.0) < 0:
                problems.append(f"{path}: {name}: negative queue depth")
    channels = document.get("channels", {})
    for name, entry in channels.items():
        utilization = entry.get("utilization", -1.0)
        if not 0.0 <= utilization <= 1.0:
            problems.append(
                f"{path}: channel group {name}: utilization {utilization} "
                "outside [0, 1]"
            )
    bottleneck = document.get("bottleneck")
    if not isinstance(bottleneck, dict):
        problems.append(f"{path}: missing bottleneck report")
        return problems
    stage = bottleneck.get("bottleneck_stage")
    if stage not in STAGE_KEYS:
        problems.append(f"{path}: bottleneck_stage {stage!r} not in "
                        f"{STAGE_KEYS}")
    slack = bottleneck.get("slack_ns", {})
    for key in STAGE_KEYS:
        if slack.get(key, -1.0) < 0:
            problems.append(f"{path}: negative slack for stage {key!r}")
    invariant = bottleneck.get("invariant", {})
    if not isinstance(invariant.get("holds"), bool):
        problems.append(f"{path}: invariant report missing 'holds'")
    elif not invariant["holds"] and not bottleneck.get("warnings"):
        problems.append(
            f"{path}: invariant violated but no structured warning emitted"
        )
    return problems


def _check_window_list(
    prefix: str, windows, window_ns: float, problems: List[str]
) -> None:
    """Shared shape checks: strictly increasing indices, aligned
    ``start_ns``.  Appends diagnostics to ``problems``."""
    if not isinstance(windows, list):
        problems.append(f"{prefix}: windows is not a list")
        return
    previous = None
    for window in windows:
        index = window.get("index")
        if not isinstance(index, int) or index < 0:
            problems.append(f"{prefix}: invalid window index {index!r}")
            return
        if previous is not None and index <= previous:
            problems.append(
                f"{prefix}: window indices not strictly increasing "
                f"({previous} then {index})"
            )
        previous = index
        start = window.get("start_ns")
        if start != index * window_ns:
            problems.append(
                f"{prefix}: window {index} start_ns {start!r} != "
                f"index * window_ns ({index * window_ns})"
            )


def _sums_match(total: float, parts: float) -> bool:
    return abs(parts - total) <= max(CONSERVATION_RTOL * abs(total), 1e-6)


def check_timeseries(path: str, metrics_path: Optional[str] = None) -> List[str]:
    """Internal consistency of a ``rmssd-timeseries/v1`` export.

    With ``metrics_path``, series totals are also cross-checked against
    the registry export of the same run: a windowed counter's deltas
    must sum to the exported counter value and a latency series' window
    counts to the exported histogram count — i.e. every timestamped
    observation landed in exactly one window.
    """
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    if document.get("schema") != TIMESERIES_SCHEMA:
        return [f"{path}: schema {document.get('schema')!r} is not "
                f"{TIMESERIES_SCHEMA!r}"]
    window_ns = document.get("window_ns")
    if not isinstance(window_ns, (int, float)) or window_ns <= 0:
        return [f"{path}: invalid window_ns {window_ns!r}"]
    series = document.get("series")
    if not isinstance(series, dict):
        return [f"{path}: missing series section"]

    for name, entry in series.items():
        prefix = f"{path}: series {name!r}"
        kind = entry.get("kind")
        windows = entry.get("windows", [])
        _check_window_list(prefix, windows, window_ns, problems)
        if not isinstance(windows, list):
            continue
        if kind == "counter":
            running = 0
            for window in windows:
                delta = window.get("delta", -1)
                if delta < 0:
                    problems.append(
                        f"{prefix}: window {window.get('index')} has "
                        f"negative delta {delta}"
                    )
                running += delta
                rate = window.get("rate_per_s")
                if rate is not None and not _sums_match(
                    rate, delta / (window_ns / 1e9)
                ):
                    problems.append(
                        f"{prefix}: window {window.get('index')} rate "
                        f"{rate} inconsistent with delta {delta}"
                    )
            if running != entry.get("total"):
                problems.append(
                    f"{prefix}: window deltas sum to {running} but total "
                    f"says {entry.get('total')}"
                )
        elif kind == "latency":
            running = 0
            for window in windows:
                count = window.get("count", 0)
                if count < 1:
                    problems.append(
                        f"{prefix}: window {window.get('index')} has "
                        f"count {count} < 1 (empty windows are omitted)"
                    )
                running += count
                p50 = window.get("p50_ns", 0.0)
                p95 = window.get("p95_ns", 0.0)
                p99 = window.get("p99_ns", 0.0)
                low = window.get("min_ns", 0.0)
                high = window.get("max_ns", 0.0)
                if not low <= p50 <= p95 <= p99 <= high:
                    problems.append(
                        f"{prefix}: window {window.get('index')} quantiles "
                        f"not ordered: min {low} p50 {p50} p95 {p95} "
                        f"p99 {p99} max {high}"
                    )
            if running != entry.get("total"):
                problems.append(
                    f"{prefix}: window counts sum to {running} but total "
                    f"says {entry.get('total')}"
                )
        elif kind == "gauge":
            for window in windows:
                low = window.get("min", 0.0)
                high = window.get("max", 0.0)
                last = window.get("last", 0.0)
                if not low <= last <= high:
                    problems.append(
                        f"{prefix}: window {window.get('index')} gauge "
                        f"min {low} last {last} max {high} not ordered"
                    )
        else:
            problems.append(f"{prefix}: unknown kind {kind!r}")

    utilization = document.get("utilization")
    if utilization is not None:
        if not isinstance(utilization, dict):
            problems.append(f"{path}: utilization section is not a dict")
            utilization = {}
        for name, entry in utilization.items():
            prefix = f"{path}: utilization {name!r}"
            windows = entry.get("windows", [])
            _check_window_list(prefix, windows, window_ns, problems)
            if not isinstance(windows, list):
                continue
            covered = 0.0
            for window in windows:
                fraction = window.get("utilization", -1.0)
                if not 0.0 <= fraction <= 1.0 + CONSERVATION_RTOL:
                    problems.append(
                        f"{prefix}: window {window.get('index')} "
                        f"utilization {fraction} outside [0, 1]"
                    )
                busy = window.get("busy_ns", -1.0)
                if busy < 0 or busy > window_ns * (1 + CONSERVATION_RTOL):
                    problems.append(
                        f"{prefix}: window {window.get('index')} busy_ns "
                        f"{busy} outside [0, window_ns={window_ns}]"
                    )
                else:
                    covered += busy
            total_busy = entry.get("busy_ns", 0.0)
            if not _sums_match(total_busy, covered):
                problems.append(
                    f"{prefix}: window busy times sum to {covered} ns but "
                    f"busy_ns says {total_busy}"
                )

    slo = document.get("slo")
    if slo is not None:
        if not isinstance(slo, dict):
            problems.append(f"{path}: slo section is not a dict")
            slo = {}
        objectives = slo.get("objectives", [])
        declared = set()
        spans: Dict[str, Tuple[int, int]] = {}
        for objective in objectives:
            name = objective.get("name")
            declared.add(name)
            indices = [w.get("index", -1) for w in objective.get("windows", [])]
            if indices:
                if indices != list(range(indices[0], indices[-1] + 1)):
                    problems.append(
                        f"{path}: slo objective {name!r}: evaluated "
                        f"windows are not a contiguous range"
                    )
                spans[name] = (indices[0], indices[-1])
            for window in objective.get("windows", []):
                if not isinstance(window.get("ok"), bool):
                    problems.append(
                        f"{path}: slo objective {name!r} window "
                        f"{window.get('index')} missing 'ok' verdict"
                    )
                    break
        for objective in objectives:
            for alert in objective.get("alerts", []):
                target = alert.get("objective")
                if target not in declared:
                    problems.append(
                        f"{path}: slo alert references undeclared "
                        f"objective {target!r}"
                    )
                    continue
                span = spans.get(target)
                window = alert.get("window", -1)
                if span is None or not span[0] <= window <= span[1]:
                    problems.append(
                        f"{path}: slo alert for {target!r} fires in window "
                        f"{window}, outside the evaluated range {span}"
                    )

    if metrics_path:
        try:
            with open(metrics_path) as handle:
                registry = json.load(handle)
        except (OSError, ValueError) as error:
            return problems + [f"{metrics_path}: cannot load: {error}"]
        counters = registry.get("counters", {})
        histograms = registry.get("histograms", {})
        shared = 0
        for name, entry in series.items():
            kind = entry.get("kind")
            if kind == "counter" and name in counters:
                shared += 1
                if entry.get("total") != counters[name]:
                    problems.append(
                        f"cross-check: counter {name!r}: timeseries total "
                        f"{entry.get('total')} != metrics value "
                        f"{counters[name]}"
                    )
            elif kind == "latency" and name in histograms:
                shared += 1
                if entry.get("total") != histograms[name].get("count"):
                    problems.append(
                        f"cross-check: latency {name!r}: timeseries total "
                        f"{entry.get('total')} != histogram count "
                        f"{histograms[name].get('count')}"
                    )
        if shared == 0 and series and not problems:
            problems.append(
                "cross-check: no shared series between timeseries and "
                "metrics exports"
            )
    return problems


#: Profile resource name -> trace span name, for resources that appear
#: in both exports.  Dies have no spans (the trace shows the channel,
#: not its dies) and the MLP/host spans use lanes, so the overlap check
#: covers the serialized resources whose mapping is 1:1.
def _span_name_for(resource: str) -> Optional[str]:
    if resource == "ftl-mux":
        return "ftl"
    if resource == "ev_sum":
        return "ev_sum"
    if resource.endswith("-bus") and resource.startswith("channel"):
        return resource[: -len("-bus")]
    return None


def _trace_span_unions(path: str) -> Dict[str, List[Tuple[float, float]]]:
    """Merged ``[start_ns, end_ns)`` unions per span name in a trace."""
    with open(path) as handle:
        document = json.load(handle)
    open_spans: Dict[tuple, List[float]] = {}
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for event in document.get("traceEvents", []):
        phase = event.get("ph")
        if phase not in ("B", "E"):
            continue
        name = event.get("name")
        key = (event.get("pid"), event.get("tid"), name)
        ts_ns = float(event.get("ts", 0.0)) * 1000.0
        if phase == "B":
            open_spans.setdefault(key, []).append(ts_ns)
        elif open_spans.get(key):
            start = open_spans[key].pop()
            intervals.setdefault(name, []).append((start, ts_ns))
    merged: Dict[str, List[Tuple[float, float]]] = {}
    for name, pairs in intervals.items():
        pairs.sort()
        union = [list(pairs[0])]
        for start, end in pairs[1:]:
            if start <= union[-1][1]:
                union[-1][1] = max(union[-1][1], end)
            else:
                union.append([start, end])
        merged[name] = [tuple(pair) for pair in union]
    return merged


def cross_check(trace_path: str, profile_path: str) -> List[str]:
    """Overlap consistency between a trace and a profile of one run.

    Every profile busy interval of a span-mapped resource must lie
    inside the union of that span's trace occurrences — the profile
    may merge (dies hand off back to back) but never invent busy time
    the trace does not show.
    """
    problems: List[str] = []
    try:
        spans = _trace_span_unions(trace_path)
        with open(profile_path) as handle:
            profile = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cross-check: cannot load: {error}"]
    checked = 0
    for resource, entry in profile.get("resources", {}).items():
        span_name = _span_name_for(resource)
        if span_name is None:
            continue
        union = spans.get(span_name)
        if union is None:
            problems.append(
                f"cross-check: profile has {resource!r} but the trace "
                f"never emitted a {span_name!r} span"
            )
            continue
        for start, end in entry.get("busy_intervals", []):
            contained = any(
                a - CROSS_CHECK_TOLERANCE_NS <= start
                and end <= b + CROSS_CHECK_TOLERANCE_NS
                for a, b in union
            )
            if not contained:
                problems.append(
                    f"cross-check: {resource}: busy [{start}, {end}] ns "
                    f"outside the {span_name!r} spans"
                )
                break
            checked += 1
    if checked == 0 and not problems:
        problems.append(
            "cross-check: no overlapping resources between trace and profile"
        )
    return problems


def _explain_component_sum(record: dict) -> float:
    """Fixed-order component sum — the *definition* of ``latency_ns``
    in the explain schema, so the comparison below is exact equality."""
    total = 0.0
    for key in EXPLAIN_COMPONENTS:
        total = total + record[key]
    return total


def _explain_percentile(ordered: List[float], q: float) -> float:
    """Mirror of repro.analysis.metrics.percentile (presorted input)."""
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def check_explain(path: str) -> List[str]:
    """Internal consistency of a ``rmssd-explain/v1`` export."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    if document.get("schema") != EXPLAIN_SCHEMA:
        return [f"{path}: schema {document.get('schema')!r} is not "
                f"{EXPLAIN_SCHEMA!r}"]
    if tuple(document.get("components", ())) != EXPLAIN_COMPONENTS:
        return [f"{path}: components {document.get('components')!r} != "
                f"{list(EXPLAIN_COMPONENTS)}"]
    requests = document.get("requests")
    if not isinstance(requests, dict) or not isinstance(
        requests.get("count"), int
    ):
        return [f"{path}: missing requests section"]
    count = requests["count"]
    totals = document.get("totals", {})
    if totals.get("count") != count:
        problems.append(
            f"{path}: totals.count {totals.get('count')} != requests.count "
            f"{count}"
        )
    records = requests.get("records")
    quantiles = document.get("quantiles", [])
    if count == 0 and quantiles:
        problems.append(f"{path}: quantile entries despite zero requests")
    if records is None:
        return problems
    if len(records) != count:
        problems.append(
            f"{path}: {len(records)} records but requests.count says {count}"
        )
    previous_key = None
    for index, record in enumerate(records):
        for key in EXPLAIN_COMPONENTS:
            value = record.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"{path}: record {index}: component {key} is {value!r}"
                )
                return problems
        # Exact by definition: latency IS the fixed-order sum, and a
        # JSON round-trip preserves floats bit for bit.
        if record.get("latency_ns") != _explain_component_sum(record):
            problems.append(
                f"{path}: record {index}: components sum to "
                f"{_explain_component_sum(record)} but latency_ns says "
                f"{record.get('latency_ns')} (conservation violated)"
            )
        order_key = (
            record.get("arrival_ns"), record.get("replica"),
            record.get("batch"),
        )
        if previous_key is not None and order_key < previous_key:
            problems.append(
                f"{path}: record {index}: out of canonical "
                f"(arrival, replica, batch) order"
            )
        previous_key = order_key
    if problems:
        return problems
    ordered = sorted(r["latency_ns"] for r in records)
    for entry in quantiles:
        q = entry.get("q")
        if not isinstance(q, (int, float)) or not 0.0 <= q <= 100.0:
            problems.append(f"{path}: invalid quantile {q!r}")
            continue
        prefix = f"{path}: p{q:g}"
        value = entry.get("latency_ns")
        expected = _explain_percentile(ordered, q)
        if not _sums_match(expected, value):
            problems.append(
                f"{prefix}: latency {value} != recomputed percentile "
                f"{expected}"
            )
            continue
        tail = [r for r in records if r["latency_ns"] >= value]
        summary = entry.get("tail", {})
        if summary.get("count") != len(tail):
            problems.append(
                f"{prefix}: tail count {summary.get('count')} != "
                f"{len(tail)} records at/above the quantile"
            )
            continue
        latency_sum = sum(r["latency_ns"] for r in tail)
        blame = summary.get("blame", {})
        share_sum = 0.0
        for key in EXPLAIN_COMPONENTS:
            share = blame.get(key, -1.0)
            if not 0.0 <= share <= 1.0 + CONSERVATION_RTOL:
                problems.append(
                    f"{prefix}: blame share for {key} is {share}, "
                    f"outside [0, 1]"
                )
            share_sum += share
        if latency_sum > 0 and not _sums_match(1.0, share_sum):
            problems.append(
                f"{prefix}: blame shares sum to {share_sum}, not 1"
            )
        means = summary.get("mean_ns", {})
        for key in EXPLAIN_COMPONENTS:
            expected_mean = sum(r[key] for r in tail) / len(tail)
            if not _sums_match(expected_mean, means.get(key, -1.0)):
                problems.append(
                    f"{prefix}: mean {key} {means.get(key)} != recomputed "
                    f"{expected_mean}"
                )
        replica_shares = summary.get("queue_share_by_replica", {})
        queue_sum = sum(r["queue_ns"] for r in tail)
        replica_total = 0.0
        for rid, share in replica_shares.items():
            if not 0.0 <= share <= 1.0 + CONSERVATION_RTOL:
                problems.append(
                    f"{prefix}: queue share of replica {rid} is {share}, "
                    f"outside [0, 1]"
                )
            replica_total += share
        if queue_sum > 0 and not _sums_match(1.0, replica_total):
            problems.append(
                f"{prefix}: per-replica queue shares sum to "
                f"{replica_total}, not 1"
            )
        exemplars = entry.get("exemplars", [])
        if len(exemplars) > len(tail):
            problems.append(
                f"{prefix}: {len(exemplars)} exemplars exceed the tail "
                f"of {len(tail)}"
            )
        previous_latency = None
        for exemplar in exemplars:
            latency = exemplar.get("latency_ns", -1.0)
            if latency < value:
                problems.append(
                    f"{prefix}: exemplar latency {latency} below the "
                    f"reported quantile {value}"
                )
                break
            if previous_latency is not None and latency > previous_latency:
                problems.append(
                    f"{prefix}: exemplars not sorted by descending latency"
                )
                break
            previous_latency = latency
    if count:
        expected_mean = sum(r["latency_ns"] for r in records) / count
        if not _sums_match(expected_mean, totals.get("mean_latency_ns", -1.0)):
            problems.append(
                f"{path}: totals.mean_latency_ns "
                f"{totals.get('mean_latency_ns')} != recomputed "
                f"{expected_mean}"
            )
    return problems


def cross_check_explain(trace_path: str, explain_path: str) -> List[str]:
    """Every explain record must match a ``batch`` span of the trace.

    Both exports describe the same run: a record's
    ``[arrival, arrival + latency)`` interval must appear as a
    ``batch`` span (within the trace's µs-conversion tolerance), and
    the span and record counts must agree.
    """
    import bisect

    problems: List[str] = []
    try:
        with open(explain_path) as handle:
            document = json.load(handle)
        spans = _trace_span_unions(trace_path)
    except (OSError, ValueError) as error:
        return [f"cross-check: cannot load: {error}"]
    records = document.get("requests", {}).get("records")
    if records is None:
        return [
            "cross-check: explain document carries no records "
            "(exported without them?)"
        ]
    batch_spans: List[Tuple[float, float]] = []
    try:
        with open(trace_path) as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cross-check: cannot load: {error}"]
    open_spans: Dict[tuple, List[float]] = {}
    for event in trace.get("traceEvents", []):
        if event.get("name") != "batch":
            continue
        phase = event.get("ph")
        key = (event.get("pid"), event.get("tid"))
        ts_ns = float(event.get("ts", 0.0)) * 1000.0
        if phase == "B":
            open_spans.setdefault(key, []).append(ts_ns)
        elif phase == "E" and open_spans.get(key):
            batch_spans.append((open_spans[key].pop(), ts_ns))
    if len(batch_spans) != len(records):
        return [
            f"cross-check: trace has {len(batch_spans)} batch spans but "
            f"the explain document has {len(records)} records"
        ]
    batch_spans.sort()
    starts = [span[0] for span in batch_spans]
    for record in records:
        begin = record["arrival_ns"]
        end = begin + record["latency_ns"]
        lo = bisect.bisect_left(starts, begin - CROSS_CHECK_TOLERANCE_NS)
        hi = bisect.bisect_right(starts, begin + CROSS_CHECK_TOLERANCE_NS)
        if not any(
            abs(batch_spans[i][1] - end) <= CROSS_CHECK_TOLERANCE_NS
            for i in range(lo, hi)
        ):
            problems.append(
                f"cross-check: record (replica {record.get('replica')}, "
                f"batch {record.get('batch')}) interval [{begin}, {end}] "
                f"ns has no matching batch span in the trace"
            )
            break
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", nargs="?", default=None,
                        help="Chrome-trace JSON file")
    parser.add_argument(
        "--require", nargs="*", default=[],
        help="span names that must appear in the trace",
    )
    parser.add_argument(
        "--metrics", default=None,
        help="also validate a metrics JSON export",
    )
    parser.add_argument(
        "--profile", default=None,
        help="also validate a utilization-profile JSON export "
             "(cross-checked against the trace when both are given)",
    )
    parser.add_argument(
        "--timeseries", default=None,
        help="also validate a windowed timeseries JSON export "
             "(cross-checked against --metrics when both are given)",
    )
    parser.add_argument(
        "--explain", default=None,
        help="also validate a critical-path attribution JSON export "
             "(cross-checked against the trace when both are given)",
    )
    args = parser.parse_args(argv)
    if (
        args.trace is None
        and args.profile is None
        and args.timeseries is None
        and args.explain is None
    ):
        parser.error(
            "need a trace file, --profile, --timeseries, and/or --explain"
        )
    problems: List[str] = []
    if args.trace is not None:
        problems += check_trace(args.trace, args.require)
    if args.metrics:
        problems += check_metrics(args.metrics)
    if args.profile:
        problems += check_profile(args.profile)
        if args.trace is not None:
            problems += cross_check(args.trace, args.profile)
    if args.timeseries:
        problems += check_timeseries(args.timeseries, args.metrics)
    if args.explain:
        problems += check_explain(args.explain)
        if args.trace is not None and not problems:
            problems += cross_check_explain(args.trace, args.explain)
    if problems:
        for problem in problems:
            print(f"check_trace: {problem}", file=sys.stderr)
        return 1
    print(
        f"check_trace: "
        f"{args.trace or args.profile or args.timeseries or args.explain} OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
