"""Validate a Chrome-trace JSON file (and optionally a metrics file).

The ``trace-smoke`` gate runs a tiny traced inference and pipes the
resulting ``trace.json`` through this checker:

* the document is valid JSON with a ``traceEvents`` list;
* every track (pid, tid) has balanced ``B``/``E`` events with
  non-decreasing timestamps and proper nesting (an ``E`` always closes
  the most recent open ``B`` of the same name);
* required span names (``--require``) all appear;
* with ``--metrics``, the metrics JSON has the registry schema
  (counters/gauges/histograms/snapshots) and every histogram carries
  the quantile summary fields.

Exit status 0 on success; 1 with a diagnostic on the first failure.

Usage::

    python -m tools.check_trace trace.json \
        --require translate flash_read ev_sum \
        --metrics metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

HISTOGRAM_FIELDS = (
    "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "min_ns", "max_ns",
)


def check_trace(path: str, require: List[str]) -> List[str]:
    """Returns a list of problems (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]

    stacks: dict = {}
    last_ts: dict = {}
    spans = 0
    seen_names = set()
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase not in ("B", "E"):
            problems.append(f"event {index}: unexpected phase {phase!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        name = event.get("name")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index}: missing/invalid ts")
            continue
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"event {index} ({name!r}): ts {ts} goes backwards on "
                f"track {track}"
            )
        last_ts[track] = ts
        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(name)
            seen_names.add(name)
            spans += 1
        else:
            if not stack:
                problems.append(
                    f"event {index}: E for {name!r} with no open span "
                    f"on track {track}"
                )
            elif stack[-1] != name:
                problems.append(
                    f"event {index}: E for {name!r} but innermost open "
                    f"span is {stack[-1]!r} (track {track})"
                )
                stack.pop()
            else:
                stack.pop()
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: {len(stack)} span(s) never closed: {stack}"
            )
    if spans == 0:
        problems.append("trace contains no spans")
    for name in require:
        if name not in seen_names:
            problems.append(f"required span {name!r} missing from trace")
    return problems


def check_metrics(path: str) -> List[str]:
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    for section in ("counters", "gauges", "histograms", "snapshots"):
        if not isinstance(document.get(section), dict):
            problems.append(f"{path}: missing section {section!r}")
    for name, histogram in document.get("histograms", {}).items():
        for field in HISTOGRAM_FIELDS:
            if field not in histogram:
                problems.append(
                    f"{path}: histogram {name!r} missing {field!r}"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", help="Chrome-trace JSON file")
    parser.add_argument(
        "--require", nargs="*", default=[],
        help="span names that must appear in the trace",
    )
    parser.add_argument(
        "--metrics", default=None,
        help="also validate a metrics JSON export",
    )
    args = parser.parse_args(argv)
    problems = check_trace(args.trace, args.require)
    if args.metrics:
        problems += check_metrics(args.metrics)
    if problems:
        for problem in problems:
            print(f"check_trace: {problem}", file=sys.stderr)
        return 1
    print(f"check_trace: {args.trace} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
