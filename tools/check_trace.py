"""Validate exported observability JSON (trace, metrics, profile).

The ``trace-smoke``/``profile-smoke`` gates run a tiny instrumented
inference and pipe the resulting JSON through this checker:

* the trace is valid JSON with a ``traceEvents`` list;
* every track (pid, tid) has balanced ``B``/``E`` events with
  non-decreasing timestamps and proper nesting (an ``E`` always closes
  the most recent open ``B`` of the same name);
* required span names (``--require``) all appear;
* with ``--metrics``, the metrics JSON has the registry schema
  (counters/gauges/histograms/snapshots) and every histogram carries
  the quantile summary fields;
* with ``--profile``, the profile JSON has the ``rmssd-profile/v1``
  schema and is internally consistent: utilizations in [0, 1], every
  resource's busy time <= the run's elapsed time, busy timelines
  sorted and non-overlapping inside [0, elapsed], queue depths
  non-negative, and the bottleneck report well formed;
* with *both* a trace and ``--profile``, the two exports of the same
  run are cross-checked: the profile's busy intervals for span-mapped
  resources (FTL MUX, channel buses, EV Sum) must lie inside the
  union of the corresponding trace spans.

Exit status 0 on success; 1 with a diagnostic on the first failure.

Usage::

    python -m tools.check_trace trace.json \
        --require translate flash_read ev_sum \
        --metrics metrics.json --profile profile.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

HISTOGRAM_FIELDS = (
    "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "min_ns", "max_ns",
)

PROFILE_SCHEMA = "rmssd-profile/v1"

STAGE_KEYS = ("emb", "bot", "top", "io")

#: Slack allowed in the trace/profile cross-check, in nanoseconds:
#: both files derive from the same float quantities, so this only
#: absorbs the µs conversion in the Chrome export.
CROSS_CHECK_TOLERANCE_NS = 1.0


def check_trace(path: str, require: List[str]) -> List[str]:
    """Returns a list of problems (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]

    stacks: dict = {}
    last_ts: dict = {}
    spans = 0
    seen_names = set()
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase not in ("B", "E"):
            problems.append(f"event {index}: unexpected phase {phase!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        name = event.get("name")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index}: missing/invalid ts")
            continue
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"event {index} ({name!r}): ts {ts} goes backwards on "
                f"track {track}"
            )
        last_ts[track] = ts
        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(name)
            seen_names.add(name)
            spans += 1
        else:
            if not stack:
                problems.append(
                    f"event {index}: E for {name!r} with no open span "
                    f"on track {track}"
                )
            elif stack[-1] != name:
                problems.append(
                    f"event {index}: E for {name!r} but innermost open "
                    f"span is {stack[-1]!r} (track {track})"
                )
                stack.pop()
            else:
                stack.pop()
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: {len(stack)} span(s) never closed: {stack}"
            )
    if spans == 0:
        problems.append("trace contains no spans")
    for name in require:
        if name not in seen_names:
            problems.append(f"required span {name!r} missing from trace")
    return problems


def check_metrics(path: str) -> List[str]:
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    for section in ("counters", "gauges", "histograms", "snapshots"):
        if not isinstance(document.get(section), dict):
            problems.append(f"{path}: missing section {section!r}")
    for name, histogram in document.get("histograms", {}).items():
        for field in HISTOGRAM_FIELDS:
            if field not in histogram:
                problems.append(
                    f"{path}: histogram {name!r} missing {field!r}"
                )
    return problems


def check_profile(path: str) -> List[str]:
    """Internal consistency of a ``rmssd-profile/v1`` export."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot load: {error}"]
    if document.get("schema") != PROFILE_SCHEMA:
        return [f"{path}: schema {document.get('schema')!r} is not "
                f"{PROFILE_SCHEMA!r}"]
    elapsed = document.get("elapsed_ns")
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        return [f"{path}: invalid elapsed_ns {elapsed!r}"]
    resources = document.get("resources")
    if not isinstance(resources, dict) or not resources:
        problems.append(f"{path}: no resources profiled")
        resources = {}
    for name, entry in resources.items():
        utilization = entry.get("utilization", -1.0)
        if not 0.0 <= utilization <= 1.0:
            problems.append(
                f"{path}: {name}: utilization {utilization} outside [0, 1]"
            )
        busy = entry.get("busy_ns", -1.0)
        if busy < 0 or busy > elapsed:
            problems.append(
                f"{path}: {name}: busy_ns {busy} outside [0, elapsed="
                f"{elapsed}]"
            )
        intervals = entry.get("busy_intervals", [])
        cursor = 0.0
        covered = 0.0
        for interval in intervals:
            start, end = interval
            if start < cursor or end < start:
                problems.append(
                    f"{path}: {name}: busy timeline not sorted/disjoint "
                    f"at [{start}, {end}]"
                )
                break
            cursor = end
            covered += end - start
        if cursor > elapsed:
            problems.append(
                f"{path}: {name}: busy timeline extends past elapsed "
                f"({cursor} > {elapsed})"
            )
        if not entry.get("intervals_omitted", 0) and intervals:
            # Full timeline exported: it must account for busy_ns.
            if abs(covered - busy) > max(1e-6 * busy, 1e-6):
                problems.append(
                    f"{path}: {name}: timeline covers {covered} ns but "
                    f"busy_ns says {busy}"
                )
        queue = entry.get("queue")
        if queue is not None:
            if queue.get("max_depth", -1) < 0 or queue.get("mean_depth", -1.0) < 0:
                problems.append(f"{path}: {name}: negative queue depth")
    channels = document.get("channels", {})
    for name, entry in channels.items():
        utilization = entry.get("utilization", -1.0)
        if not 0.0 <= utilization <= 1.0:
            problems.append(
                f"{path}: channel group {name}: utilization {utilization} "
                "outside [0, 1]"
            )
    bottleneck = document.get("bottleneck")
    if not isinstance(bottleneck, dict):
        problems.append(f"{path}: missing bottleneck report")
        return problems
    stage = bottleneck.get("bottleneck_stage")
    if stage not in STAGE_KEYS:
        problems.append(f"{path}: bottleneck_stage {stage!r} not in "
                        f"{STAGE_KEYS}")
    slack = bottleneck.get("slack_ns", {})
    for key in STAGE_KEYS:
        if slack.get(key, -1.0) < 0:
            problems.append(f"{path}: negative slack for stage {key!r}")
    invariant = bottleneck.get("invariant", {})
    if not isinstance(invariant.get("holds"), bool):
        problems.append(f"{path}: invariant report missing 'holds'")
    elif not invariant["holds"] and not bottleneck.get("warnings"):
        problems.append(
            f"{path}: invariant violated but no structured warning emitted"
        )
    return problems


#: Profile resource name -> trace span name, for resources that appear
#: in both exports.  Dies have no spans (the trace shows the channel,
#: not its dies) and the MLP/host spans use lanes, so the overlap check
#: covers the serialized resources whose mapping is 1:1.
def _span_name_for(resource: str) -> Optional[str]:
    if resource == "ftl-mux":
        return "ftl"
    if resource == "ev_sum":
        return "ev_sum"
    if resource.endswith("-bus") and resource.startswith("channel"):
        return resource[: -len("-bus")]
    return None


def _trace_span_unions(path: str) -> Dict[str, List[Tuple[float, float]]]:
    """Merged ``[start_ns, end_ns)`` unions per span name in a trace."""
    with open(path) as handle:
        document = json.load(handle)
    open_spans: Dict[tuple, List[float]] = {}
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for event in document.get("traceEvents", []):
        phase = event.get("ph")
        if phase not in ("B", "E"):
            continue
        name = event.get("name")
        key = (event.get("pid"), event.get("tid"), name)
        ts_ns = float(event.get("ts", 0.0)) * 1000.0
        if phase == "B":
            open_spans.setdefault(key, []).append(ts_ns)
        elif open_spans.get(key):
            start = open_spans[key].pop()
            intervals.setdefault(name, []).append((start, ts_ns))
    merged: Dict[str, List[Tuple[float, float]]] = {}
    for name, pairs in intervals.items():
        pairs.sort()
        union = [list(pairs[0])]
        for start, end in pairs[1:]:
            if start <= union[-1][1]:
                union[-1][1] = max(union[-1][1], end)
            else:
                union.append([start, end])
        merged[name] = [tuple(pair) for pair in union]
    return merged


def cross_check(trace_path: str, profile_path: str) -> List[str]:
    """Overlap consistency between a trace and a profile of one run.

    Every profile busy interval of a span-mapped resource must lie
    inside the union of that span's trace occurrences — the profile
    may merge (dies hand off back to back) but never invent busy time
    the trace does not show.
    """
    problems: List[str] = []
    try:
        spans = _trace_span_unions(trace_path)
        with open(profile_path) as handle:
            profile = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cross-check: cannot load: {error}"]
    checked = 0
    for resource, entry in profile.get("resources", {}).items():
        span_name = _span_name_for(resource)
        if span_name is None:
            continue
        union = spans.get(span_name)
        if union is None:
            problems.append(
                f"cross-check: profile has {resource!r} but the trace "
                f"never emitted a {span_name!r} span"
            )
            continue
        for start, end in entry.get("busy_intervals", []):
            contained = any(
                a - CROSS_CHECK_TOLERANCE_NS <= start
                and end <= b + CROSS_CHECK_TOLERANCE_NS
                for a, b in union
            )
            if not contained:
                problems.append(
                    f"cross-check: {resource}: busy [{start}, {end}] ns "
                    f"outside the {span_name!r} spans"
                )
                break
            checked += 1
    if checked == 0 and not problems:
        problems.append(
            "cross-check: no overlapping resources between trace and profile"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", nargs="?", default=None,
                        help="Chrome-trace JSON file")
    parser.add_argument(
        "--require", nargs="*", default=[],
        help="span names that must appear in the trace",
    )
    parser.add_argument(
        "--metrics", default=None,
        help="also validate a metrics JSON export",
    )
    parser.add_argument(
        "--profile", default=None,
        help="also validate a utilization-profile JSON export "
             "(cross-checked against the trace when both are given)",
    )
    args = parser.parse_args(argv)
    if args.trace is None and args.profile is None:
        parser.error("need a trace file and/or --profile")
    problems: List[str] = []
    if args.trace is not None:
        problems += check_trace(args.trace, args.require)
    if args.metrics:
        problems += check_metrics(args.metrics)
    if args.profile:
        problems += check_profile(args.profile)
        if args.trace is not None:
            problems += cross_check(args.trace, args.profile)
    if problems:
        for problem in problems:
            print(f"check_trace: {problem}", file=sys.stderr)
        return 1
    print(f"check_trace: {args.trace or args.profile} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
