#!/bin/sh
# Full correctness gate: domain lint, bytecode compile, sanitized tests.
# Same steps as `make check`, for environments without make.
set -e
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== lint (whole tree, cross-file rules, baseline ratchet) =="
PYTHONPATH=src:. python -m tools.lint src tests benchmarks tools \
    --baseline tools/lint/baseline.json

echo "== lint canary (R9 must fire on injected fast-path drift) =="
# Deletes one fast-path profiler record per parity contract (lookup,
# serving, timeseries, explain) in scratch copies of src/ and asserts
# the parity rule reports each; guards against the whole-program
# analysis silently going blind.
PYTHONPATH=src:. python -m tools.lint.canary

echo "== compile =="
python -m compileall -q src tools tests benchmarks

echo "== fast-path differential smoke (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q tests/test_fastpath_equivalence.py -k smoke

echo "== vector-cache differential smoke (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q tests/test_vcache_equivalence.py \
    -k "inert or bitwise"

echo "== serving-replay differential smoke (RMSSD_SANITIZE=1) =="
# Closed-form pipeline replay vs the DES: saturated/zero-stage chains,
# byte-identical profiles, and one load-sweep point on both paths.
RMSSD_SANITIZE=1 python -m pytest -x -q \
    tests/test_pipeline_fast_equivalence.py -k smoke

echo "== trace smoke (RMSSD_TRACE=1) =="
RMSSD_TRACE=1 python -m repro run rmc1 --backend rm-ssd \
    --requests 2 --rows 64 --no-compute \
    --trace-out /tmp/rmssd_trace_smoke.json \
    --metrics-out /tmp/rmssd_metrics_smoke.json
PYTHONPATH=src:. python -m tools.check_trace /tmp/rmssd_trace_smoke.json \
    --require request translate flash_read ev_sum bottom_mlp top_mlp \
    --metrics /tmp/rmssd_metrics_smoke.json

echo "== profile smoke (DES vs fast byte-identical; schema checks) =="
RMSSD_SANITIZE=1 python -m repro profile rmc1 --backend rm-ssd \
    --requests 2 --batch 1 --rows 64 \
    --profile-out /tmp/rmssd_profile_smoke.json \
    --trace-out /tmp/rmssd_profile_trace_smoke.json > /dev/null
RMSSD_SANITIZE=1 python -m repro profile rmc1 --backend rm-ssd \
    --requests 2 --batch 1 --rows 64 --no-fastpath \
    --profile-out /tmp/rmssd_profile_smoke_des.json > /dev/null
cmp /tmp/rmssd_profile_smoke.json /tmp/rmssd_profile_smoke_des.json
PYTHONPATH=src:. python -m tools.check_trace \
    /tmp/rmssd_profile_trace_smoke.json \
    --profile /tmp/rmssd_profile_smoke.json

echo "== report smoke (timeseries DES vs fast byte-identical) =="
RMSSD_SANITIZE=1 python -m repro report rmc1 \
    --queries 120 --rows 64 --window-ms 2.0 \
    --timeseries-out /tmp/rmssd_timeseries_smoke.json \
    --metrics-out /tmp/rmssd_report_metrics_smoke.json > /dev/null
RMSSD_SANITIZE=1 python -m repro report rmc1 \
    --queries 120 --rows 64 --window-ms 2.0 --no-fastpath \
    --timeseries-out /tmp/rmssd_timeseries_smoke_des.json > /dev/null
cmp /tmp/rmssd_timeseries_smoke.json /tmp/rmssd_timeseries_smoke_des.json
PYTHONPATH=src:. python -m tools.check_trace \
    --timeseries /tmp/rmssd_timeseries_smoke.json \
    --metrics /tmp/rmssd_report_metrics_smoke.json

echo "== explain smoke (critical-path DES vs fast byte-identical) =="
# Per-request critical-path attribution: the DES and closed-form
# replay must export byte-identical rmssd-explain/v1 documents, on a
# single device and across a load-balanced cluster; the device
# document is validated and cross-checked against the Chrome trace of
# the same run.
RMSSD_SANITIZE=1 python -m repro explain rmc1 \
    --queries 120 --rows 64 \
    --explain-out /tmp/rmssd_explain_smoke.json \
    --trace-out /tmp/rmssd_explain_trace_smoke.json > /dev/null
RMSSD_SANITIZE=1 python -m repro explain rmc1 \
    --queries 120 --rows 64 --no-fastpath \
    --explain-out /tmp/rmssd_explain_smoke_des.json > /dev/null
cmp /tmp/rmssd_explain_smoke.json /tmp/rmssd_explain_smoke_des.json
PYTHONPATH=src:. python -m tools.check_trace \
    /tmp/rmssd_explain_trace_smoke.json \
    --explain /tmp/rmssd_explain_smoke.json
RMSSD_SANITIZE=1 python -m repro explain rmc2 --cluster \
    --replicas 2 --balancer jsq --rows 64 --duration-ms 100 \
    --explain-out /tmp/rmssd_explain_cluster_smoke.json > /dev/null
RMSSD_SANITIZE=1 python -m repro explain rmc2 --cluster \
    --replicas 2 --balancer jsq --rows 64 --duration-ms 100 --no-fastpath \
    --explain-out /tmp/rmssd_explain_cluster_smoke_des.json > /dev/null
cmp /tmp/rmssd_explain_cluster_smoke.json \
    /tmp/rmssd_explain_cluster_smoke_des.json
PYTHONPATH=src:. python -m tools.check_trace \
    --explain /tmp/rmssd_explain_cluster_smoke.json

echo "== cluster autoscale smoke (DES vs fast byte-identical; scale-up) =="
# Flash-crowd trace against a one-replica fleet with the burn-rate
# autoscaler: the controller must scale out at least once, and the
# DES and closed-form replay must export byte-identical timeseries
# documents, scaling-event log included.
RMSSD_SANITIZE=1 python -m repro sla rmc1 --cluster --autoscale \
    --replicas 1 --balancer jsq --rows 64 --duration-ms 100 \
    --window-ms 2.0 --sla-ms 0.5 \
    --timeseries-out /tmp/rmssd_autoscale_smoke.json > /dev/null
RMSSD_SANITIZE=1 python -m repro sla rmc1 --cluster --autoscale \
    --replicas 1 --balancer jsq --rows 64 --duration-ms 100 \
    --window-ms 2.0 --sla-ms 0.5 --no-fastpath \
    --timeseries-out /tmp/rmssd_autoscale_smoke_des.json > /dev/null
cmp /tmp/rmssd_autoscale_smoke.json /tmp/rmssd_autoscale_smoke_des.json
python -c "import json; \
events = json.load(open('/tmp/rmssd_autoscale_smoke.json'))['cluster']['scaling_events']; \
ups = sum(1 for e in events if e['action'] == 'scale-up'); \
assert ups >= 1, 'autoscaler never scaled up'; \
print('ok   %d scale-up(s), timeseries byte-identical' % ups)"

echo "== bench-regression gate (tools/bench_compare.py) =="
# Committed baselines must satisfy their own invariants and pass an
# identity diff; an injected synthetic regression must be flagged.
PYTHONPATH=src:. python -m tools.bench_compare \
    --self-check BENCH_fastpath.json BENCH_sweep.json BENCH_vcache.json \
    BENCH_autoscale.json BENCH_attribution.json
PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_fastpath.json --fresh BENCH_fastpath.json
PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_sweep.json --fresh BENCH_sweep.json
PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_vcache.json --fresh BENCH_vcache.json
PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_autoscale.json --fresh BENCH_autoscale.json
PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_attribution.json --fresh BENCH_attribution.json
python -c "import json; p = json.load(open('BENCH_vcache.json')); \
p['qps']['rmc1/RM-SSD+cache'][0] *= 0.5; \
json.dump(p, open('/tmp/rmssd_bench_regressed.json', 'w'))"
if PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_vcache.json \
    --fresh /tmp/rmssd_bench_regressed.json > /dev/null; then
    echo "bench_compare missed an injected regression" >&2
    exit 1
else
    echo "ok   injected regression flagged"
fi
# A controller that loses the SLA it is benchmarked on must be
# flagged, even if every config key still matches.
python -c "import json; p = json.load(open('BENCH_autoscale.json')); \
p['autoscaled']['meets_sla'] = False; \
p['autoscaled']['p99_ms'] = p['sla_ms'] * 2; \
json.dump(p, open('/tmp/rmssd_bench_autoscale_bad.json', 'w'))"
if PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_autoscale.json \
    --fresh /tmp/rmssd_bench_autoscale_bad.json > /dev/null; then
    echo "bench_compare missed an injected SLA loss" >&2
    exit 1
else
    echo "ok   injected autoscaler SLA loss flagged"
fi
# A tail-blame regression must be flagged *and* diagnosed: on top of
# the exact-metric failure, the gate prints the cross-run regression
# explainer's attribution lines from the payloads' embedded
# rmssd-explain/v1 documents (which stage, which replica moved p99).
python -c "import json; p = json.load(open('BENCH_attribution.json')); \
p['p99_ms'][-1] *= 1.5; \
q = [e for e in p['explain']['quantiles'] if e['q'] == p['quantile']][0]; \
q['latency_ns'] *= 1.5; \
extra = q['tail']['mean_ns']['queue_ns'] * 0.8; \
q['tail']['mean_ns']['queue_ns'] += extra; \
q['tail']['mean_ns']['latency_ns'] += extra; \
json.dump(p, open('/tmp/rmssd_bench_attr_bad.json', 'w'))"
if PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_attribution.json \
    --fresh /tmp/rmssd_bench_attr_bad.json > /tmp/rmssd_bench_attr_out.txt; then
    echo "bench_compare missed an injected tail-blame regression" >&2
    exit 1
fi
if ! grep -q "explain: p99 .*queue" /tmp/rmssd_bench_attr_out.txt; then
    echo "bench_compare failed without the explain diagnostic" >&2
    exit 1
fi
echo "ok   injected tail-blame regression flagged and attributed"
# The wall-clock budget must also have teeth: a run that doubles the
# committed bench-harness budget fails the gate.
python -c "import json; p = json.load(open('BENCH_sweep.json')); \
p['wall_s'] = p['max_wall_s'] * 2; \
json.dump(p, open('/tmp/rmssd_bench_slow.json', 'w'))"
if PYTHONPATH=src:. python -m tools.bench_compare \
    --baseline BENCH_sweep.json \
    --fresh /tmp/rmssd_bench_slow.json > /dev/null; then
    echo "bench_compare missed an injected wall-clock blowout" >&2
    exit 1
else
    echo "ok   injected wall-clock blowout flagged"
fi

echo "== tests (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q
