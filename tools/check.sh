#!/bin/sh
# Full correctness gate: domain lint, bytecode compile, sanitized tests.
# Same steps as `make check`, for environments without make.
set -e
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== lint =="
python -m tools.lint src tests benchmarks

echo "== compile =="
python -m compileall -q src tools tests benchmarks

echo "== fast-path differential smoke (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q tests/test_fastpath_equivalence.py -k smoke

echo "== vector-cache differential smoke (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q tests/test_vcache_equivalence.py \
    -k "inert or bitwise"

echo "== trace smoke (RMSSD_TRACE=1) =="
RMSSD_TRACE=1 python -m repro run rmc1 --backend rm-ssd \
    --requests 2 --rows 64 --no-compute \
    --trace-out /tmp/rmssd_trace_smoke.json \
    --metrics-out /tmp/rmssd_metrics_smoke.json
PYTHONPATH=src:. python -m tools.check_trace /tmp/rmssd_trace_smoke.json \
    --require request translate flash_read ev_sum bottom_mlp top_mlp \
    --metrics /tmp/rmssd_metrics_smoke.json

echo "== tests (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q
