#!/bin/sh
# Full correctness gate: domain lint, bytecode compile, sanitized tests.
# Same steps as `make check`, for environments without make.
set -e
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== lint =="
python -m tools.lint src tests benchmarks

echo "== compile =="
python -m compileall -q src tools tests benchmarks

echo "== fast-path differential smoke (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q tests/test_fastpath_equivalence.py -k smoke

echo "== tests (RMSSD_SANITIZE=1) =="
RMSSD_SANITIZE=1 python -m pytest -x -q
