"""Domain-specific lint rules for the RM-SSD reproduction.

Every rule encodes an invariant of *this* codebase that generic linters
cannot know about:

* **R1  unit-suffix discipline** — durations/rates live in variables
  whose names end in ``_ns``, ``_us``, ``_cycles`` or ``_hz``; other
  time-unit suffixes (``_ms``, ``_sec``, ...) are banned, and ``+``/
  ``-``/ordering between differently-suffixed names is flagged (unit
  conversion goes through ``*``/``/`` or the timing model's helpers).
* **R2  no float equality on simulated time** — ``==``/``!=`` against
  ``sim.now`` or ``*_ns``/``*_us`` values invites float-rounding bugs;
  compare against exact integers or use ``pytest.approx``.
* **R3  kernel encapsulation** — only :mod:`repro.sim` may touch
  ``heapq`` or call ``Event.succeed`` directly; everyone else goes
  through the simulator's public API.
* **R4  frozen configs stay frozen** — ``object.__setattr__`` outside
  ``__post_init__``/``__init__``/``__setstate__`` defeats frozen
  dataclasses.
* **R5  FTL owns the L2P map** — the private mapping state
  (``_table``, ``_next_free``) is only touched inside
  ``repro/ssd/ftl.py``.
* **R6  benchmarks report through the shared path** — ``bench_*.py``
  emits via :mod:`repro.analysis.report` (``Table``/``emit``), never
  bare ``print``, so harness output stays machine-comparable.
* **R7  no wall clock in simulated-time code** — ``repro.core``,
  ``repro.ssd``, ``repro.sim`` and ``repro.obs`` model *simulated*
  nanoseconds; importing ``time``/``datetime`` or calling
  ``time.time()`` there would leak wall-clock values into results
  (and silently break trace determinism and the fastpath/DES
  equivalence).  The clock is ``sim.now``, full stop.
* **R8  DES resources are named for the profiler** — every
  ``Resource``/``Server`` constructed outside :mod:`repro.sim`
  must pass a ``name`` (positionally or by keyword).  Anonymous
  resources fall out of the utilization profiler's busy/idle
  timelines and bottleneck attribution, so a new contention point
  would silently show up as idle time nobody can explain.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from tools.lint.engine import FileContext, Violation

#: Approved duration/rate suffixes (R1).
GOOD_UNITS = ("ns", "us", "cycles", "hz")

#: Banned time-unit suffixes (R1): other units invite silent mixups
#: with the nanosecond-based simulator clock.
BAD_UNITS = (
    "ms", "msec", "msecs", "millis",
    "sec", "secs", "second", "seconds",
    "usec", "usecs", "micros",
    "nsec", "nsecs", "nanos",
    "mins", "minutes", "hours",
)

_GOOD_SUFFIX_RE = re.compile(r"_(%s)$" % "|".join(GOOD_UNITS))
_BAD_SUFFIX_RE = re.compile(r"_(%s)$" % "|".join(BAD_UNITS), re.IGNORECASE)

#: FTL-private L2P state (R5).
FTL_PRIVATE_ATTRS = ("_table", "_next_free")


def _name_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit_of(node: ast.AST) -> Optional[str]:
    name = _name_of(node)
    if name is None:
        return None
    match = _GOOD_SUFFIX_RE.search(name)
    return match.group(1) if match else None


class Rule:
    id = "R?"
    title = ""
    #: One-line description surfaced by ``rmssd-lint --list-rules``.
    summary = ""

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            message=message,
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


class UnitSuffixRule(Rule):
    """R1: duration names use approved unit suffixes; no mixed-unit
    addition/subtraction/ordering."""

    id = "R1"
    title = "unit-suffix discipline"
    summary = (
        "duration names end in _ns/_us/_cycles/_hz; no mixed-unit "
        "+/-/ordering"
    )

    _ORDERING = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

    def _binding_targets(self, node: ast.AST) -> List[Tuple[ast.AST, str]]:
        out: List[Tuple[ast.AST, str]] = []

        def collect(target: ast.AST) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    collect(element)
            else:
                name = _name_of(target)
                if name is not None:
                    out.append((target, name))

        if isinstance(node, ast.Assign):
            for target in node.targets:
                collect(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            collect(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                out.append((arg, arg.arg))
        return out

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        index = ctx.index
        # (a) banned unit suffixes at binding sites.
        for node in index.nodes(
            ast.Assign,
            ast.AnnAssign,
            ast.AugAssign,
            ast.FunctionDef,
            ast.AsyncFunctionDef,
            ast.Lambda,
        ):
            for target, name in self._binding_targets(node):
                match = _BAD_SUFFIX_RE.search(name)
                if match:
                    yield self.violation(
                        ctx,
                        target if hasattr(target, "lineno") else node,
                        f"name '{name}' uses banned time suffix "
                        f"'_{match.group(1)}'; durations end in "
                        f"{', '.join('_' + u for u in GOOD_UNITS)}",
                    )
        # (b) mixed-unit arithmetic.
        for node in index.nodes(ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left, right = _unit_of(node.left), _unit_of(node.right)
            if left and right and left != right:
                yield self.violation(
                    ctx,
                    node,
                    f"arithmetic mixes '_{left}' and '_{right}' "
                    f"operands; convert explicitly first",
                )
        for node in index.nodes(ast.Compare):
            operands = [node.left] + list(node.comparators)
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, self._ORDERING):
                    continue
                left, right = _unit_of(lhs), _unit_of(rhs)
                if left and right and left != right:
                    yield self.violation(
                        ctx,
                        node,
                        f"comparison mixes '_{left}' and '_{right}' "
                        f"operands; convert explicitly first",
                    )


class FloatTimeEqualityRule(Rule):
    """R2: no ``==``/``!=`` against simulated-time values."""

    id = "R2"
    title = "no float equality on simulated time"
    summary = (
        "no ==/!= against sim.now or _ns/_us values; use exact ints "
        "or pytest.approx"
    )

    @staticmethod
    def _is_time(node: ast.AST) -> bool:
        name = _name_of(node)
        if name == "now":
            return True
        return bool(name and _GOOD_SUFFIX_RE.search(name)
                    and not name.endswith(("_cycles", "_hz")))

    @staticmethod
    def _is_exempt(node: ast.AST) -> bool:
        # Exact integers are representable; pytest.approx is the
        # sanctioned float comparator.
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return True
        if isinstance(node, ast.Call) and _name_of(node.func) == "approx":
            return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.index.nodes(ast.Compare):
            operands = [node.left] + list(node.comparators)
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for timeish, other in ((lhs, rhs), (rhs, lhs)):
                    if self._is_time(timeish) and not self._is_exempt(other):
                        yield self.violation(
                            ctx,
                            node,
                            f"float equality on simulated time "
                            f"'{_name_of(timeish)}'; compare exact "
                            f"integers or use pytest.approx",
                        )
                        break


class KernelEncapsulationRule(Rule):
    """R3: heapq / Event.succeed stay inside repro.sim."""

    id = "R3"
    title = "kernel encapsulation"
    summary = "heapq and Event.succeed stay inside repro.sim"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module("repro", "sim"):
            return
        index = ctx.index
        for node in index.nodes(ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "heapq":
                    yield self.violation(
                        ctx, node,
                        "direct heapq use outside repro.sim; schedule "
                        "through Simulator events instead",
                    )
        for node in index.nodes(ast.ImportFrom):
            if (node.module or "").split(".")[0] == "heapq":
                yield self.violation(
                    ctx, node,
                    "direct heapq use outside repro.sim; schedule "
                    "through Simulator events instead",
                )
        for node in index.nodes(ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "succeed"
            ):
                yield self.violation(
                    ctx, node,
                    "direct Event.succeed outside repro.sim; yield "
                    "events or use Store/Resource primitives",
                )


class FrozenConfigRule(Rule):
    """R4: no object.__setattr__ outside dataclass init hooks."""

    id = "R4"
    title = "frozen configs stay frozen"
    summary = (
        "object.__setattr__ only inside __init__/__post_init__/"
        "__setstate__"
    )

    _ALLOWED_SCOPES = ("__post_init__", "__init__", "__setstate__")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        index = ctx.index
        for node in index.nodes(ast.Call):
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "__setattr__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "object"
            ):
                continue
            enclosing = index.enclosing(
                node, ast.FunctionDef, ast.AsyncFunctionDef
            )
            scope = enclosing.name if enclosing is not None else None
            if scope in self._ALLOWED_SCOPES:
                continue
            yield self.violation(
                ctx, node,
                "object.__setattr__ mutates a frozen config "
                "outside __post_init__; construct a new instance "
                "with dataclasses.replace",
            )


class FTLEncapsulationRule(Rule):
    """R5: L2P mapping state is private to repro/ssd/ftl.py."""

    id = "R5"
    title = "FTL owns the L2P map"
    summary = "L2P mapping state (_table/_next_free) private to ftl.py"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_file("repro", "ssd", "ftl.py"):
            return
        for node in ctx.index.nodes(ast.Attribute):
            if node.attr in FTL_PRIVATE_ATTRS:
                yield self.violation(
                    ctx, node,
                    f"bare access to FTL L2P state '.{node.attr}' outside "
                    f"repro.ssd.ftl; use translate()/map_write()/"
                    f"mapped_pages",
                )


class BenchmarkReportRule(Rule):
    """R6: bench_*.py emits through repro.analysis.report."""

    id = "R6"
    title = "benchmarks report through the shared path"
    summary = "bench_*.py emits via repro.analysis.report, never print"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.basename.startswith("bench_"):
            return
        for node in ctx.index.nodes(ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    ctx, node,
                    "ad-hoc print in a benchmark; emit through "
                    "repro.analysis.report (Table or emit)",
                )


class WallClockRule(Rule):
    """R7: simulated-time packages never consult the wall clock."""

    id = "R7"
    title = "no wall clock in simulated-time code"
    summary = "repro.{core,ssd,sim,obs} never import time/datetime"

    #: Packages whose results must be pure functions of the simulated
    #: clock (determinism + fastpath/DES equivalence depend on it).
    SIM_PACKAGES = (
        ("repro", "core"),
        ("repro", "ssd"),
        ("repro", "sim"),
        ("repro", "obs"),
    )
    _BANNED_MODULES = ("time", "datetime")
    _BANNED_CALLS = (
        "time", "time_ns",
        "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns",
        "process_time", "process_time_ns",
        "now", "utcnow", "today",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not any(ctx.in_module(*parts) for parts in self.SIM_PACKAGES):
            return
        index = ctx.index
        for node in index.nodes(ast.Import):
            for alias in node.names:
                module = alias.name.split(".")[0]
                if module in self._BANNED_MODULES:
                    yield self.violation(
                        ctx, node,
                        f"wall-clock module '{module}' imported in "
                        f"simulated-time code; the clock is sim.now",
                    )
        for node in index.nodes(ast.ImportFrom):
            module = (node.module or "").split(".")[0]
            if module in self._BANNED_MODULES:
                yield self.violation(
                    ctx, node,
                    f"wall-clock module '{module}' imported in "
                    f"simulated-time code; the clock is sim.now",
                )
        for node in index.nodes(ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._BANNED_CALLS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("time", "datetime", "date")
            ):
                yield self.violation(
                    ctx, node,
                    f"wall-clock call '{node.func.value.id}."
                    f"{node.func.attr}()' in simulated-time code; "
                    f"the clock is sim.now",
                )


class NamedResourceRule(Rule):
    """R8: DES resources built outside repro.sim carry a name."""

    id = "R8"
    title = "DES resources are named for the profiler"
    summary = "Resource/Server built outside repro.sim must pass name="

    #: Constructor -> minimum positional-arg count that covers the
    #: ``name`` parameter (Server(sim, name, ...);
    #: Resource(sim, capacity, name, ...)).
    _CONSTRUCTORS = {"Server": 2, "Resource": 3}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_module("repro") or ctx.in_module("repro", "sim"):
            return
        for node in ctx.index.nodes(ast.Call):
            callee = _name_of(node.func)
            arity = self._CONSTRUCTORS.get(callee)
            if arity is None:
                continue
            positional = [
                arg for arg in node.args if not isinstance(arg, ast.Starred)
            ]
            if len(positional) >= arity:
                continue
            if any(keyword.arg == "name" for keyword in node.keywords):
                continue
            if any(keyword.arg is None for keyword in node.keywords):
                continue  # **kwargs may carry the name; give it the
                # benefit of the doubt rather than false-positive.
            yield self.violation(
                ctx, node,
                f"anonymous {callee}; pass name= so the utilization "
                f"profiler can attribute its busy intervals",
            )


ALL_RULES = (
    UnitSuffixRule(),
    FloatTimeEqualityRule(),
    KernelEncapsulationRule(),
    FrozenConfigRule(),
    FTLEncapsulationRule(),
    BenchmarkReportRule(),
    WallClockRule(),
    NamedResourceRule(),
)

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}
