"""Whole-program context for the cross-file lint rules (R9-R12).

One :class:`ProjectContext` is built over every parsed file of a lint
run (sharing the :class:`~tools.lint.engine.NodeIndex` trees — each
file is parsed and walked once) and gives the project rules:

* a **module symbol table** — module-level string constants, imports,
  classes, and functions per file;
* a **def/use index** — functions by bare name, attribute references
  by name;
* a **call graph** — name-based and deliberately over-approximate: a
  call to ``x.foo()`` reaches every project function named ``foo``.
  Over-approximation is sound for the parity rule because both
  execution paths resolve through the same map, so spurious targets
  land in *both* closures;
* **string-literal provenance** — ``self.kind`` inside a method
  resolves to the set of literals passed for that constructor
  parameter at every (production) construction site, so dynamically
  named emissions like ``Server.serve``'s profiler record still
  compare against the fast path's literal kinds.

Unresolvable strings become the :data:`DYNAMIC` sentinel, which the
rules ignore when diffing emission sets (an unknown value can never
prove one-sidedness).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from tools.lint.engine import FileContext

#: Sentinel for a string value static analysis cannot resolve.
DYNAMIC = "<dynamic>"

#: The instrumentation-name catalogue module (lint rule R12).
CATALOGUE_MODULE = "repro.obs.names"

#: The I/O accounting class whose field flow R9 compares.
STATS_CLASS = "IOStatistics"

#: Tracer/profiler/metrics call signatures: API attr ->
#: (name-arg position, name keyword, kind-arg position, kind keyword,
#: default kind).  ``None`` marks "no kind facet".
INSTRUMENTATION_APIS: Dict[str, Tuple[int, str, Optional[int], Optional[str], Optional[str]]] = {
    "add_span": (0, "name", None, None, None),
    "measure": (1, "name", None, None, None),
    "record_service": (0, "name", 4, "kind", "server"),
    "record_busy": (0, "name", 3, "kind", "resource"),
    "record_queue_depth": (0, "name", None, None, None),
    "counter": (0, "name", None, None, None),
    "gauge": (0, "name", None, None, None),
    "histogram": (0, "name", None, None, None),
    # SLOEngine.objective(name, metric, ...): both strings are
    # instrumentation names — the objective's own name and the metric
    # it watches — so both ride the catalogue discipline (the metric
    # goes through the kind slot of the spec tuple).
    "objective": (0, "name", 1, "metric", None),
    # CritPathCollector.record_requests(name, records): the
    # per-request critical-path feed both pipeline paths emit; R9's
    # EXPLAIN_PARITY spec diffs the DES and fast emission sets.
    "record_requests": (0, "name", None, None, None),
}

#: Metric-factory calls only count with one of these receivers, so
#: ``np.histogram(...)`` is not mistaken for a metrics emission.
METRIC_RECEIVERS = ("metrics", "registry")

#: API attr -> comparison group used by the parity rule.
API_GROUPS = {
    "add_span": "span",
    "measure": "span",
    "counter": "metric",
    "gauge": "metric",
    "histogram": "metric",
    "record_service": "record_service",
    "record_busy": "record_busy",
    "record_queue_depth": "record_queue_depth",
    "objective": "slo",
    "record_requests": "record_requests",
}


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """Class name carried by a type annotation, best effort.

    ``Simulator`` -> ``Simulator``; ``Optional["VectorCache"]`` ->
    ``VectorCache``; container annotations (``List[Resource]``) yield
    ``None`` — the annotated *value* is the container, not the class.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip(" '\"") or None
    if isinstance(node, ast.Subscript):
        base = _annotation_class(node.value)
        if base in ("Optional", "Final", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_class(inner)
    return None


def module_dotted(path: str) -> str:
    """Best-effort dotted module name for a file path.

    Anchors at the last ``src`` segment (``.../src/repro/x.py`` ->
    ``repro.x``) so absolute paths and scratch copies resolve the same
    imports; falls back to ``tests``/``benchmarks`` anchors, then the
    full path.
    """
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[0] in ("/", "\\"):
        parts = parts[1:]
    for anchor in ("src",):
        if anchor in parts:
            cut = len(parts) - 1 - parts[::-1].index(anchor)
            parts = parts[cut + 1 :]
            break
    else:
        for anchor in ("tests", "benchmarks"):
            if anchor in parts:
                cut = len(parts) - 1 - parts[::-1].index(anchor)
                parts = parts[cut:]
                break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class Emission:
    """One instrumentation value emitted at one call site."""

    api: str  #: API attr, e.g. ``add_span`` / ``record_busy``.
    facet: str  #: ``"name"`` or ``"kind"``.
    value: str  #: Resolved string, or :data:`DYNAMIC`.
    path: str
    line: int

    @property
    def group(self) -> str:
        return API_GROUPS[self.api]


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    name: str
    qualname: str
    module: "ModuleInfo"
    cls: Optional["ClassInfo"]
    node: ast.AST
    #: Call edges as ``(receiver class or None, method name)``: a
    #: resolved receiver class narrows the edge to that class's method;
    #: ``None`` falls back to every project function of that name.
    calls: Set[Tuple[Optional[str], str]] = field(default_factory=set)
    emissions: List[Emission] = field(default_factory=list)
    stats_fields: Set[str] = field(default_factory=set)

    @property
    def path(self) -> str:
        return self.module.ctx.path

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """Constructor string-literal provenance of one class."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    #: ``__init__`` parameter names after ``self``, in order.
    init_params: List[str] = field(default_factory=list)
    #: Parameter -> string default (only string defaults recorded).
    init_defaults: Dict[str, str] = field(default_factory=dict)
    #: Instance attr -> ("param", name) | ("const", value) | ("dynamic",).
    attr_source: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Parameter -> strings observed at production construction sites.
    param_values: Dict[str, Set[str]] = field(default_factory=dict)
    #: Instance attr -> class name (from ``__init__`` annotations and
    #: direct constructions), used to type call receivers.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Method name -> FunctionInfo defined on this class.
    methods: Dict[str, "FunctionInfo"] = field(default_factory=dict)

    def resolve_attr(self, attr: str) -> Optional[FrozenSet[str]]:
        """Possible string values of ``self.<attr>``; None if untracked."""
        source = self.attr_source.get(attr)
        if source is None:
            return None
        if source[0] == "const":
            return frozenset((source[1],))
        if source[0] == "param":
            param = source[1]
            values = set(self.param_values.get(param, ()))
            if not values:
                default = self.init_defaults.get(param)
                values = {default} if default is not None else {DYNAMIC}
            return frozenset(values)
        return frozenset((DYNAMIC,))


@dataclass
class ModuleInfo:
    """Symbol table of one file."""

    ctx: FileContext
    dotted: str
    #: Module-level NAME -> string literal value.
    constants: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module dotted, original name) from
    #: ``from X import Y [as Z]``.
    import_from: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: local alias -> module dotted from ``import X [as Z]``.
    import_module: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)
    classes: List[ClassInfo] = field(default_factory=list)


class ProjectContext:
    """Symbol tables, call graph, and provenance over a set of files."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts = list(contexts)
        self.modules: List[ModuleInfo] = []
        self.modules_by_dotted: Dict[str, ModuleInfo] = {}
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: IOStatistics method name -> counter fields it mutates.
        self.stats_method_fields: Dict[str, Set[str]] = {}
        for ctx in self.contexts:
            self._index_module(ctx)
        self._collect_construction_sites()
        self._collect_stats_field_flow()
        for module in self.modules:
            for fn in module.functions:
                self._analyze_function(fn)

    # ------------------------------------------------------------------
    # Pass A: per-module symbol tables
    # ------------------------------------------------------------------
    def _index_module(self, ctx: FileContext) -> None:
        module = ModuleInfo(ctx=ctx, dotted=module_dotted(ctx.path))
        tree = ctx.tree
        for stmt in getattr(tree, "body", ()):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    stmt.value, ast.Constant
                ) and isinstance(stmt.value.value, str):
                    module.constants[target.id] = stmt.value.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and isinstance(
                    stmt.value, ast.Constant
                ) and isinstance(stmt.value.value, str):
                    module.constants[stmt.target.id] = stmt.value.value
        for node in ctx.index.nodes(ast.Import):
            for alias in node.names:
                module.import_module[alias.asname or alias.name] = alias.name
        for node in ctx.index.nodes(ast.ImportFrom):
            source = node.module or ""
            if node.level:
                package = module.dotted.split(".")
                package = package[: max(0, len(package) - node.level)]
                source = ".".join(package + ([source] if source else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                module.import_from[alias.asname or alias.name] = (
                    source,
                    alias.name,
                )
        for stmt in getattr(tree, "body", ()):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(module, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                info = self._register_class(module, stmt)
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._register_function(module, member, cls=info)
        self.modules.append(module)
        self.modules_by_dotted.setdefault(module.dotted, module)

    def _register_function(
        self, module: ModuleInfo, node: ast.AST, cls: Optional[ClassInfo]
    ) -> None:
        qual = f"{module.dotted}.{cls.name + '.' if cls else ''}{node.name}"
        fn = FunctionInfo(
            name=node.name, qualname=qual, module=module, cls=cls, node=node
        )
        module.functions.append(fn)
        self.functions_by_name.setdefault(node.name, []).append(fn)
        if cls is not None:
            cls.methods.setdefault(node.name, fn)

    def _register_class(self, module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        info = ClassInfo(name=node.name, module=module, node=node)
        init = next(
            (
                member
                for member in node.body
                if isinstance(member, ast.FunctionDef)
                and member.name == "__init__"
            ),
            None,
        )
        if init is not None:
            args = init.args
            params = [a.arg for a in args.posonlyargs + args.args]
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            info.init_params = params
            defaults = args.defaults
            for param, default in zip(params[len(params) - len(defaults):], defaults):
                if isinstance(default, ast.Constant) and isinstance(
                    default.value, str
                ):
                    info.init_defaults[param] = default.value
            for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
                if isinstance(default, ast.Constant) and isinstance(
                    default.value, str
                ):
                    info.init_defaults[kwarg.arg] = default.value
            param_types: Dict[str, str] = {}
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                annotated = _annotation_class(arg.annotation)
                if annotated is not None:
                    param_types[arg.arg] = annotated
            for stmt in ast.walk(init):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    value = stmt.value
                    if isinstance(value, ast.Name) and value.id in params:
                        info.attr_source[target.attr] = ("param", value.id)
                    elif isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        info.attr_source[target.attr] = ("const", value.value)
                    else:
                        info.attr_source.setdefault(target.attr, ("dynamic",))
                    typed = self._value_class(value, param_types)
                    if typed is not None:
                        info.attr_types.setdefault(target.attr, typed)
        module.classes.append(info)
        self.classes_by_name.setdefault(node.name, []).append(info)
        return info

    def _value_class(
        self, value: ast.AST, param_types: Dict[str, str]
    ) -> Optional[str]:
        """Class name an ``__init__`` assignment's value instantiates."""
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        if isinstance(value, ast.Call):
            callee = _terminal_name(value.func)
            if callee and callee[:1].isupper():
                return callee
            return None
        if isinstance(value, ast.IfExp):
            return self._value_class(value.body, param_types) or self._value_class(
                value.orelse, param_types
            )
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                typed = self._value_class(operand, param_types)
                if typed is not None:
                    return typed
        return None

    # ------------------------------------------------------------------
    # Pass B: constructor string provenance
    # ------------------------------------------------------------------
    def _collect_construction_sites(self) -> None:
        """Bind string args at every substrate construction site.

        Only modules under ``repro/ssd`` and ``repro/sim`` plus the two
        serving-pipeline modules contribute — the device substrate is
        the layer the fast paths mirror, so its construction sites
        define what ``self.kind``/``self.name`` can be *on the lookup
        path*, and the pipeline modules' stage servers define the
        serving path's.  Ad-hoc constructions in tests or host-side
        models (e.g. the host-I/O ``Resource`` in ``repro.core.device``,
        deliberately excluded) would otherwise pollute the provenance
        the parity rules compare with kinds those paths never emit.
        """
        for module in self.modules:
            if not (
                module.ctx.in_module("repro", "ssd")
                or module.ctx.in_module("repro", "sim")
                or module.ctx.in_module("repro", "core", "pipeline_sim")
                or module.ctx.in_module("repro", "core", "pipeline_fast")
            ):
                continue
            for call in module.ctx.index.nodes(ast.Call):
                callee = _terminal_name(call.func)
                for cls in self.classes_by_name.get(callee, ()):
                    self._bind_construction(module, call, cls)

    def _bind_construction(
        self, module: ModuleInfo, call: ast.Call, cls: ClassInfo
    ) -> None:
        bound: Set[str] = set()
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                return
            if position < len(cls.init_params):
                param = cls.init_params[position]
                bound.add(param)
                self._add_param_values(module, cls, param, arg)
        for keyword in call.keywords:
            if keyword.arg is None:
                return
            bound.add(keyword.arg)
            self._add_param_values(module, cls, keyword.arg, keyword.value)
        for param, default in cls.init_defaults.items():
            if param not in bound:
                cls.param_values.setdefault(param, set()).add(default)

    def _add_param_values(
        self, module: ModuleInfo, cls: ClassInfo, param: str, arg: ast.AST
    ) -> None:
        values = self.resolve_str(arg, module, cls=None)
        if values:
            cls.param_values.setdefault(param, set()).update(values)

    # ------------------------------------------------------------------
    # String resolution
    # ------------------------------------------------------------------
    def constant_origin(
        self, expr: ast.AST, module: ModuleInfo
    ) -> Tuple[str, Optional[str], Optional[str]]:
        """Where a name-argument expression's string comes from.

        Returns ``(kind, source module dotted, value)`` with kind one
        of ``"literal"`` (inline string), ``"module-const"`` (a
        module-level constant, possibly imported), or ``"dynamic"``.
        """
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, str):
                return "literal", module.dotted, expr.value
            return "dynamic", None, None
        if isinstance(expr, ast.Name):
            if expr.id in module.constants:
                return "module-const", module.dotted, module.constants[expr.id]
            origin = module.import_from.get(expr.id)
            if origin is not None:
                source, original = origin
                target = self.modules_by_dotted.get(source)
                value = target.constants.get(original) if target else None
                if value is not None or target is None:
                    return "module-const", source, value
                # Imported name that is not a constant in its module
                # (a function, class, or submodule) is not a string.
                return "dynamic", None, None
            return "dynamic", None, None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            alias = expr.value.id
            source = module.import_module.get(alias)
            if source is None:
                origin = module.import_from.get(alias)
                if origin is not None:
                    # ``from repro.obs import names`` -> submodule alias.
                    source = f"{origin[0]}.{origin[1]}"
            if source is not None:
                target = self.modules_by_dotted.get(source)
                value = target.constants.get(expr.attr) if target else None
                return "module-const", source, value
        return "dynamic", None, None

    def resolve_str(
        self,
        expr: ast.AST,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
    ) -> FrozenSet[str]:
        """Possible string values of ``expr``; DYNAMIC marks unknowns."""
        kind, _, value = self.constant_origin(expr, module)
        if kind != "dynamic" and value is not None:
            return frozenset((value,))
        if isinstance(expr, ast.Attribute):
            receiver = expr.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id == "self"
                and cls is not None
            ):
                resolved = cls.resolve_attr(expr.attr)
                if resolved is not None:
                    return resolved
            # Unknown receiver: if the receiver *variable* is named
            # after a project class (``server.kind`` -> Server), use
            # that class's provenance; otherwise union every class
            # tracking this attribute.  Both are sound for parity —
            # symmetric inputs resolve through the same tables.
            candidates = self._receiver_classes(receiver, expr.attr)
            union: Set[str] = set()
            for info in candidates:
                resolved = info.resolve_attr(expr.attr)
                if resolved:
                    union.update(resolved)
            if union:
                union.add(DYNAMIC)
                return frozenset(union)
        if isinstance(expr, ast.Constant) and not isinstance(expr.value, str):
            return frozenset()
        return frozenset((DYNAMIC,))

    def _attr_classes(self, attr: str) -> Iterator[ClassInfo]:
        for classes in self.classes_by_name.values():
            for info in classes:
                if attr in info.attr_source:
                    yield info

    def _receiver_classes(
        self, receiver: ast.AST, attr: str
    ) -> List[ClassInfo]:
        """Classes a ``receiver.attr`` read may refer to."""
        recv_name = _terminal_name(receiver)
        if recv_name:
            wanted = recv_name.lower()
            matched = [
                info
                for name, infos in self.classes_by_name.items()
                if name.lstrip("_").lower() == wanted
                for info in infos
                if attr in info.attr_source
            ]
            if matched:
                return matched
        return list(self._attr_classes(attr))

    # ------------------------------------------------------------------
    # Pass C: IOStatistics field flow
    # ------------------------------------------------------------------
    def _collect_stats_field_flow(self) -> None:
        writes: Dict[str, Set[str]] = {}
        calls: Dict[str, Set[str]] = {}
        for info in self.classes_by_name.get(STATS_CLASS, ()):
            for member in info.node.body:
                if not isinstance(member, ast.FunctionDef):
                    continue
                fields: Set[str] = set()
                called: Set[str] = set()
                for node in ast.walk(member):
                    targets: List[ast.AST] = []
                    if isinstance(node, ast.Assign):
                        targets = list(node.targets)
                    elif isinstance(node, ast.AugAssign):
                        targets = [node.target]
                    elif isinstance(node, ast.Call):
                        if (
                            isinstance(node.func, ast.Attribute)
                            and isinstance(node.func.value, ast.Name)
                            and node.func.value.id == "self"
                        ):
                            called.add(node.func.attr)
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            fields.add(target.attr)
                writes.setdefault(member.name, set()).update(fields)
                calls.setdefault(member.name, set()).update(called)
        # Close over self-calls (record_vector_read delegating to
        # record_vector_reads and the like); two passes suffice for the
        # shallow delegation the stats class uses.
        for _ in range(2):
            for method, called in calls.items():
                for other in called:
                    writes.setdefault(method, set()).update(writes.get(other, ()))
        self.stats_method_fields = writes

    # ------------------------------------------------------------------
    # Pass D: per-function emissions, callees, stats touches
    # ------------------------------------------------------------------
    def _analyze_function(self, fn: FunctionInfo) -> None:
        module = fn.module
        bindings = self._local_bindings(fn)
        annotations = self._param_annotations(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _terminal_name(node.func)
            if callee is not None:
                receiver_cls = None
                if isinstance(node.func, ast.Attribute):
                    receiver_cls = self._expr_class(
                        node.func.value, fn, bindings, annotations
                    )
                fn.calls.add((receiver_cls, callee))
            if not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr in self.stats_method_fields and attr.startswith("record_"):
                receiver = _terminal_name(node.func.value)
                if receiver == "stats":
                    fn.stats_fields.update(self.stats_method_fields[attr])
                continue
            spec = INSTRUMENTATION_APIS.get(attr)
            if spec is None:
                continue
            if attr in ("counter", "gauge", "histogram"):
                receiver = _terminal_name(node.func.value)
                if receiver not in METRIC_RECEIVERS:
                    continue
            name_pos, name_kw, kind_pos, kind_kw, kind_default = spec
            name_expr = self._call_arg(node, name_pos, name_kw)
            if name_expr is not None:
                for value in self.resolve_str(name_expr, module, fn.cls):
                    fn.emissions.append(
                        Emission(attr, "name", value, fn.path, name_expr.lineno)
                    )
            if kind_pos is None:
                continue
            kind_expr = self._call_arg(node, kind_pos, kind_kw)
            if kind_expr is None:
                if kind_default is not None:
                    fn.emissions.append(
                        Emission(attr, "kind", kind_default, fn.path, node.lineno)
                    )
                continue
            for value in self.resolve_str(kind_expr, module, fn.cls):
                fn.emissions.append(
                    Emission(attr, "kind", value, fn.path, kind_expr.lineno)
                )

    @staticmethod
    def _call_arg(
        call: ast.Call, position: int, keyword: Optional[str]
    ) -> Optional[ast.AST]:
        if position < len(call.args):
            arg = call.args[position]
            return None if isinstance(arg, ast.Starred) else arg
        if keyword is not None:
            for kw in call.keywords:
                if kw.arg == keyword:
                    return kw.value
        return None

    # ------------------------------------------------------------------
    # Receiver typing (what narrows the name-based call graph)
    # ------------------------------------------------------------------
    @staticmethod
    def _local_bindings(fn: FunctionInfo) -> Dict[str, ast.AST]:
        """Sole-assignment local name -> value expression, per function."""
        bindings: Dict[str, ast.AST] = {}
        ambiguous: Set[str] = set()
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                if name in bindings:
                    ambiguous.add(name)
                else:
                    bindings[name] = node.value
        for name in ambiguous:
            bindings.pop(name, None)
        return bindings

    @staticmethod
    def _param_annotations(fn: FunctionInfo) -> Dict[str, str]:
        args = fn.node.args
        annotations: Dict[str, str] = {}
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            annotated = _annotation_class(arg.annotation)
            if annotated is not None:
                annotations[arg.arg] = annotated
        return annotations

    def _expr_class(
        self,
        expr: Optional[ast.AST],
        fn: FunctionInfo,
        bindings: Dict[str, ast.AST],
        annotations: Dict[str, str],
        depth: int = 0,
    ) -> Optional[str]:
        """Class name of an expression's value, from annotations."""
        if expr is None or depth > 4:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return fn.cls.name if fn.cls is not None else None
            if expr.id in annotations:
                return annotations[expr.id]
            binding = bindings.get(expr.id)
            if binding is not None and not isinstance(binding, ast.Name):
                return self._expr_class(
                    binding, fn, bindings, annotations, depth + 1
                )
            return None
        if isinstance(expr, ast.Attribute):
            base = self._expr_class(
                expr.value, fn, bindings, annotations, depth + 1
            )
            if base is not None:
                for info in self.classes_by_name.get(base, ()):
                    attr_cls = info.attr_types.get(expr.attr)
                    if attr_cls is not None:
                        return attr_cls
            return None
        if isinstance(expr, ast.Call):
            callee = _terminal_name(expr.func)
            if callee in self.classes_by_name:
                return callee
            return None
        if isinstance(expr, ast.IfExp):
            return self._expr_class(
                expr.body, fn, bindings, annotations, depth + 1
            ) or self._expr_class(
                expr.orelse, fn, bindings, annotations, depth + 1
            )
        if isinstance(expr, ast.BoolOp):
            for operand in expr.values:
                typed = self._expr_class(
                    operand, fn, bindings, annotations, depth + 1
                )
                if typed is not None:
                    return typed
        return None

    # ------------------------------------------------------------------
    # Call-graph reachability
    # ------------------------------------------------------------------
    def functions_named(self, name: str) -> List[FunctionInfo]:
        return self.functions_by_name.get(name, [])

    def call_targets(
        self, receiver_cls: Optional[str], name: str
    ) -> List[FunctionInfo]:
        """Functions a ``(receiver class, method name)`` edge reaches.

        A typed receiver narrows the edge to that class's own method;
        an untyped receiver — or a class that does not define the
        method (inheritance, mixins) — falls back to every project
        function with the bare name.
        """
        if receiver_cls is not None:
            narrowed = [
                info.methods[name]
                for info in self.classes_by_name.get(receiver_cls, ())
                if name in info.methods
            ]
            if narrowed:
                return narrowed
        return self.functions_by_name.get(name, [])

    def reachable(self, roots: Sequence[FunctionInfo]) -> List[FunctionInfo]:
        """Closure of ``roots`` under the receiver-typed call graph."""
        seen: Set[int] = set()
        out: List[FunctionInfo] = []
        frontier = list(roots)
        while frontier:
            fn = frontier.pop()
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            out.append(fn)
            for receiver_cls, name in fn.calls:
                frontier.extend(self.call_targets(receiver_cls, name))
        return out
