"""Lint ratchet: tolerate recorded violations, fail only on new ones.

A baseline file is a JSON document listing violations that predate a
rule (or a rule tightening) and are accepted for now::

    {
      "version": 1,
      "entries": [
        {"rule": "R9", "path": "src/repro/ssd/x.py", "message": "..."}
      ]
    }

The ratchet semantics of :func:`partition`:

* a violation matching a baseline entry (same rule, path and message;
  line numbers are deliberately ignored so unrelated edits do not
  invalidate the baseline) is **tolerated** — reported as informational
  but does not fail the run;
* a violation with no matching entry is **new** — the run fails;
* a baseline entry no match consumed is **stale** — the debt was paid
  down, and the run prints a reminder to re-run ``--write-baseline``
  so the ratchet only ever tightens.

Matching is multiset-style: two identical violations need two entries.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from tools.lint.engine import Violation

#: Identity of one violation for ratchet matching (no line number).
BaselineKey = Tuple[str, str, str]


def violation_key(violation: Violation) -> BaselineKey:
    return (
        violation.rule,
        Path(violation.path).as_posix(),
        violation.message,
    )


def load_baseline(path: str) -> Counter:
    """Parse a baseline file into a multiset of tolerated keys."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or "entries" not in raw:
        raise ValueError(
            f"{path}: baseline must be an object with an 'entries' list"
        )
    keys: Counter = Counter()
    for entry in raw["entries"]:
        try:
            keys[(entry["rule"], entry["path"], entry["message"])] += 1
        except (TypeError, KeyError) as err:
            raise ValueError(
                f"{path}: malformed baseline entry {entry!r}"
            ) from err
    return keys


def write_baseline(path: str, violations: Sequence[Violation]) -> None:
    """Record the current violations as the new tolerated set."""
    entries: List[Dict[str, str]] = [
        {"rule": rule, "path": vpath, "message": message}
        for rule, vpath, message in sorted(
            violation_key(v) for v in violations
        )
    ]
    document = {"version": 1, "entries": entries}
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def partition(
    violations: Sequence[Violation], baseline: Counter
) -> Tuple[List[Violation], List[Violation], List[BaselineKey]]:
    """Split violations into ``(new, tolerated)`` plus stale keys.

    Each baseline entry absorbs at most one matching violation; stale
    keys are entries left over after every violation was matched.
    """
    budget = Counter(baseline)
    new: List[Violation] = []
    tolerated: List[Violation] = []
    for violation in violations:
        key = violation_key(violation)
        if budget[key] > 0:
            budget[key] -= 1
            tolerated.append(violation)
        else:
            new.append(violation)
    stale = sorted(budget.elements())
    return new, tolerated, stale
