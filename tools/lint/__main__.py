"""Entry point for ``python -m tools.lint``."""

import sys

from tools.lint.cli import main

sys.exit(main())
