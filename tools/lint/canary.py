"""Injected-drift canary for the R9 instrumentation-parity rule.

``python -m tools.lint.canary`` proves the whole-program analysis is
actually live, not vacuously green: for each parity contract it copies
``src/`` to a scratch directory, deletes exactly one fast-path
profiler record, and asserts that

* the **unmutated** copy is R9-clean (0 violations), and
* the **mutated** copy trips R9 with a violation naming the now
  DES-only record.

Four contracts are exercised: the lookup path (the ``record_busy``
call that closes a die's busy interval in
:func:`repro.ssd.fastpath._replay_channel`), the serving path (the
``record_service`` call that records every stage triple in
:func:`repro.core.pipeline_fast._record_stage_services`), the serving
*timeseries* feed (the fast path's ``_observe_completions`` call in
:meth:`repro.core.pipeline_sim.PipelineSimulator._run_fast`, whose
deletion leaves the windowed serving metrics DES-only), and the
*critical-path* feed (the ``record_requests`` call in
``_explain_fast``, whose deletion leaves the rmssd-explain/v1
attribution documents DES-only).

If a refactor ever blinds R9 — a renamed root, a broken call-graph
edge, an over-wide provenance union — the clean/mutated runs stop
differing and this exits 1, failing ``tools/check.sh`` before the
blind spot can hide a real parity regression.
"""

from __future__ import annotations

import ast
import shutil
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from tools.lint.engine import Violation, lint_paths
from tools.lint.rules_project import PROJECT_RULES_BY_ID


@dataclass(frozen=True)
class Mutation:
    """One fast-path emission to delete in a scratch copy of src/."""

    label: str
    #: File (relative to src/) holding the emission.
    file: Path
    #: Function containing the call to delete.
    function: str
    #: Method name of the call statement to replace with ``pass``.
    call: str
    #: The DES-side value R9 must report as missing from the fast path.
    token: str


MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        label="lookup",
        file=Path("repro") / "ssd" / "fastpath.py",
        function="_replay_channel",
        call="record_busy",
        token="die",
    ),
    Mutation(
        label="serving",
        file=Path("repro") / "core" / "pipeline_fast.py",
        function="_record_stage_services",
        call="record_service",
        token="emb",
    ),
    # Timeseries drift: drop the fast path's _observe_completions call
    # (the sole feeder of the windowed serving metrics), leaving the
    # serving histograms DES-only.
    Mutation(
        label="timeseries",
        file=Path("repro") / "core" / "pipeline_sim.py",
        function="_run_fast",
        call="_observe_completions",
        token="serving.latency_ns",
    ),
    # Explain drift: drop the fast path's per-request feed to the
    # CritPathCollector, leaving the critical-path attribution stream
    # DES-only (the EXPLAIN_PARITY spec must name it).
    Mutation(
        label="explain",
        file=Path("repro") / "core" / "pipeline_sim.py",
        function="_explain_fast",
        call="record_requests",
        token="critpath.requests",
    ),
)


def _find_call_statement(tree: ast.AST, mutation: Mutation) -> Optional[ast.stmt]:
    """The statement in ``mutation.function`` carrying the target call."""
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.FunctionDef) or fn.name != mutation.function:
            continue
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == mutation.call
            ):
                return node
    return None


def mutate(src_root: Path, mutation: Mutation) -> None:
    """Replace the target profiler record with ``pass`` in place."""
    target = src_root / mutation.file
    source = target.read_text(encoding="utf-8")
    statement = _find_call_statement(ast.parse(source), mutation)
    if statement is None:
        raise SystemExit(
            f"canary: no {mutation.call}() statement in "
            f"{mutation.function}() of {target} — the mutation target "
            f"moved; update tools/lint/canary.py"
        )
    lines = source.splitlines(keepends=True)
    first = statement.lineno - 1
    last = (statement.end_lineno or statement.lineno) - 1
    indent = " " * statement.col_offset
    lines[first : last + 1] = [indent + "pass\n"]
    target.write_text("".join(lines), encoding="utf-8")


def _r9(paths: List[str]) -> List[Violation]:
    return lint_paths(paths, rules=(), project_rules=(PROJECT_RULES_BY_ID["R9"],))


def _check_mutation(src: Path, mutation: Mutation) -> int:
    with tempfile.TemporaryDirectory(prefix="rmssd-lint-canary-") as scratch:
        # The copy keeps a trailing ``src`` component so module paths
        # (anchored at the last ``src`` segment) resolve identically.
        copy = Path(scratch) / "src"
        shutil.copytree(src, copy)

        clean = _r9([str(copy)])
        if clean:
            print("canary: scratch copy is not R9-clean before mutation:")
            for violation in clean:
                print("  " + violation.render())
            return 1

        mutate(copy, mutation)
        mutated = _r9([str(copy)])
        named = [v for v in mutated if mutation.token in v.message]
        if not named:
            print(
                f"canary: deleted the {mutation.label} fast-path "
                f"{mutation.call} record but R9 reported no violation "
                f"naming '{mutation.token}' — the parity analysis has "
                f"gone blind"
            )
            for violation in mutated:
                print("  " + violation.render())
            return 1

    print(
        f"canary: R9 fired on injected {mutation.label} drift "
        f"({len(named)} violation(s) naming '{mutation.token}')"
    )
    return 0


def run(src_dir: str = "src") -> int:
    src = Path(src_dir)
    for mutation in MUTATIONS:
        if not (src / mutation.file).is_file():
            print(f"canary: {src / mutation.file} not found", file=sys.stderr)
            return 1
        status = _check_mutation(src, mutation)
        if status:
            return status
    print(
        f"canary: R9 fired on all {len(MUTATIONS)} injected drifts; "
        f"parity analysis is live"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run(*sys.argv[1:]))
