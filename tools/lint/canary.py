"""Injected-drift canary for the R9 instrumentation-parity rule.

``python -m tools.lint.canary`` proves the whole-program analysis is
actually live, not vacuously green: it copies ``src/`` to a scratch
directory, deletes exactly one fast-path profiler record (the
``record_busy`` call that closes a die's busy interval in
:func:`repro.ssd.fastpath._replay_channel`), and asserts that

* the **unmutated** copy is R9-clean (0 violations), and
* the **mutated** copy trips R9 with a violation naming the now
  DES-only ``die`` occupancy record.

If a refactor ever blinds R9 — a renamed root, a broken call-graph
edge, an over-wide provenance union — the clean/mutated runs stop
differing and this exits 1, failing ``tools/check.sh`` before the
blind spot can hide a real parity regression.
"""

from __future__ import annotations

import ast
import shutil
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from tools.lint.engine import Violation, lint_paths
from tools.lint.rules_project import PROJECT_RULES_BY_ID

#: The fast-path emission the canary deletes.
TARGET_FILE = Path("repro") / "ssd" / "fastpath.py"
TARGET_FUNCTION = "_replay_channel"
TARGET_CALL = "record_busy"
#: The DES-side value R9 must report as missing from the fast path.
EXPECTED_TOKEN = "die"


def _find_call_statement(tree: ast.AST) -> Optional[ast.stmt]:
    """The statement in ``TARGET_FUNCTION`` carrying the target call."""
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.FunctionDef) or fn.name != TARGET_FUNCTION:
            continue
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == TARGET_CALL
            ):
                return node
    return None


def mutate_fastpath(src_root: Path) -> None:
    """Replace the target profiler record with ``pass`` in place."""
    target = src_root / TARGET_FILE
    source = target.read_text(encoding="utf-8")
    statement = _find_call_statement(ast.parse(source))
    if statement is None:
        raise SystemExit(
            f"canary: no {TARGET_CALL}() statement in "
            f"{TARGET_FUNCTION}() of {target} — the mutation target "
            f"moved; update tools/lint/canary.py"
        )
    lines = source.splitlines(keepends=True)
    first = statement.lineno - 1
    last = (statement.end_lineno or statement.lineno) - 1
    indent = " " * statement.col_offset
    lines[first : last + 1] = [indent + "pass\n"]
    target.write_text("".join(lines), encoding="utf-8")


def _r9(paths: List[str]) -> List[Violation]:
    return lint_paths(paths, rules=(), project_rules=(PROJECT_RULES_BY_ID["R9"],))


def run(src_dir: str = "src") -> int:
    src = Path(src_dir)
    if not (src / TARGET_FILE).is_file():
        print(f"canary: {src / TARGET_FILE} not found", file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory(prefix="rmssd-lint-canary-") as scratch:
        # The copy keeps a trailing ``src`` component so module paths
        # (anchored at the last ``src`` segment) resolve identically.
        copy = Path(scratch) / "src"
        shutil.copytree(src, copy)

        clean = _r9([str(copy)])
        if clean:
            print("canary: scratch copy is not R9-clean before mutation:")
            for violation in clean:
                print("  " + violation.render())
            return 1

        mutate_fastpath(copy)
        mutated = _r9([str(copy)])
        named = [v for v in mutated if EXPECTED_TOKEN in v.message]
        if not named:
            print(
                f"canary: deleted the fast-path {TARGET_CALL} record "
                f"but R9 reported no violation naming "
                f"'{EXPECTED_TOKEN}' — the parity analysis has gone "
                f"blind"
            )
            for violation in mutated:
                print("  " + violation.render())
            return 1

    print(
        f"canary: R9 fired on the injected drift "
        f"({len(named)} violation(s) naming '{EXPECTED_TOKEN}'); "
        f"parity analysis is live"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run(*sys.argv[1:]))
