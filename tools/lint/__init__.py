"""AST-based domain lint pass for the RM-SSD reproduction.

Run it as ``python -m tools.lint src tests benchmarks`` (or the
installed ``rmssd-lint`` script).  Per-file rules R1–R8 live in
:mod:`tools.lint.rules`; whole-program rules R9–R12 (instrumentation
parity, inter-procedural unit flow, determinism hazards, name
registry) live in :mod:`tools.lint.rules_project` and run over the
:class:`tools.lint.project.ProjectContext` built from every file in
one pass.  The rule catalogue and the pragma syntax are documented in
``docs/correctness.md``; the pass also runs as a tier-1 pytest test
(``tests/test_lint.py``) so the tree can never drift out of
compliance.  ``--baseline`` turns the pass into a ratchet: recorded
violations are tolerated, new ones fail.
"""

from tools.lint.engine import (
    Violation,
    build_contexts,
    invalid_paths,
    iter_python_files,
    lint_contexts,
    lint_paths,
    lint_source,
    parse_context,
    parse_pragmas,
)
from tools.lint.rules import ALL_RULES, RULES_BY_ID
from tools.lint.rules_project import PROJECT_RULES, PROJECT_RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "PROJECT_RULES",
    "PROJECT_RULES_BY_ID",
    "Violation",
    "build_contexts",
    "invalid_paths",
    "iter_python_files",
    "lint_contexts",
    "lint_paths",
    "lint_source",
    "parse_context",
    "parse_pragmas",
]
