"""AST-based domain lint pass for the RM-SSD reproduction.

Run it as ``python -m tools.lint src tests benchmarks`` (or the
installed ``rmssd-lint`` script).  The rule catalogue and the pragma
syntax are documented in ``docs/correctness.md``; the pass also runs as
a tier-1 pytest test (``tests/test_lint.py``) so the tree can never
drift out of compliance.
"""

from tools.lint.engine import (
    Violation,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_pragmas,
)
from tools.lint.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_pragmas",
]
