"""Command-line front end: ``python -m tools.lint`` / ``rmssd-lint``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from tools.lint.engine import iter_python_files, lint_paths
from tools.lint.rules import ALL_RULES

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rmssd-lint",
        description=(
            "Domain-specific lint pass for the RM-SSD reproduction "
            "(unit-suffix discipline, kernel/FTL encapsulation, "
            "benchmark reporting; see docs/correctness.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
        return 0

    files = iter_python_files(args.paths)
    if not files:
        print(f"rmssd-lint: no Python files under {args.paths}", file=sys.stderr)
        return 2

    violations = lint_paths(args.paths)
    for violation in violations:
        print(violation.render())
    noun = "violation" if len(violations) == 1 else "violations"
    file_noun = "file" if len(files) == 1 else "files"
    print(
        f"rmssd-lint: checked {len(files)} {file_noun}, "
        f"{len(violations)} {noun}",
        file=sys.stderr,
    )
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
