"""Command-line front end: ``python -m tools.lint`` / ``rmssd-lint``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from tools.lint.baseline import load_baseline, partition, write_baseline
from tools.lint.engine import invalid_paths, iter_python_files, lint_paths
from tools.lint.rules import ALL_RULES
from tools.lint.rules_project import PROJECT_RULES

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rmssd-lint",
        description=(
            "Domain-specific lint pass for the RM-SSD reproduction: "
            "per-file rules (unit-suffix discipline, kernel/FTL "
            "encapsulation, benchmark reporting) plus whole-program "
            "rules (DES/fast-path instrumentation parity, unit flow, "
            "determinism hazards, name registry); see "
            "docs/correctness.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "ratchet file: violations recorded there are tolerated "
            "(reported but non-fatal); anything new still fails"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "record the current violations as the tolerated set and "
            "exit 0 (use once when adopting a new rule, then ratchet "
            "the debt down)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in list(ALL_RULES) + list(PROJECT_RULES):
            line = f"{rule.id}  {rule.title}"
            if getattr(rule, "summary", ""):
                line += f" — {rule.summary}"
            print(line)
        return 0

    bad = invalid_paths(args.paths)
    if bad:
        for raw in bad:
            print(
                f"rmssd-lint: path does not exist or is not a Python "
                f"file: {raw}",
                file=sys.stderr,
            )
        return 2

    files = iter_python_files(args.paths)
    if not files:
        print(f"rmssd-lint: no Python files under {args.paths}", file=sys.stderr)
        return 2

    violations = lint_paths(args.paths)

    if args.write_baseline:
        write_baseline(args.write_baseline, violations)
        print(
            f"rmssd-lint: wrote {len(violations)} tolerated "
            f"violation(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    tolerated_count = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as err:
            print(f"rmssd-lint: bad baseline: {err}", file=sys.stderr)
            return 2
        violations, tolerated, stale = partition(violations, baseline)
        tolerated_count = len(tolerated)
        for violation in tolerated:
            print(f"tolerated (baseline): {violation.render()}", file=sys.stderr)
        for rule, path, message in stale:
            print(
                f"rmssd-lint: stale baseline entry (fixed — re-run "
                f"--write-baseline to ratchet): {path}: {rule} {message}",
                file=sys.stderr,
            )

    for violation in violations:
        print(violation.render())
    noun = "violation" if len(violations) == 1 else "violations"
    file_noun = "file" if len(files) == 1 else "files"
    suffix = f" ({tolerated_count} tolerated)" if tolerated_count else ""
    print(
        f"rmssd-lint: checked {len(files)} {file_noun}, "
        f"{len(violations)} {noun}{suffix}",
        file=sys.stderr,
    )
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
