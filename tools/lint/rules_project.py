"""Whole-program lint rules (R9-R12) over a ProjectContext.

These rules need facts no single file contains:

* **R9  instrumentation parity** — the DES lookup path and the
  vectorized fast path must emit the same span/metric/profiler names
  (and touch the same ``IOStatistics`` counters).  The emitting sites
  live in different files (``repro/sim/resources.py`` vs
  ``repro/ssd/fastpath.py``), so only a call-graph closure over the
  whole program can see one side go quiet.
* **R10  inter-procedural unit flow** — the per-file R1 checks suffix
  discipline *within* an expression; R10 propagates units across call
  boundaries, so a function returning ``*_ns`` values cannot be bound
  to a ``*_cycles`` name in another file.
* **R11  determinism hazards** — iterating a ``set``/``frozenset`` (or
  an unsorted directory listing) has no defined order; where the loop
  body schedules events, records/exports data, or accumulates floats,
  that nondeterminism leaks into simulated results.
* **R12  instrumentation-name registry** — every name handed to a
  tracer/metrics/profiler API comes from the
  :mod:`repro.obs.names` catalogue; inline literals drift into typos
  and the parity rule cannot pin names it never sees twice.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.lint.engine import Violation
from tools.lint.project import (
    CATALOGUE_MODULE,
    DYNAMIC,
    INSTRUMENTATION_APIS,
    METRIC_RECEIVERS,
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
    _terminal_name,
)
from tools.lint.rules import _GOOD_SUFFIX_RE, _name_of, _unit_of


class ProjectRule:
    """A rule that checks the whole program, not one file."""

    id = "R?"
    title = ""
    summary = ""

    def violation(self, path: str, line: int, message: str) -> Violation:
        return Violation(rule=self.id, path=path, line=line, message=message)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# R9: instrumentation parity between execution paths
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParitySpec:
    """One pair of root sets whose instrumentation must match."""

    label: str
    des_roots: Tuple[str, ...]
    fast_roots: Tuple[str, ...]


#: The load-bearing contract of this repo: the DES lookup and its
#: vectorized replay produce byte-identical profiles and traces.
LOOKUP_PARITY = ParitySpec(
    label="lookup",
    des_roots=("_lookup_batch_des",),
    fast_roots=("_lookup_batch_fast", "_lookup_batch_fast_vcache"),
)

#: Same contract for the serving pipeline: the event-driven reference
#: and the closed-form replay (repro/core/pipeline_fast.py) must
#: record identical profiler triples under identical stage names.
SERVING_PARITY = ParitySpec(
    label="serving",
    des_roots=("_run_des",),
    fast_roots=("_run_fast",),
)

#: And for cluster serving (repro/host/cluster_serving.py): both
#: replay roots must reach the same replica-pipeline emissions and the
#: same cluster gauges/counters, so the timeseries documents the two
#: paths export stay byte-identical.
CLUSTER_PARITY = ParitySpec(
    label="cluster",
    des_roots=("_serve_des",),
    fast_roots=("_serve_fast",),
)

#: And for the critical-path attribution feed: both pipeline paths
#: must hand their per-request records to the CritPathCollector under
#: the same stream name, or the rmssd-explain/v1 documents the two
#: paths export silently diverge.  Each path has its own feed wrapper
#: (_explain_des / _explain_fast in repro/core/pipeline_sim.py) so a
#: dropped feed on one side is visible to this diff.
EXPLAIN_PARITY = ParitySpec(
    label="explain",
    des_roots=("_explain_des",),
    fast_roots=("_explain_fast",),
)

#: (group, facet) -> human description used in violation messages.
_FACET_DESC = {
    ("span", "name"): "span",
    ("metric", "name"): "metric",
    ("stats", "field"): "IOStatistics counter",
    ("slo", "name"): "SLO objective",
    ("slo", "kind"): "SLO metric",
    ("record_requests", "name"): "critical-path request stream",
}


class InstrumentationParityRule(ProjectRule):
    id = "R9"
    title = "DES/fast instrumentation parity"
    summary = (
        "spans, metrics, profiler records and IOStatistics counters "
        "reached from the DES lookup path match the fast path's"
    )

    specs: Tuple[ParitySpec, ...] = (
        LOOKUP_PARITY,
        SERVING_PARITY,
        CLUSTER_PARITY,
        EXPLAIN_PARITY,
    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        for spec in self.specs:
            yield from self._check_spec(project, spec)

    def _check_spec(
        self, project: ProjectContext, spec: ParitySpec
    ) -> Iterator[Violation]:
        des_roots = [
            fn for name in spec.des_roots for fn in project.functions_named(name)
        ]
        fast_roots = [
            fn for name in spec.fast_roots for fn in project.functions_named(name)
        ]
        if not des_roots or not fast_roots:
            # The paths under lint do not contain this contract; a
            # partial run (one subdirectory) must not fabricate
            # one-sidedness out of missing files.
            return
        des = self._collect(project, des_roots)
        fast = self._collect(project, fast_roots)
        des_desc = self._roots_desc(des_roots)
        fast_desc = self._roots_desc(fast_roots)
        for key in sorted(set(des) | set(fast)):
            des_values = des.get(key, {})
            fast_values = fast.get(key, {})
            for value in sorted(set(des_values) - set(fast_values)):
                path, line = des_values[value]
                yield self.violation(
                    path,
                    line,
                    f"{spec.label} parity: {self._describe(key)} "
                    f"'{value}' is emitted on the DES path at "
                    f"{path}:{line} but never reached from the fast-path "
                    f"roots ({fast_desc})",
                )
            for value in sorted(set(fast_values) - set(des_values)):
                path, line = fast_values[value]
                yield self.violation(
                    path,
                    line,
                    f"{spec.label} parity: {self._describe(key)} "
                    f"'{value}' is emitted on the fast path at "
                    f"{path}:{line} but never reached from the DES "
                    f"roots ({des_desc})",
                )

    @staticmethod
    def _roots_desc(roots: Sequence[FunctionInfo]) -> str:
        return ", ".join(f"{fn.path}:{fn.line}" for fn in roots)

    @staticmethod
    def _describe(key: Tuple[str, str]) -> str:
        group, facet = key
        return _FACET_DESC.get(key, f"profiler {group} {facet}")

    @staticmethod
    def _collect(
        project: ProjectContext, roots: Sequence[FunctionInfo]
    ) -> Dict[Tuple[str, str], Dict[str, Tuple[str, int]]]:
        """(group, facet) -> value -> first emitting site in a closure."""
        out: Dict[Tuple[str, str], Dict[str, Tuple[str, int]]] = {}
        for fn in project.reachable(roots):
            for emission in fn.emissions:
                if emission.value == DYNAMIC:
                    continue
                key = (emission.group, emission.facet)
                out.setdefault(key, {}).setdefault(
                    emission.value, (emission.path, emission.line)
                )
            for field_name in sorted(fn.stats_fields):
                out.setdefault(("stats", "field"), {}).setdefault(
                    field_name, (fn.path, fn.line)
                )
        return out


# ----------------------------------------------------------------------
# R10: inter-procedural unit flow
# ----------------------------------------------------------------------
class UnitFlowRule(ProjectRule):
    id = "R10"
    title = "inter-procedural unit flow"
    summary = (
        "unit suffixes survive call boundaries: a *_ns-returning "
        "function is never bound to a *_cycles name"
    )

    #: Identity-ish wrappers that preserve the unit of their argument.
    _WRAPPERS = ("float", "int", "round", "abs")
    #: Reductions whose unit is the (single) unit of their arguments.
    _SPREAD = ("max", "min", "sum")

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        consensus = self._consensus(project)
        for module in project.modules:
            yield from self._check_functions(module, consensus)
            yield from self._check_assignments(module, consensus)

    # -- unit table ----------------------------------------------------
    def _consensus(self, project: ProjectContext) -> Dict[str, str]:
        """Bare function name -> unit every definition agrees on.

        Seeded by declared suffixes (``vector_transfer_ns`` returns
        ns by name), then closed twice over return expressions so
        un-suffixed helpers that forward a suffixed callee's result
        still carry its unit.  Conflicting same-named definitions
        resolve to "unknown" rather than guessing.
        """
        units: Dict[str, Optional[str]] = {}
        for name in project.functions_by_name:
            match = _GOOD_SUFFIX_RE.search(name)
            if match:
                units[name] = match.group(1)
        for _ in range(2):
            inferred: Dict[str, Optional[str]] = dict(units)
            for name, functions in project.functions_by_name.items():
                if units.get(name):
                    continue  # a declared suffix wins over inference
                returned: Set[str] = set()
                for fn in functions:
                    unit = self._return_unit(fn.node, units)
                    if unit:
                        returned.add(unit)
                if len(returned) == 1:
                    inferred[name] = returned.pop()
                elif returned:
                    inferred[name] = None
            units = inferred
        return {name: unit for name, unit in units.items() if unit}

    def _returns(self, node: ast.AST) -> Iterator[ast.AST]:
        """Return expressions of ``node``, not entering nested defs."""
        stack = list(ast.iter_child_nodes(node))
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(current, ast.Return) and current.value is not None:
                yield current.value
            stack.extend(ast.iter_child_nodes(current))

    def _return_unit(
        self, node: ast.AST, consensus: Dict[str, Optional[str]]
    ) -> Optional[str]:
        units: Set[str] = set()
        for value in self._returns(node):
            unit = self._expr_unit(value, consensus)
            if unit:
                units.add(unit)
        return units.pop() if len(units) == 1 else None

    def _expr_unit(
        self, expr: ast.AST, consensus: Dict[str, Optional[str]]
    ) -> Optional[str]:
        unit = _unit_of(expr)
        if unit:
            return unit
        if isinstance(expr, ast.Call):
            callee = _terminal_name(expr.func)
            if callee in self._WRAPPERS and len(expr.args) == 1:
                return self._expr_unit(expr.args[0], consensus)
            if callee in self._SPREAD and expr.args:
                units = {
                    self._expr_unit(arg, consensus)
                    for arg in expr.args
                    if not isinstance(arg, ast.Starred)
                }
                units.discard(None)
                return units.pop() if len(units) == 1 else None
            if callee is not None:
                return consensus.get(callee)
            return None
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Add, ast.Sub)
        ):
            left = self._expr_unit(expr.left, consensus)
            right = self._expr_unit(expr.right, consensus)
            if left and right:
                return left if left == right else None
            return left or right
        if isinstance(expr, ast.UnaryOp):
            return self._expr_unit(expr.operand, consensus)
        if isinstance(expr, ast.IfExp):
            body = self._expr_unit(expr.body, consensus)
            orelse = self._expr_unit(expr.orelse, consensus)
            return body if body == orelse else None
        if isinstance(expr, ast.Subscript):
            return self._expr_unit(expr.value, consensus)
        return None

    # -- checks --------------------------------------------------------
    def _check_functions(
        self, module: ModuleInfo, consensus: Dict[str, str]
    ) -> Iterator[Violation]:
        for fn in module.functions:
            match = _GOOD_SUFFIX_RE.search(fn.name)
            if not match:
                continue
            declared = match.group(1)
            inferred = self._return_unit(fn.node, consensus)
            if inferred and inferred != declared:
                yield self.violation(
                    fn.path,
                    fn.line,
                    f"function '{fn.name}' is suffixed '_{declared}' but "
                    f"returns '_{inferred}' values; rename it or convert "
                    f"the result",
                )

    def _check_assignments(
        self, module: ModuleInfo, consensus: Dict[str, str]
    ) -> Iterator[Violation]:
        for node in module.ctx.index.nodes(ast.Assign, ast.AnnAssign):
            if isinstance(node, ast.Assign):
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
            else:
                target = node.target
            if node.value is None:
                continue
            target_name = _name_of(target)
            target_unit = _unit_of(target)
            if target_name is None or target_unit is None:
                continue
            value_unit = self._expr_unit(node.value, consensus)
            if value_unit and value_unit != target_unit:
                yield self.violation(
                    module.ctx.path,
                    node.lineno,
                    f"'{target_name}' (_{target_unit}) is assigned a "
                    f"'_{value_unit}' expression; convert through the "
                    f"timing model instead",
                )


# ----------------------------------------------------------------------
# R11: determinism hazards in simulated-time packages
# ----------------------------------------------------------------------
class DeterminismHazardRule(ProjectRule):
    id = "R11"
    title = "determinism hazards"
    summary = (
        "no scheduling/recording/accumulating iteration over sets or "
        "unsorted directory listings in repro.{sim,ssd,core,obs}"
    )

    SCOPE = (
        ("repro", "sim"),
        ("repro", "ssd"),
        ("repro", "core"),
        ("repro", "obs"),
    )
    _SET_CALLS = ("set", "frozenset")
    _DIR_CALLS = ("rglob", "glob", "iterdir", "listdir", "scandir")
    #: Calls whose order-sensitivity makes an unordered loop a bug:
    #: scheduling primitives, record/export sinks, and metric updates.
    _HAZARD_CALLS = frozenset(
        {
            "process",
            "schedule",
            "schedule_at",
            "timeout",
            "all_of",
            "serve",
            "acquire",
            "release",
            "succeed",
            "put",
            "append",
            "appendleft",
            "extend",
            "write",
            "add_span",
            "measure",
            "record_service",
            "record_busy",
            "record_queue_depth",
            "observe",
            "inc",
        }
    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        for module in project.modules:
            if not any(module.ctx.in_module(*parts) for parts in self.SCOPE):
                continue
            index = module.ctx.index
            for loop in index.nodes(ast.For, ast.AsyncFor):
                reason = self._unordered_reason(loop.iter, loop, module)
                if reason is None:
                    continue
                hazard = self._body_hazard(loop)
                if hazard is None:
                    continue
                yield self.violation(
                    module.ctx.path,
                    loop.lineno,
                    f"iteration over {reason} {hazard}; iterate a "
                    f"sorted() or otherwise ordered sequence",
                )
            for comp in index.nodes(
                ast.GeneratorExp, ast.ListComp, ast.SetComp
            ):
                parent = index.parent(comp)
                if not (
                    isinstance(parent, ast.Call)
                    and _terminal_name(parent.func) in ("sum", "fsum")
                ):
                    continue
                for generator in comp.generators:
                    reason = self._unordered_reason(
                        generator.iter, comp, module
                    )
                    if reason is not None:
                        yield self.violation(
                            module.ctx.path,
                            comp.lineno,
                            f"sum() over {reason}; float accumulation "
                            f"order must be deterministic",
                        )

    def _unordered_reason(
        self, iter_expr: ast.AST, site: ast.AST, module: ModuleInfo
    ) -> Optional[str]:
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            return "a set expression"
        if isinstance(iter_expr, ast.Call):
            callee = _terminal_name(iter_expr.func)
            if isinstance(iter_expr.func, ast.Name) and callee in self._SET_CALLS:
                return f"{callee}(...)"
            if callee in self._DIR_CALLS:
                return f"an unsorted {callee}() listing"
            return None
        if isinstance(iter_expr, ast.Name):
            binding = self._local_binding(iter_expr.id, site, module)
            if binding is not None and not isinstance(binding, ast.Name):
                return self._unordered_reason(binding, site, module)
        return None

    @staticmethod
    def _local_binding(
        name: str, site: ast.AST, module: ModuleInfo
    ) -> Optional[ast.AST]:
        """Sole local assignment of ``name`` in the enclosing function."""
        index = module.ctx.index
        scope = index.enclosing(site, ast.FunctionDef, ast.AsyncFunctionDef)
        if scope is None:
            return None
        bindings = [
            stmt.value
            for stmt in ast.walk(scope)
            if isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        ]
        return bindings[0] if len(bindings) == 1 else None

    def _body_hazard(self, loop: ast.AST) -> Optional[str]:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                    return "yields control to the scheduler"
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    target = _name_of(node.target) or "a value"
                    return f"accumulates into '{target}'"
                if isinstance(node, ast.Call):
                    callee = _terminal_name(node.func)
                    if callee in self._HAZARD_CALLS:
                        return f"calls {callee}()"
        return None


# ----------------------------------------------------------------------
# R12: instrumentation names come from the catalogue
# ----------------------------------------------------------------------
class NameRegistryRule(ProjectRule):
    id = "R12"
    title = "instrumentation names come from the catalogue"
    summary = (
        "tracer/metrics/profiler name literals live in "
        "repro/obs/names.py; inline strings and orphan catalogue "
        "entries are flagged"
    )

    #: Positional index of the ``name`` parameter at resource
    #: construction sites (Server(sim, name, ...); Resource(sim,
    #: capacity, name, ...)).
    _CONSTRUCTOR_NAME_POS = {"Server": 1, "Resource": 2}

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        referenced: Set[str] = set()
        for module in project.modules:
            self._note_references(module, referenced)
        for module in project.modules:
            if not module.ctx.in_module("repro"):
                continue
            if module.ctx.in_module("repro", "obs"):
                continue  # the catalogue and the APIs themselves
            yield from self._check_module(project, module)
        catalogue = project.modules_by_dotted.get(CATALOGUE_MODULE)
        if catalogue is not None:
            yield from self._orphans(catalogue, referenced)

    @staticmethod
    def _note_references(module: ModuleInfo, referenced: Set[str]) -> None:
        aliases: Set[str] = set()
        for local, (source, original) in module.import_from.items():
            if source == CATALOGUE_MODULE:
                referenced.add(original)
            if f"{source}.{original}" == CATALOGUE_MODULE:
                aliases.add(local)
        for alias, source in module.import_module.items():
            if source == CATALOGUE_MODULE:
                aliases.add(alias)
        if not aliases:
            return
        for node in module.ctx.index.nodes(ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in aliases:
                referenced.add(node.attr)

    def _check_module(
        self, project: ProjectContext, module: ModuleInfo
    ) -> Iterator[Violation]:
        for call in module.ctx.index.nodes(ast.Call):
            if not isinstance(call.func, ast.Attribute):
                callee = _terminal_name(call.func)
                name_pos = self._CONSTRUCTOR_NAME_POS.get(callee)
                if name_pos is None:
                    continue
                for facet, expr in (
                    ("name", self._call_arg(call, name_pos, "name")),
                    ("kind", self._call_arg(call, None, "kind")),
                ):
                    yield from self._check_expr(
                        project, module, call, f"{callee} {facet}", expr
                    )
                continue
            attr = call.func.attr
            spec = INSTRUMENTATION_APIS.get(attr)
            if spec is None:
                continue
            if attr in ("counter", "gauge", "histogram"):
                receiver = _terminal_name(call.func.value)
                if receiver not in METRIC_RECEIVERS:
                    continue
            name_pos, name_kw, kind_pos, kind_kw, _ = spec
            yield from self._check_expr(
                project,
                module,
                call,
                f"{attr} name",
                self._call_arg(call, name_pos, name_kw),
            )
            if kind_pos is not None:
                yield from self._check_expr(
                    project,
                    module,
                    call,
                    f"{attr} kind",
                    self._call_arg(call, kind_pos, kind_kw),
                )

    def _check_expr(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        call: ast.Call,
        what: str,
        expr: Optional[ast.AST],
    ) -> Iterator[Violation]:
        if expr is None:
            return
        kind, source, value = project.constant_origin(expr, module)
        line = getattr(expr, "lineno", call.lineno)
        if kind == "literal":
            yield self.violation(
                module.ctx.path,
                line,
                f"hardcoded {what} '{value}'; add it to "
                f"repro/obs/names.py and reference the catalogue",
            )
        elif kind == "module-const" and source != CATALOGUE_MODULE:
            yield self.violation(
                module.ctx.path,
                line,
                f"{what} constant comes from '{source}'; instrumentation "
                f"names live in repro/obs/names.py",
            )

    @staticmethod
    def _call_arg(
        call: ast.Call, position: Optional[int], keyword: Optional[str]
    ) -> Optional[ast.AST]:
        if position is not None and position < len(call.args):
            arg = call.args[position]
            return None if isinstance(arg, ast.Starred) else arg
        if keyword is not None:
            for kw in call.keywords:
                if kw.arg == keyword:
                    return kw.value
        return None

    def _orphans(
        self, catalogue: ModuleInfo, referenced: Set[str]
    ) -> Iterator[Violation]:
        for stmt in getattr(catalogue.ctx.tree, "body", ()):
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in catalogue.constants
                    and target.id not in referenced
                ):
                    yield self.violation(
                        catalogue.ctx.path,
                        stmt.lineno,
                        f"catalogue name '{target.id}' is never "
                        f"referenced; remove it or wire up the emitting "
                        f"site",
                    )


PROJECT_RULES = (
    InstrumentationParityRule(),
    UnitFlowRule(),
    DeterminismHazardRule(),
    NameRegistryRule(),
)

PROJECT_RULES_BY_ID = {rule.id: rule for rule in PROJECT_RULES}
