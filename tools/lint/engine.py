"""Core machinery of the domain lint pass: files, pragmas, violations.

The linter parses each Python file once, builds a shared
:class:`NodeIndex` (type -> nodes, parent links) that every rule walks
instead of re-traversing the AST, hands the :class:`FileContext` to the
per-file rules (:mod:`tools.lint.rules`), runs the whole-program rules
(:mod:`tools.lint.rules_project`) over the combined
:class:`tools.lint.project.ProjectContext`, and filters the resulting
violations through the allowlist pragmas:

* ``# lint: ok[R1]`` / ``# lint: ok[R1,R5]`` — suppress the listed
  rules on the statement carrying the comment (any line of a
  multi-line statement works: the pragma attaches to the smallest
  enclosing statement's full line range);
* ``# lint: ok-file[R3]`` — suppress the listed rules for the whole
  file (put it anywhere, conventionally in the module docstring area);
* ``*`` suppresses every rule (``# lint: ok[*]``).

Rules are deliberately codebase-specific — see ``docs/correctness.md``
for what each one guards and why.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

_PRAGMA_RE = re.compile(r"lint:\s*ok(?P<scope>-file)?\[(?P<rules>[^\]]*)\]")


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class NodeIndex:
    """Single-walk index over one module's AST.

    Built once per file and shared by every rule: ``nodes(T)`` returns
    all nodes of (exactly) type ``T`` in document order, ``parent``
    gives the syntactic parent, and ``enclosing`` the nearest ancestor
    of the requested types.  This is what lets a repo-wide run parse
    and traverse each file exactly once no matter how many rules look
    at it.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.tree = tree
        self.order: List[ast.AST] = []
        self._parents: Dict[ast.AST, ast.AST] = {}
        self._by_type: Dict[Type[ast.AST], List[ast.AST]] = {}
        self._position: Dict[ast.AST, int] = {}
        stack = [tree]
        while stack:
            node = stack.pop()
            self._position[node] = len(self.order)
            self.order.append(node)
            self._by_type.setdefault(type(node), []).append(node)
            for child in reversed(list(ast.iter_child_nodes(node))):
                self._parents[child] = node
                stack.append(child)

    def nodes(self, *types: Type[ast.AST]) -> List[ast.AST]:
        """All nodes of the exact given types, in document order."""
        if len(types) == 1:
            return self._by_type.get(types[0], [])
        merged: List[ast.AST] = []
        for node_type in types:
            merged.extend(self._by_type.get(node_type, []))
        merged.sort(key=self._position.__getitem__)
        return merged

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def enclosing(
        self, node: ast.AST, *types: Type[ast.AST]
    ) -> Optional[ast.AST]:
        """Nearest strict ancestor that is an instance of ``types``."""
        cursor = self._parents.get(node)
        while cursor is not None:
            if isinstance(cursor, types):
                return cursor
            cursor = self._parents.get(cursor)
        return None


@dataclass
class FileContext:
    """Everything a rule needs to know about the file being linted."""

    path: str
    tree: ast.AST
    source: str
    _index: Optional[NodeIndex] = field(default=None, repr=False)

    @property
    def index(self) -> NodeIndex:
        """Shared node index, built lazily on first rule access."""
        if self._index is None:
            self._index = NodeIndex(self.tree)
        return self._index

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()

    @property
    def basename(self) -> str:
        return Path(self.path).name

    def in_module(self, *parts: str) -> bool:
        """Whether the file lives under the given package directory,
        e.g. ``ctx.in_module("repro", "sim")``."""
        needle = "/" + "/".join(parts) + "/"
        haystack = "/" + self.posix_path
        return needle in haystack or haystack.endswith(needle.rstrip("/") + ".py")

    def is_file(self, *parts: str) -> bool:
        """Whether the file *is* the named module, e.g.
        ``ctx.is_file("repro", "ssd", "ftl.py")``."""
        return ("/" + self.posix_path).endswith("/" + "/".join(parts))


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract ``lint: ok`` pragmas from comments.

    Returns ``(line -> suppressed rules, file-wide suppressed rules)``.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if not match:
                continue
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            if match.group("scope"):
                per_file |= rules
            else:
                per_line.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenizeError:
        pass
    return per_line, per_file


def _statement_intervals(index: NodeIndex) -> List[Tuple[int, int]]:
    """Line intervals pragmas may attach to.

    Simple statements span their full ``(lineno, end_lineno)`` range, so
    a pragma on the closing line of a multi-line call suppresses the
    violation reported at the statement's first line.  Compound
    statements (``def``/``if``/``for``/...) contribute only their
    *header* lines — a pragma inside a function body must not suppress
    violations across the whole function.
    """
    intervals: List[Tuple[int, int]] = []
    for node in index.order:
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        intervals.append((start, end))
    return intervals


def expand_pragma_lines(
    per_line: Dict[int, Set[str]], index: NodeIndex
) -> Dict[int, Set[str]]:
    """Attach each line pragma to its enclosing statement's line range.

    Every line of the smallest statement interval containing the pragma
    line inherits the pragma's rule set; a pragma outside any statement
    (blank line, trailing comment) keeps only its own line.
    """
    if not per_line:
        return {}
    intervals = _statement_intervals(index)
    expanded: Dict[int, Set[str]] = {
        line: set(rules) for line, rules in per_line.items()
    }
    for line, rules in per_line.items():
        best: Optional[Tuple[int, int]] = None
        for start, end in intervals:
            if start <= line <= end:
                if best is None or (end - start) < (best[1] - best[0]):
                    best = (start, end)
        if best is not None:
            for covered in range(best[0], best[1] + 1):
                expanded.setdefault(covered, set()).update(rules)
    return expanded


@dataclass
class _PragmaMap:
    """Resolved suppression state of one file."""

    lines: Dict[int, Set[str]]
    file_rules: Set[str]

    def suppresses(self, violation: Violation) -> bool:
        if "*" in self.file_rules or violation.rule in self.file_rules:
            return True
        rules = self.lines.get(violation.line)
        return bool(rules and ("*" in rules or violation.rule in rules))


def _pragma_map(ctx: FileContext) -> _PragmaMap:
    per_line, per_file = parse_pragmas(ctx.source)
    return _PragmaMap(expand_pragma_lines(per_line, ctx.index), per_file)


def parse_context(
    source: str, path: str
) -> Tuple[Optional[FileContext], List[Violation]]:
    """Parse one file into a context, or an ``E0`` syntax violation."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return None, [
            Violation(
                rule="E0",
                path=path,
                line=err.lineno or 0,
                message=f"syntax error: {err.msg}",
            )
        ]
    return FileContext(path=path, tree=tree, source=source), []


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[object] = None,
) -> List[Violation]:
    """Lint one source string with the per-file rules."""
    from tools.lint.rules import ALL_RULES

    active = list(ALL_RULES if rules is None else rules)
    ctx, errors = parse_context(source, path)
    if ctx is None:
        return errors
    pragmas = _pragma_map(ctx)
    violations: List[Violation] = []
    for rule in active:
        for violation in rule.check(ctx):
            if not pragmas.suppresses(violation):
                violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def lint_contexts(
    contexts: Sequence[FileContext],
    rules: Sequence[object] = None,
    project_rules: Sequence[object] = None,
) -> List[Violation]:
    """Run per-file and whole-program rules over parsed contexts.

    Each file was parsed exactly once by the caller; the per-file rules
    share the context's :class:`NodeIndex` and the project rules share
    one :class:`~tools.lint.project.ProjectContext` built from the same
    trees.  Pass explicit (possibly empty) rule sequences to restrict
    the pass; ``None`` means the full default catalogue.
    """
    from tools.lint.rules import ALL_RULES
    from tools.lint.rules_project import PROJECT_RULES

    active = list(ALL_RULES if rules is None else rules)
    active_project = list(PROJECT_RULES if project_rules is None else project_rules)
    pragma_maps: Dict[str, _PragmaMap] = {}
    violations: List[Violation] = []
    for ctx in contexts:
        pragmas = _pragma_map(ctx)
        pragma_maps[ctx.path] = pragmas
        for rule in active:
            for violation in rule.check(ctx):
                if not pragmas.suppresses(violation):
                    violations.append(violation)
    if active_project:
        from tools.lint.project import ProjectContext

        project = ProjectContext(contexts)
        for rule in active_project:
            for violation in rule.check_project(project):
                pragmas = pragma_maps.get(violation.path)
                if pragmas is None or not pragmas.suppresses(violation):
                    violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.append(path)
    return out


def invalid_paths(paths: Iterable[str]) -> List[str]:
    """Path arguments :func:`iter_python_files` would silently drop.

    A nonexistent path or an existing non-``.py`` file contributes no
    files; the CLI reports these instead of pretending they were
    checked.
    """
    bad: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            continue
        if not path.is_file() or path.suffix != ".py":
            bad.append(raw)
    return bad


def build_contexts(
    paths: Iterable[str],
) -> Tuple[List[FileContext], List[Violation]]:
    """Parse every Python file under ``paths`` exactly once."""
    contexts: List[FileContext] = []
    errors: List[Violation] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        ctx, file_errors = parse_context(source, str(path))
        if ctx is not None:
            contexts.append(ctx)
        errors.extend(file_errors)
    return contexts, errors


def lint_paths(
    paths: Iterable[str],
    rules: Sequence[object] = None,
    project_rules: Sequence[object] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths`` (per-file + whole-program)."""
    contexts, errors = build_contexts(paths)
    violations = errors + lint_contexts(
        contexts, rules=rules, project_rules=project_rules
    )
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))
