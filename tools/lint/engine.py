"""Core machinery of the domain lint pass: files, pragmas, violations.

The linter parses each Python file once, hands the AST to every rule
(:mod:`tools.lint.rules`), and filters the resulting violations through
the allowlist pragmas:

* ``# lint: ok[R1]`` / ``# lint: ok[R1,R5]`` — suppress the listed
  rules on the line carrying the comment (attach it to the line the
  violation is reported on);
* ``# lint: ok-file[R3]`` — suppress the listed rules for the whole
  file (put it anywhere, conventionally in the module docstring area);
* ``*`` suppresses every rule (``# lint: ok[*]``).

Rules are deliberately codebase-specific — see ``docs/correctness.md``
for what each one guards and why.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

_PRAGMA_RE = re.compile(r"lint:\s*ok(?P<scope>-file)?\[(?P<rules>[^\]]*)\]")


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs to know about the file being linted."""

    path: str
    tree: ast.AST
    source: str

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()

    @property
    def basename(self) -> str:
        return Path(self.path).name

    def in_module(self, *parts: str) -> bool:
        """Whether the file lives under the given package directory,
        e.g. ``ctx.in_module("repro", "sim")``."""
        needle = "/" + "/".join(parts) + "/"
        haystack = "/" + self.posix_path
        return needle in haystack or haystack.endswith(needle.rstrip("/") + ".py")

    def is_file(self, *parts: str) -> bool:
        """Whether the file *is* the named module, e.g.
        ``ctx.is_file("repro", "ssd", "ftl.py")``."""
        return ("/" + self.posix_path).endswith("/" + "/".join(parts))


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract ``lint: ok`` pragmas from comments.

    Returns ``(line -> suppressed rules, file-wide suppressed rules)``.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if not match:
                continue
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            if match.group("scope"):
                per_file |= rules
            else:
                per_line.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenizeError:
        pass
    return per_line, per_file


def _suppressed(
    violation: Violation,
    node_lines: Dict[int, Set[str]],
    file_rules: Set[str],
) -> bool:
    if "*" in file_rules or violation.rule in file_rules:
        return True
    for line, rules in node_lines.items():
        if line == violation.line and ("*" in rules or violation.rule in rules):
            return True
    return False


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[object] = None,
) -> List[Violation]:
    """Lint one source string; returns surviving violations."""
    from tools.lint.rules import ALL_RULES

    active = list(ALL_RULES if rules is None else rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Violation(
                rule="E0",
                path=path,
                line=err.lineno or 0,
                message=f"syntax error: {err.msg}",
            )
        ]
    ctx = FileContext(path=path, tree=tree, source=source)
    per_line, per_file = parse_pragmas(source)
    violations: List[Violation] = []
    for rule in active:
        for violation in rule.check(ctx):
            if not _suppressed(violation, per_line, per_file):
                violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.append(path)
    return out


def lint_paths(paths: Iterable[str]) -> List[Violation]:
    """Lint every Python file under ``paths``."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, path=str(path)))
    return violations
