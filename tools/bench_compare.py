"""Benchmark-regression gate over the committed ``BENCH_*.json`` files.

The repo's benchmark trajectory (``BENCH_fastpath.json``,
``BENCH_sweep.json``, ``BENCH_vcache.json``, ``BENCH_autoscale.json``,
``BENCH_attribution.json``)
is part of its claims — the lookup fast path is ~16x, the serving
sweep replay ~13x, the vector cache turns flat 878 QPS into thousands
at high locality, the autoscaler rides out a flash crowd the fixed
fleet cannot, the p99 tail's blame shifts from service to queueing as
a flash crowd saturates the fleet.  A
PR can silently regress those numbers while every functional test still
passes.  This tool makes the numbers enforceable:

* **diff mode** — ``--baseline OLD --fresh NEW`` compares a fresh
  benchmark run against a committed baseline with *per-metric*
  tolerances (below), exiting nonzero on any regression.
* **self-check mode** — ``--self-check FILE...`` validates each file's
  *internal* invariants (the fast path really was bitwise-equal, the
  cached QPS really beats stock, hit ratios fall as locality fades)
  without needing a second run.

Tolerances (documented here, asserted in ``tests/test_bench_compare``):

======================  =============================================
metric                  rule
======================  =============================================
fastpath: model,        exact — the benchmark's configuration and its
samples, vectors_read,  simulated outcome are deterministic; any drift
simulated_ns,           is a real behavior change, not noise
min_speedup
fastpath:               must be ``true`` (the equivalence contract)
bitwise_equal
fastpath: speedup       wall-clock, machine-dependent: gated only by
                        the payload's own ``min_speedup`` floor
fastpath: *_wall_s      ignored (raw wall-clock)
sweep: model, queries,  exact (benchmark configuration)
fractions,
sweep_points, repeats,
min_speedup, max_wall_s
sweep: bitwise_equal    must be ``true`` (the equivalence contract)
sweep: speedup          gated by the payload's own ``min_speedup``
sweep: *_wall_s         ignored (raw wall-clock)
vcache: ks, policy,     exact (benchmark configuration)
capacity_rule,
rows_per_table
vcache: qps.*           higher-is-better, 2% relative tolerance
vcache: hit_ratios.*    higher-is-better, 0.01 absolute tolerance
autoscale: config keys, exact — the flash-crowd trace is seeded and
fixed, autoscaled       both fleets are simulated, so every outcome
                        (p99, scaling-event counts) is deterministic
autoscale:              must be ``true`` (cluster DES and fast replay
bitwise_equal           export byte-identical timeseries documents)
attribution: config     exact — the flash-crowd trace is seeded and
keys, p99_ms,           the fleet simulated, so every per-load blame
queue_share_p99,        share is deterministic; any drift is a real
service_share_p99       behavior change, not noise
attribution:            must be ``true`` (DES and fast replay export
bitwise_equal           byte-identical rmssd-explain/v1 documents)
any: wall_s             when the payload commits a ``max_wall_s``
                        budget, its ``wall_s`` must stay within it
any: missing key        regression (a metric disappeared)
======================  =============================================

When a diff fails and both payloads embed their ``rmssd-explain/v1``
document (the attribution benchmark does), the gate also prints the
cross-run regression explainer's per-quantile attribution lines
(:mod:`repro.obs.explain`) — *which stage, which replica* moved the
tail — so the failure arrives with its diagnosis attached.

Usage::

    python -m tools.bench_compare --baseline BENCH_vcache.json \
        --fresh /tmp/BENCH_vcache.json
    python -m tools.bench_compare --self-check BENCH_*.json
"""

from __future__ import annotations

# Not a benchmark despite the bench_ prefix: a CLI gate whose pass/fail
# lines go straight to the terminal/CI log.
# lint: ok-file[R6]

import argparse
import json
import sys
from typing import List

#: Relative tolerance for throughput metrics (QPS): simulated numbers
#: are deterministic today, but the tolerance leaves headroom for
#: intentional timing-model refinements below the "claim changed" bar.
QPS_REL_TOLERANCE = 0.02

#: Absolute tolerance for hit ratios (probabilities in [0, 1]).
HIT_RATIO_ABS_TOLERANCE = 0.01

#: Self-check: cached QPS may not trail stock by more than this factor
#: (the cache must never make the device slower than cache-free).
CACHE_MIN_VS_STOCK = 0.98

#: Self-check: stock RM-SSD has no cache, so its QPS must be flat
#: across locality K within this relative band.
STOCK_FLATNESS_REL = 0.05


class Regression(Exception):
    """A metric regressed (or a baseline violates its own invariants)."""


def _load(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise Regression(f"{path}: expected a JSON object")
    return payload


def detect_kind(payload: dict) -> str:
    """Which benchmark a payload came from, by its signature keys."""
    # autoscale before sweep/fastpath: it carries bitwise_equal too.
    if "autoscaled" in payload and "bitwise_equal" in payload:
        return "autoscale"
    # sweep before fastpath: both carry speedup + bitwise_equal.
    if "sweep_points" in payload and "bitwise_equal" in payload:
        return "sweep"
    if "speedup" in payload and "bitwise_equal" in payload:
        return "fastpath"
    if "queue_share_p99" in payload:
        return "attribution"
    if "hit_ratios" in payload and "qps" in payload:
        return "vcache"
    raise Regression(
        "unrecognized benchmark payload (keys: "
        + ", ".join(sorted(payload)) + ")"
    )


def _require(payload: dict, key: str, label: str):
    if key not in payload:
        raise Regression(f"{label}: metric {key!r} is missing")
    return payload[key]


def _check_exact(baseline: dict, fresh: dict, key: str, failures: List[str]) -> None:
    base = _require(baseline, key, "baseline")
    new = _require(fresh, key, "fresh")
    if new != base:
        failures.append(f"{key}: expected {base!r} exactly, got {new!r}")


def compare_fastpath(baseline: dict, fresh: dict) -> List[str]:
    failures: List[str] = []
    for key in ("model", "samples", "vectors_read", "simulated_ns", "min_speedup"):
        _check_exact(baseline, fresh, key, failures)
    if not _require(fresh, "bitwise_equal", "fresh"):
        failures.append("bitwise_equal: fast path diverged from the DES")
    floor = _require(fresh, "min_speedup", "fresh")
    speedup = _require(fresh, "speedup", "fresh")
    if speedup < floor:
        failures.append(
            f"speedup: {speedup:.2f}x fell below the {floor:.1f}x floor "
            f"(baseline was {baseline.get('speedup', float('nan')):.2f}x)"
        )
    return failures


def _check_wall_budget(payload: dict, failures: List[str]) -> None:
    """Enforce a payload's committed wall-clock budget, if it has one."""
    if "max_wall_s" not in payload:
        return
    budget = payload["max_wall_s"]
    wall = _require(payload, "wall_s", "payload")
    if wall > budget:
        failures.append(
            f"wall_s: {wall:.1f}s blew the committed {budget:.1f}s budget"
        )


def compare_sweep(baseline: dict, fresh: dict) -> List[str]:
    failures: List[str] = []
    for key in (
        "model", "queries", "fractions", "sweep_points", "repeats",
        "min_speedup", "max_wall_s",
    ):
        _check_exact(baseline, fresh, key, failures)
    if not _require(fresh, "bitwise_equal", "fresh"):
        failures.append("bitwise_equal: fast replay diverged from the DES")
    floor = _require(fresh, "min_speedup", "fresh")
    speedup = _require(fresh, "speedup", "fresh")
    if speedup < floor:
        failures.append(
            f"speedup: {speedup:.2f}x fell below the {floor:.1f}x floor "
            f"(baseline was {baseline.get('speedup', float('nan')):.2f}x)"
        )
    _check_wall_budget(fresh, failures)
    return failures


def compare_vcache(baseline: dict, fresh: dict) -> List[str]:
    failures: List[str] = []
    for key in ("ks", "policy", "capacity_rule", "rows_per_table"):
        _check_exact(baseline, fresh, key, failures)
    base_qps = _require(baseline, "qps", "baseline")
    new_qps = _require(fresh, "qps", "fresh")
    for series, base_values in sorted(base_qps.items()):
        if series not in new_qps:
            failures.append(f"qps.{series}: series is missing")
            continue
        new_values = new_qps[series]
        if len(new_values) != len(base_values):
            failures.append(
                f"qps.{series}: {len(new_values)} points vs "
                f"{len(base_values)} in the baseline"
            )
            continue
        for index, (base, new) in enumerate(zip(base_values, new_values)):
            if new < base * (1.0 - QPS_REL_TOLERANCE):
                failures.append(
                    f"qps.{series}[{index}]: {new:.1f} < "
                    f"{base:.1f} - {QPS_REL_TOLERANCE:.0%}"
                )
    base_ratios = _require(baseline, "hit_ratios", "baseline")
    new_ratios = _require(fresh, "hit_ratios", "fresh")
    for series, base_values in sorted(base_ratios.items()):
        if series not in new_ratios:
            failures.append(f"hit_ratios.{series}: series is missing")
            continue
        new_values = new_ratios[series]
        if len(new_values) != len(base_values):
            failures.append(
                f"hit_ratios.{series}: {len(new_values)} points vs "
                f"{len(base_values)} in the baseline"
            )
            continue
        for index, (base, new) in enumerate(zip(base_values, new_values)):
            if new < base - HIT_RATIO_ABS_TOLERANCE:
                failures.append(
                    f"hit_ratios.{series}[{index}]: {new:.4f} < "
                    f"{base:.4f} - {HIT_RATIO_ABS_TOLERANCE}"
                )
    return failures


#: Autoscale benchmark configuration keys, compared exactly.
_AUTOSCALE_CONFIG_KEYS = (
    "model", "arrivals", "queries", "balancer", "sla_ms", "quantile",
    "alert_threshold_ms", "window_ms", "burst_factor",
    "initial_replicas", "max_replicas", "scale_up_step",
)


def compare_autoscale(baseline: dict, fresh: dict) -> List[str]:
    failures: List[str] = []
    for key in _AUTOSCALE_CONFIG_KEYS:
        _check_exact(baseline, fresh, key, failures)
    # The trace and both fleets are seeded and simulated: every
    # outcome (p99, scaling-event counts) is deterministic, so any
    # drift is a behavior change, not noise.
    for key in ("fixed", "autoscaled"):
        _check_exact(baseline, fresh, key, failures)
    if not _require(fresh, "bitwise_equal", "fresh"):
        failures.append(
            "bitwise_equal: cluster fast replay diverged from the DES"
        )
    return failures


#: Attribution benchmark configuration keys, compared exactly.
_ATTRIBUTION_CONFIG_KEYS = (
    "model", "arrivals", "replicas", "balancer", "burst_factor",
    "quantile", "loads", "queries",
)

#: Tail-blame shares must agree bit-for-bit across runs: the trace is
#: seeded and the fleet simulated, so the shares are deterministic.
_ATTRIBUTION_OUTCOME_KEYS = ("p99_ms", "queue_share_p99", "service_share_p99")


def compare_attribution(baseline: dict, fresh: dict) -> List[str]:
    failures: List[str] = []
    for key in _ATTRIBUTION_CONFIG_KEYS + _ATTRIBUTION_OUTCOME_KEYS:
        _check_exact(baseline, fresh, key, failures)
    if not _require(fresh, "bitwise_equal", "fresh"):
        failures.append(
            "bitwise_equal: fast replay's explain document diverged "
            "from the DES"
        )
    return failures


def compare(baseline: dict, fresh: dict, kind: str = None) -> List[str]:
    """All regressions of ``fresh`` against ``baseline`` (empty = pass)."""
    if kind is None:
        kind = detect_kind(baseline)
        fresh_kind = detect_kind(fresh)
        if fresh_kind != kind:
            return [f"payload kinds differ: baseline {kind}, fresh {fresh_kind}"]
    if kind == "fastpath":
        return compare_fastpath(baseline, fresh)
    if kind == "sweep":
        return compare_sweep(baseline, fresh)
    if kind == "vcache":
        return compare_vcache(baseline, fresh)
    if kind == "autoscale":
        return compare_autoscale(baseline, fresh)
    if kind == "attribution":
        return compare_attribution(baseline, fresh)
    raise Regression(f"unknown benchmark kind {kind!r}")


def self_check_fastpath(payload: dict) -> List[str]:
    failures: List[str] = []
    if not _require(payload, "bitwise_equal", "payload"):
        failures.append("bitwise_equal: fast path diverged from the DES")
    speedup = _require(payload, "speedup", "payload")
    floor = _require(payload, "min_speedup", "payload")
    if speedup < floor:
        failures.append(f"speedup {speedup:.2f}x below the {floor:.1f}x floor")
    if _require(payload, "vectors_read", "payload") <= 0:
        failures.append("vectors_read: benchmark read no vectors")
    if _require(payload, "simulated_ns", "payload") <= 0:
        failures.append("simulated_ns: no simulated time elapsed")
    return failures


def self_check_sweep(payload: dict) -> List[str]:
    failures: List[str] = []
    if not _require(payload, "bitwise_equal", "payload"):
        failures.append("bitwise_equal: fast replay diverged from the DES")
    speedup = _require(payload, "speedup", "payload")
    floor = _require(payload, "min_speedup", "payload")
    if speedup < floor:
        failures.append(f"speedup {speedup:.2f}x below the {floor:.1f}x floor")
    fractions = _require(payload, "fractions", "payload")
    if _require(payload, "sweep_points", "payload") != len(fractions):
        failures.append("sweep_points: does not match the fractions list")
    if _require(payload, "queries", "payload") <= 0:
        failures.append("queries: benchmark served no queries")
    _check_wall_budget(payload, failures)
    return failures


def self_check_vcache(payload: dict) -> List[str]:
    failures: List[str] = []
    ks = _require(payload, "ks", "payload")
    qps = _require(payload, "qps", "payload")
    ratios = _require(payload, "hit_ratios", "payload")
    for model, values in sorted(ratios.items()):
        if len(values) != len(ks):
            failures.append(f"hit_ratios.{model}: expected {len(ks)} points")
            continue
        # Larger K = colder trace = the hit ratio must not rise.
        for index in range(1, len(values)):
            if values[index] > values[index - 1] + HIT_RATIO_ABS_TOLERANCE:
                failures.append(
                    f"hit_ratios.{model}: rises at K={ks[index]} "
                    f"({values[index - 1]:.4f} -> {values[index]:.4f})"
                )
    for series, values in sorted(qps.items()):
        if len(values) != len(ks):
            failures.append(f"qps.{series}: expected {len(ks)} points")
    for model in sorted(ratios):
        stock = qps.get(f"{model}/RM-SSD")
        cached = qps.get(f"{model}/RM-SSD+cache")
        if not stock or not cached:
            failures.append(f"qps: missing RM-SSD series for {model}")
            continue
        # Stock has no cache: flat across locality.
        low, high = min(stock), max(stock)
        if high > low * (1.0 + STOCK_FLATNESS_REL):
            failures.append(
                f"qps.{model}/RM-SSD: not flat across K ({low:.1f}..{high:.1f})"
            )
        for index, (base, with_cache) in enumerate(zip(stock, cached)):
            if with_cache < base * CACHE_MIN_VS_STOCK:
                failures.append(
                    f"qps.{model}/RM-SSD+cache[{index}]: {with_cache:.1f} "
                    f"slower than stock {base:.1f}"
                )
        # Hotter traces (smaller K) must not serve fewer QPS.
        if cached != sorted(cached, reverse=True):
            failures.append(
                f"qps.{model}/RM-SSD+cache: not monotone non-increasing in K"
            )
    return failures


def self_check_autoscale(payload: dict) -> List[str]:
    failures: List[str] = []
    if not _require(payload, "bitwise_equal", "payload"):
        failures.append(
            "bitwise_equal: cluster fast replay diverged from the DES"
        )
    sla = _require(payload, "sla_ms", "payload")
    if _require(payload, "alert_threshold_ms", "payload") > sla:
        failures.append("alert_threshold_ms: alerting looser than the SLA")
    if _require(payload, "queries", "payload") <= 0:
        failures.append("queries: benchmark served no queries")
    fixed = _require(payload, "fixed", "payload")
    auto = _require(payload, "autoscaled", "payload")
    # The claim: the burst breaks the fixed fleet, the controller
    # rides it out.
    if _require(fixed, "meets_sla", "payload.fixed"):
        failures.append("fixed.meets_sla: the baseline no longer violates")
    if _require(fixed, "p99_ms", "payload.fixed") <= sla:
        failures.append("fixed.p99_ms: within the SLA it must violate")
    if not _require(auto, "meets_sla", "payload.autoscaled"):
        failures.append("autoscaled.meets_sla: the controller lost the SLA")
    if _require(auto, "p99_ms", "payload.autoscaled") > sla:
        failures.append("autoscaled.p99_ms: exceeds the SLA")
    if auto["p99_ms"] >= fixed["p99_ms"]:
        failures.append("autoscaled.p99_ms: no better than the fixed fleet")
    if _require(auto, "scale_ups", "payload.autoscaled") < 1:
        failures.append("autoscaled.scale_ups: the burst forced no scale-out")
    if _require(auto, "scale_downs", "payload.autoscaled") < 1:
        failures.append("autoscaled.scale_downs: the fleet never drained")
    return failures


#: Self-check: a load point's queue + service blame shares partition
#: the tail's latency, so they must sum to 1 within float noise.
SHARE_SUM_ABS_TOLERANCE = 1e-6


def self_check_attribution(payload: dict) -> List[str]:
    failures: List[str] = []
    if not _require(payload, "bitwise_equal", "payload"):
        failures.append(
            "bitwise_equal: fast replay's explain document diverged "
            "from the DES"
        )
    loads = _require(payload, "loads", "payload")
    if list(loads) != sorted(loads) or len(set(loads)) != len(loads):
        failures.append("loads: not strictly increasing")
    for key in ("queries", "p99_ms") + _ATTRIBUTION_OUTCOME_KEYS[1:]:
        values = _require(payload, key, "payload")
        if len(values) != len(loads):
            failures.append(f"{key}: expected {len(loads)} points")
    queue = payload.get("queue_share_p99", ())
    service = payload.get("service_share_p99", ())
    for index, (q_share, s_share) in enumerate(zip(queue, service)):
        if not (0.0 <= q_share <= 1.0 and 0.0 <= s_share <= 1.0):
            failures.append(
                f"shares[{index}]: outside [0, 1] "
                f"(queue {q_share:.4f}, service {s_share:.4f})"
            )
        elif abs(q_share + s_share - 1.0) > SHARE_SUM_ABS_TOLERANCE:
            failures.append(
                f"shares[{index}]: queue {q_share:.4f} + service "
                f"{s_share:.4f} does not partition the tail's latency"
            )
    # The claim: as the flash crowd saturates the fleet, the p99
    # tail's blame shifts from service time to queueing.
    if len(queue) >= 2 and queue[-1] <= queue[0]:
        failures.append(
            f"queue_share_p99: blame never shifted to queueing "
            f"({queue[0]:.4f} -> {queue[-1]:.4f})"
        )
    explain = _require(payload, "explain", "payload")
    if explain.get("schema") != "rmssd-explain/v1":
        failures.append(
            "explain: embedded document is not rmssd-explain/v1 "
            f"(schema {explain.get('schema')!r})"
        )
    return failures


def self_check(payload: dict, kind: str = None) -> List[str]:
    """Internal-invariant violations of one payload (empty = pass)."""
    if kind is None:
        kind = detect_kind(payload)
    if kind == "fastpath":
        return self_check_fastpath(payload)
    if kind == "sweep":
        return self_check_sweep(payload)
    if kind == "vcache":
        return self_check_vcache(payload)
    if kind == "autoscale":
        return self_check_autoscale(payload)
    if kind == "attribution":
        return self_check_attribution(payload)
    raise Regression(f"unknown benchmark kind {kind!r}")


def _explain_diagnostic(baseline: dict, fresh: dict) -> List[str]:
    """Regression-explainer lines for payloads embedding explain docs.

    Best-effort: returns ``[]`` when either payload lacks an embedded
    ``rmssd-explain/v1`` document or the ``repro`` package is not
    importable (the gate degrades to a plain diff, never crashes).
    """
    if "explain" not in baseline or "explain" not in fresh:
        return []
    try:
        from repro.obs.explain import explain_failure
    except ImportError:
        return []
    return explain_failure(baseline, fresh)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="diff benchmark JSON against committed baselines",
    )
    parser.add_argument("--baseline", help="committed BENCH_*.json")
    parser.add_argument("--fresh", help="freshly generated BENCH_*.json")
    parser.add_argument("--kind",
                        choices=("fastpath", "sweep", "vcache", "autoscale",
                                 "attribution"),
                        default=None,
                        help="payload kind (default: auto-detect)")
    parser.add_argument("--self-check", nargs="+", metavar="FILE",
                        help="validate files' internal invariants instead "
                             "of diffing two runs")
    args = parser.parse_args(argv)

    try:
        if args.self_check:
            if args.baseline or args.fresh:
                parser.error("--self-check excludes --baseline/--fresh")
            status = 0
            for path in args.self_check:
                failures = self_check(_load(path), args.kind)
                if failures:
                    status = 1
                    print(f"FAIL {path}")
                    for failure in failures:
                        print(f"  {failure}")
                else:
                    print(f"ok   {path}")
            return status
        if not args.baseline or not args.fresh:
            parser.error("need --baseline and --fresh (or --self-check)")
        baseline = _load(args.baseline)
        fresh = _load(args.fresh)
        failures = compare(baseline, fresh, args.kind)
    except Regression as error:
        print(f"FAIL {error}")
        return 1
    if failures:
        print(f"FAIL {args.fresh} regressed against {args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        for line in _explain_diagnostic(baseline, fresh):
            print(f"  explain: {line}")
        return 1
    print(f"ok   {args.fresh} vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
