"""Developer tooling for the RM-SSD reproduction (not shipped at runtime)."""
