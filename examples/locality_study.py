#!/usr/bin/env python
"""Locality study: why a host-side embedding cache is fragile.

Reproduces the Fig. 14 experiment interactively: sweeps the trace
locality parameter K (hit ratios 80% -> 30%), measures what an
LRU cache actually achieves on each trace, and compares RecSSD (whose
critical path includes that cache) against RM-SSD (whose does not).
Also prints the Fig. 4-style trace statistics at each K.

Run:  python examples/locality_study.py
"""

from repro.analysis.report import Table
from repro.baselines import RMSSDBackend, RecSSDBackend
from repro.models import build_model, get_config
from repro.workloads import (
    TraceStatistics,
    hit_ratio_for_k,
    measured_cache_hit_ratio,
)
from repro.workloads.inputs import RequestGenerator

ROWS_PER_TABLE = 8192
KS = (0.0, 0.3, 1.0, 2.0)


def main() -> None:
    config = get_config("rmc1")
    model = build_model(config, rows_per_table=ROWS_PER_TABLE, seed=0)

    table = Table(
        "Fig. 14 study (RMC1): locality vs throughput",
        ["K", "target hit", "LRU hit", "unique-once", "RecSSD QPS",
         "RM-SSD QPS", "RM-SSD adv."],
    )
    for k in KS:
        hit = hit_ratio_for_k(k)
        generator = RequestGenerator(
            config, ROWS_PER_TABLE, hot_access_fraction=hit, seed=3
        )
        requests = generator.requests(5, batch_size=4)

        # Trace characterization (Fig. 4 statistics).
        flat = generator.trace.flat_indices([r.sparse[0] for r in requests])
        stats = TraceStatistics.from_indices(flat)
        measured = measured_cache_hit_ratio(
            flat, capacity_entries=8 * generator.trace.hot_set_size
        )

        recssd = RecSSDBackend(model).run(requests, compute=False)
        rmssd = RMSSDBackend(
            model, config.lookups_per_table, use_des=False
        ).run(requests, compute=False)
        table.add_row(
            k,
            f"{hit:.0%}",
            f"{measured:.0%}",
            f"{stats.unique_access_fraction():.0%}",
            f"{recssd.qps:.0f}",
            f"{rmssd.qps:.0f}",
            f"{rmssd.qps / recssd.qps:.2f}x",
        )
    table.print()
    print(
        "RecSSD's throughput tracks the cache hit ratio; RM-SSD's data\n"
        "path has no cache to miss, so its throughput is flat — and its\n"
        "advantage widens exactly when caching stops helping."
    )


if __name__ == "__main__":
    main()
