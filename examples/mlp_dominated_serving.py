#!/usr/bin/env python
"""Serving MLP-dominated models: batching and the Fig. 12c crossover.

RMC3 (and NCF/WnD) spend most of their time in the MLP, not the
embedding lookups.  This example shows how RM-SSD's Rule Three turns
batching into throughput — the pipeline is MLP-bound at batch 1 and
converts to embedding-bound at the crossover batch — and compares the
optimized engine against the naive shared-GEMM design.

Run:  python examples/mlp_dominated_serving.py
"""

from repro.analysis.report import Table
from repro.baselines import RMSSDBackend
from repro.models import build_model, get_config
from repro.workloads.inputs import RequestGenerator

ROWS_PER_TABLE = 4096
BATCHES = (1, 2, 4, 8, 16, 32)


def sweep(key: str) -> None:
    config = get_config(key)
    model = build_model(config, rows_per_table=ROWS_PER_TABLE, seed=0)
    generator = RequestGenerator(config, ROWS_PER_TABLE, seed=1)

    optimized = RMSSDBackend(model, config.lookups_per_table, use_des=False)
    naive = RMSSDBackend(
        model, config.lookups_per_table, mlp_design="naive", use_des=False
    )
    print(f"\n=== {config.name} ===")
    print(f"kernel search: {optimized.device.search.summary()}")

    table = Table(
        f"{config.name}: QPS vs batch size",
        ["batch", "RM-SSD", "RM-SSD-Naive", "bound by"],
    )
    for batch in BATCHES:
        requests = generator.requests(3, batch_size=batch)
        result = optimized.run(requests, compute=False)
        result_naive = naive.run(requests, compute=False)
        # What bounds the optimized pipeline at this batch?
        stages = optimized.device.mlp_engine.stage_times_for(
            min(batch, optimized.device.supported_nbatch)
        )
        if stages.interval == stages.temb:
            bound = "embedding"
        elif stages.interval == stages.tbot:
            bound = "bottom MLP"
        else:
            bound = "top MLP"
        table.add_row(
            batch, f"{result.qps:.0f}", f"{result_naive.qps:.0f}", bound
        )
    table.print()


def main() -> None:
    for key in ("rmc3", "ncf", "wnd"):
        sweep(key)
    print(
        "Note how RMC3 grows linearly until the embedding stage takes over\n"
        "(the paper's batch-4 crossover), while the naive design stays\n"
        "MLP-bound and caps early."
    )


if __name__ == "__main__":
    main()
