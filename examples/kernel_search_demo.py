#!/usr/bin/env python
"""Kernel search walkthrough: from model topology to FPGA kernels.

Shows every step of Section IV-C for each evaluated model: the
intra-layer decomposition (Fig. 8), the Rule One BRAM placement, the
Rule Three batch escalation, the final per-layer kernels (Table V),
the Eq. 1 stage times, and the analytic resource bill (Table VI) under
two deployment targets (the XCVU9P emulation card and the low-end
XC7A200T an enterprise SSD would embed).

Run:  python examples/kernel_search_demo.py
"""

from repro.analysis.report import Table
from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.fpga.specs import XC7A200T, XCVU9P
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def demo(key: str) -> None:
    config = get_config(key)
    model = build_model(config, rows_per_table=64, seed=0)
    decomposed = decompose_model(model, config.lookups_per_table)

    print(f"\n=== {config.name} ===")
    print("decomposed topology (Fig. 8):")
    chain = " -> ".join(f"{l.name}({l.rows}x{l.cols})" for l in decomposed.bottom)
    print(f"  bottom: {chain or '(none)'}")
    if decomposed.emb is not None:
        print(f"  emb:    Le({decomposed.emb.rows}x{decomposed.emb.cols})")
    chain = " -> ".join(f"{l.name}({l.rows}x{l.cols})" for l in decomposed.top)
    print(f"  top:    {chain}")

    flash = flash_read_cycles(
        decomposed.vectors_per_inference,
        SSDGeometry(),
        SSDTimingModel(),
        config.ev_size,
    )
    print(f"embedding flash time (batch 1): {flash} cycles "
          f"({flash * 5 / 1000:.1f} us) for "
          f"{decomposed.vectors_per_inference} vectors")

    result = kernel_search(decomposed, flash)
    table = Table(
        f"{config.name}: kernel assignment (Table V)",
        ["layer", "shape", "placement", "kernel", "cycles/batch"],
    )
    from repro.fpga.kernel import batch_cycles

    for layer in result.model.all_layers():
        table.add_row(
            layer.name,
            f"{layer.rows}x{layer.cols}",
            layer.placement,
            str(layer.kernel),
            batch_cycles(layer.rows, layer.cols, layer.kernel, result.nbatch),
        )
    table.print()

    times = result.times
    print(f"Rule Three batch: {result.nbatch}")
    print(f"stage times (Eq. 1): Temb'={times.temb}  Tbot'={times.tbot}  "
          f"Ttop'={times.ttop} cycles")
    print(f"pipeline interval: {times.interval} cycles "
          f"-> {times.throughput_qps(200e6):.0f} QPS")
    usage = result.resources
    print(f"resources: {usage.lut} LUT, {usage.ff} FF, "
          f"{usage.bram:.0f} BRAM, {usage.dsp} DSP")
    for part in (XCVU9P, XC7A200T):
        verdict = "fits" if part.fits(usage) else "DOES NOT FIT"
        print(f"  {part.name}: {verdict}")


def main() -> None:
    for key in ("rmc1", "rmc2", "rmc3", "ncf", "wnd"):
        demo(key)


if __name__ == "__main__":
    main()
