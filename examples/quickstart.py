#!/usr/bin/env python
"""Quickstart: serve DLRM inference from a simulated RM-SSD.

Builds Facebook's DLRM-RMC1 configuration at a scaled-down embedding
capacity, lays the tables out on the simulated flash array, runs
batched inference through the in-storage pipeline, and checks the
outputs bit-for-bit against the host reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import DRAMBackend
from repro.core import RMRuntime, RMSSD
from repro.models import build_model, get_config
from repro.workloads.inputs import RequestGenerator

ROWS_PER_TABLE = 4096  # scaled from the paper's 30 GB; see DESIGN.md


def main() -> None:
    # 1. Build the model (Table III's RMC1: 8 tables, dim 32, 80
    #    lookups per table, small bottom/top MLPs).
    config = get_config("rmc1")
    model = build_model(config, rows_per_table=ROWS_PER_TABLE, seed=42)
    print(f"model: {model}")
    print(f"embedding capacity: {model.tables.total_bytes / 1e6:.1f} MB "
          f"(paper: 30 GB)")

    # 2. Assemble the device: flash array + FTL + embedding layout +
    #    Embedding Lookup Engine + kernel-searched MLP engine.
    device = RMSSD(model, lookups_per_table=config.lookups_per_table)
    print(f"kernel search: {device.search.summary()}")
    print(f"device batch (Rule Three): {device.supported_nbatch}")

    # 3. Open the tables through the host runtime (the paper's
    #    RM_create_table / RM_open_table path).
    runtime = RMRuntime(device, user="quickstart")
    for table_id in range(config.num_tables):
        runtime.rm_create_table(table_id)
    fds = [runtime.rm_open_table(t) for t in range(config.num_tables)]

    # 4. Serve a batch of requests.
    generator = RequestGenerator(config, ROWS_PER_TABLE, seed=7)
    request = generator.request(batch_size=16)
    outputs, result = runtime.rm_infer(fds, request.dense, request.sparse)

    print(f"\nserved {result.inferences} inferences "
          f"in {result.total_ns / 1e6:.2f} ms simulated time")
    print(f"throughput: {result.qps:.0f} QPS")
    print(f"mean batch latency: {result.mean_latency_ns / 1e6:.2f} ms")
    print(f"CTR predictions (first 5): {outputs[:5].ravel()}")

    # 5. Verify against the host reference implementation.
    reference = DRAMBackend(model).compute_outputs(request)
    np.testing.assert_allclose(outputs, reference, rtol=1e-5, atol=1e-6)
    print("\nOK: in-storage outputs match the host reference.")


if __name__ == "__main__":
    main()
