#!/usr/bin/env python
"""Serving an embedding-dominated model: the in-storage ladder.

Walks RMC1 (8 tables x 80 lookups: the workload class where naive SSD
deployment collapses) through every serving option the paper
evaluates, from fileIO to the full RM-SSD, printing time, throughput,
read amplification, and host traffic for each — the story of
Figs. 2, 3, 10, 11 in one run.

Run:  python examples/embedding_dominated_serving.py
"""

from repro.analysis.report import Table, format_si
from repro.baselines import (
    DRAMBackend,
    EMBMMIOBackend,
    EMBPageSumBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
    RMSSDBackend,
    RecSSDBackend,
)
from repro.models import build_model, get_config
from repro.workloads.inputs import RequestGenerator

ROWS_PER_TABLE = 8192
REQUESTS = 8


def main() -> None:
    config = get_config("rmc1")
    model = build_model(config, rows_per_table=ROWS_PER_TABLE, seed=0)
    generator = RequestGenerator(config, ROWS_PER_TABLE, seed=1)
    requests = generator.requests(REQUESTS, batch_size=1)
    print(
        f"RMC1: {config.num_tables} tables x {config.lookups_per_table} "
        f"lookups = {config.lookups_per_inference} embedding reads per inference"
    )

    backends = [
        NaiveSSDBackend(model, 0.25),  # SSD-S
        NaiveSSDBackend(model, 0.5),  # SSD-M
        EMBMMIOBackend(model),
        EMBPageSumBackend(model),
        EMBVectorSumBackend(model),
        RecSSDBackend(model),
        RMSSDBackend(model, config.lookups_per_table),
        DRAMBackend(model),
    ]

    table = Table(
        "RMC1 serving options (batch 1)",
        ["system", "ms/inference", "QPS", "emb share", "read amp", "host B/inf"],
    )
    results = {}
    for backend in backends:
        result = backend.run(requests, compute=False)
        results[backend.name] = result
        per_inference_ms = result.total_ns / result.inferences / 1e6
        emb_share = (
            result.embedding_ns / sum(result.breakdown.values())
            if result.breakdown
            else 0.0
        )
        table.add_row(
            backend.name,
            f"{per_inference_ms:.2f}",
            f"{result.qps:.0f}",
            f"{emb_share:.0%}",
            f"{result.stats.read_amplification:.1f}",
            format_si(result.stats.host_read_bytes / result.requests),
        )
    table.print()

    ssd_s = results["SSD-S"]
    rmssd = results["RM-SSD"]
    print(
        f"RM-SSD speedup over the naive SSD deployment: "
        f"{rmssd.qps / ssd_s.qps:.0f}x"
    )
    print(
        f"Host read traffic cut: {ssd_s.stats.host_read_bytes} B -> "
        f"{rmssd.stats.host_read_bytes} B "
        f"({rmssd.stats.reduction_factor_vs(ssd_s.stats):.0f}x reduction)"
    )


if __name__ == "__main__":
    main()
