#!/usr/bin/env python
"""End-to-end Criteo pipeline: dataset file -> RM-SSD -> SLA check.

Generates a synthetic Criteo-format TSV (the file format of the
dataset the paper's traces derive from), loads it, serves it through
the simulated RM-SSD with Wide & Deep — whose 26 single-lookup tables
map one-to-one onto Criteo's 26 categorical columns — and finishes
with an open-loop SLA study at the measured service times.

Run:  python examples/criteo_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.analysis.report import Table
from repro.baselines import RMSSDBackend
from repro.host.serving import ServingSimulator
from repro.models import build_model, get_config
from repro.workloads.criteo import CriteoDataset, generate_criteo_file
from repro.workloads.stats import TraceStatistics

ROWS_PER_TABLE = 4096
DATASET_ROWS = 400


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="rmssd-criteo-"))
    tsv = workdir / "day_0.tsv"

    # 1. Generate + load the Criteo-format file.
    generate_criteo_file(tsv, rows=DATASET_ROWS, vocab_size=200_000, seed=1)
    dataset = CriteoDataset.load(tsv)
    print(f"dataset: {tsv} ({len(dataset)} samples)")
    stats = TraceStatistics.from_indices(
        dataset.column_indices(0, rows_per_table=200_000)
    )
    print(f"column-0 statistics: {stats.summary()}")

    # 2. Serve through RM-SSD with Wide & Deep.
    config = get_config("wnd")
    model = build_model(config, rows_per_table=ROWS_PER_TABLE, seed=0)
    requests = dataset.to_requests(
        batch_size=8,
        num_tables=config.num_tables,
        rows_per_table=ROWS_PER_TABLE,
        dense_dim=config.dense_dim,
    )
    backend = RMSSDBackend(model, config.lookups_per_table, use_des=False)
    result = backend.run(requests)
    print(f"\nserved {result.inferences} Criteo samples on {result.system}")
    print(f"throughput: {result.qps:.0f} QPS")
    print(f"CTR range: [{result.outputs.min():.3f}, {result.outputs.max():.3f}]")

    # 3. SLA study at the measured stage times.
    search = backend.device.search
    serving = ServingSimulator(search.times, nbatch=search.nbatch, seed=2)
    sweep = serving.load_sweep(fractions=(0.3, 0.6, 0.9), queries=120)
    table = Table(
        f"WnD on RM-SSD: latency vs offered load "
        f"(saturation {serving.saturation_qps:.0f} QPS)",
        ["offered QPS", "p50 ms", "p99 ms"],
    )
    for point in sweep:
        table.add_row(
            f"{point.offered_qps:.0f}",
            f"{point.p50_ns / 1e6:.2f}",
            f"{point.p99_ns / 1e6:.2f}",
        )
    table.print()
    sla_ns = 3 * sweep[0].p50_ns
    max_qps = serving.max_qps_under_sla(sla_ns=sla_ns, queries=120)
    print(f"max load with p99 <= {sla_ns / 1e6:.2f} ms: {max_qps:.0f} QPS "
          f"({max_qps / serving.saturation_qps:.0%} of saturation)")


if __name__ == "__main__":
    main()
