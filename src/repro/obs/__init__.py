"""Observability for the simulated device: tracing, metrics, profiling.

Three pieces, all keyed to the *simulated* clock:

* :mod:`repro.obs.tracer` — nested spans with category/args, exported
  as Chrome-trace/Perfetto JSON (``trace.json``).  Enabled via the
  ``RMSSD_TRACE=1`` environment flag or an explicit ``tracer=`` kwarg;
  the :data:`NULL_TRACER` makes disabled runs free.
* :mod:`repro.obs.metrics` — named counters, gauges, and fixed-bucket
  latency histograms (p50/p95/p99/max), absorbing
  :class:`repro.ssd.stats.IOStatistics` snapshots so device traffic
  and latency export as one ``metrics.json``.
* :mod:`repro.obs.timeseries` — windowed metric series over the
  simulated clock (per-window rates, deltas, quantiles; profiler
  busy timelines resampled into utilization series), exported as one
  versioned ``rmssd-timeseries/v1`` document.
* :mod:`repro.obs.sketch` — deterministic streaming rank sketch
  (KLL-style, alternating-parity compaction) for deep tails
  (p999/p9999) with a checkable rank-error bound.
* :mod:`repro.obs.slo` — declarative SLOs over the windowed series
  with SRE-style multi-window burn-rate alerts.
* :mod:`repro.obs.profiler` — per-resource busy/idle timelines,
  utilization fractions, queue depths, and stage-level bottleneck
  attribution (checks the paper's embedding-stage-bottleneck
  invariant).  Enabled via ``RMSSD_PROFILE=1`` or ``profiler=``;
  exported as ``profile.json`` by ``rmssd-repro profile``.

Instrumentation *names* (spans, metrics, profiler streams, DES
server/resource names) are catalogued in :mod:`repro.obs.names`; call
sites import from there instead of passing string literals (lint rule
R12).

See ``docs/observability.md`` for the API tour, the span taxonomy, and
how to open traces in Perfetto.
"""

from repro.obs import names
from repro.obs.critpath import (
    COMPONENTS,
    EXPLAIN_SCHEMA,
    CritPathCollector,
    build_explain_document,
    component_sum,
    export_explain_document,
    request_breakdown,
    tail_exemplars,
)
from repro.obs.explain import diff_documents, render_diff
from repro.obs.metrics import (
    DEFAULT_BOUNDS_NS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import DEFAULT_RULES, BurnRateRule, Objective, SLOEngine
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    WindowedCounter,
    WindowedGauge,
    WindowedLatency,
    build_document,
    export_document,
    utilization_series,
    window_index,
)
from repro.obs.profiler import (
    ENV_FLAG_PROFILE,
    NULL_PROFILER,
    PROFILE_SCHEMA,
    NullProfiler,
    Profiler,
    global_profiler,
    profiling_from_env,
    resolve_profiler,
)
from repro.obs.tracer import (
    ENV_FLAG,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    global_tracer,
    resolve_tracer,
    tracing_from_env,
)

__all__ = [
    "BurnRateRule",
    "COMPONENTS",
    "Counter",
    "CritPathCollector",
    "DEFAULT_BOUNDS_NS",
    "DEFAULT_RULES",
    "ENV_FLAG",
    "ENV_FLAG_PROFILE",
    "EXPLAIN_SCHEMA",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "Objective",
    "PROFILE_SCHEMA",
    "Profiler",
    "QuantileSketch",
    "SLOEngine",
    "Span",
    "TIMESERIES_SCHEMA",
    "Tracer",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedLatency",
    "build_document",
    "build_explain_document",
    "component_sum",
    "diff_documents",
    "export_document",
    "export_explain_document",
    "global_profiler",
    "global_tracer",
    "names",
    "profiling_from_env",
    "render_diff",
    "render_prometheus",
    "request_breakdown",
    "resolve_profiler",
    "resolve_tracer",
    "tail_exemplars",
    "tracing_from_env",
    "utilization_series",
    "window_index",
]
