"""Declarative SLOs with multi-window burn-rate alerting.

RM-SSD's serving argument is an SLA argument (Fig. 12/13: sustained
QPS under a latency bound); this module turns that bound into a
monitored *objective* evaluated on the simulated clock:

    engine.objective(names.SLO_SERVING_TAIL,
                     names.METRIC_SERVING_LATENCY,
                     quantile=99.9, threshold_ns=2e6)

declares "p999(serving.latency_ns) < 2 ms, per window".  Evaluation
is pure post-processing of the windowed latency series a windowed
:class:`~repro.obs.metrics.MetricsRegistry` already collects
(:mod:`repro.obs.timeseries`): a window *violates* when it has
observations and its interpolated quantile exceeds the threshold.

Alerting follows SRE multi-window burn-rate practice: the *burn rate*
over a trailing span of L windows is

    (violating windows in span) / L / error_budget

where the budget is the tolerated violating-window fraction.  A rule
fires when both its long span (sustained burn) and its short span
(still happening *now*) exceed the rule's threshold — the long span
gives the alert memory, the short span resets it quickly once the
incident ends.  Two default severities mirror the classic fast/slow
pairing: ``page`` (6/2 windows, 10x budget) and ``ticket`` (24/6
windows, 2x budget).  Alerts are emitted as structured events on the
simulated clock, once per rising edge — `tests/test_obs_slo.py` pins
that an injected violation fires in exactly the expected window.

Determinism: evaluation reads only the windowed series (whose inputs
are bitwise-equal across the DES and fast paths) and does integer
window arithmetic, so SLO reports are byte-identical across paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.obs import names


@dataclass(frozen=True)
class Objective:
    """One declarative SLO: ``quantile(metric) < threshold_ns`` per
    window, with ``budget`` the tolerated violating-window fraction."""

    name: str
    metric: str
    quantile: float
    threshold_ns: float
    budget: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 100.0:
            raise ValueError("objective quantile must be in (0, 100]")
        if self.threshold_ns <= 0:
            raise ValueError("objective threshold must be positive")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("error budget must be a fraction in (0, 1]")


@dataclass(frozen=True)
class BurnRateRule:
    """One severity tier: fire when the burn rate over the trailing
    ``long_windows`` *and* ``short_windows`` spans both reach
    ``burn_threshold`` times the budget."""

    severity: str
    long_windows: int
    short_windows: int
    burn_threshold: float

    def __post_init__(self) -> None:
        if self.long_windows < 1 or self.short_windows < 1:
            raise ValueError("burn-rate spans must be >= 1 window")
        if self.short_windows > self.long_windows:
            raise ValueError("short span must not exceed the long span")
        if self.burn_threshold <= 0:
            raise ValueError("burn threshold must be positive")


#: The classic SRE fast/slow pairing, in window units.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule(
        severity=names.ALERT_PAGE,
        long_windows=6,
        short_windows=2,
        burn_threshold=10.0,
    ),
    BurnRateRule(
        severity=names.ALERT_TICKET,
        long_windows=24,
        short_windows=6,
        burn_threshold=2.0,
    ),
)


class SLOEngine:
    """Holds declared objectives; evaluates them against a windowed
    registry's latency series."""

    def __init__(
        self,
        window_ns: float,
        rules: Sequence[BurnRateRule] = DEFAULT_RULES,
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window width must be positive")
        self.window_ns = float(window_ns)
        self.rules: Tuple[BurnRateRule, ...] = tuple(rules)
        self._objectives: List[Objective] = []

    def objective(
        self,
        name: str,
        metric: str,
        quantile: float = 99.9,
        threshold_ns: float = 1e6,
        budget: float = 0.01,
    ) -> Objective:
        """Declare one objective; returns the frozen record."""
        declared = Objective(
            name=name,
            metric=metric,
            quantile=quantile,
            threshold_ns=threshold_ns,
            budget=budget,
        )
        self._objectives.append(declared)
        return declared

    @property
    def objectives(self) -> Tuple[Objective, ...]:
        return tuple(self._objectives)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def _burn(violating: Dict[int, bool], end: int, span: int, budget: float) -> float:
        """Burn rate over the trailing ``span`` windows ending at
        ``end`` (windows with no data, or before the data, comply)."""
        bad = sum(
            1 for index in range(end - span + 1, end + 1)
            if violating.get(index, False)
        )
        return bad / span / budget

    def _evaluate_objective(self, objective: Objective, series) -> dict:
        record: dict = {
            "name": objective.name,
            "metric": objective.metric,
            "quantile": objective.quantile,
            "threshold_ns": objective.threshold_ns,
            "budget": objective.budget,
            "windows": [],
            "alerts": [],
        }
        indices = series.window_indices() if series is not None else []
        if not indices:
            return record
        first, last = indices[0], indices[-1]
        violating: Dict[int, bool] = {}
        for index in range(first, last + 1):
            count = series.window_count(index)
            value = series.window_percentile(index, objective.quantile)
            bad = count > 0 and value > objective.threshold_ns
            violating[index] = bad
            record["windows"].append(
                {
                    "index": index,
                    "start_ns": index * self.window_ns,
                    "count": count,
                    "value_ns": value,
                    "ok": not bad,
                }
            )
        # Rising-edge alert per rule: fire the window the condition
        # becomes true, stay silent while it holds, re-arm once clear.
        fired: Dict[str, bool] = {rule.severity: False for rule in self.rules}
        for index in range(first, last + 1):
            for rule in self.rules:
                long_burn = self._burn(
                    violating, index, rule.long_windows, objective.budget
                )
                short_burn = self._burn(
                    violating, index, rule.short_windows, objective.budget
                )
                active = (
                    long_burn >= rule.burn_threshold
                    and short_burn >= rule.burn_threshold
                )
                if active and not fired[rule.severity]:
                    record["alerts"].append(
                        {
                            "type": names.ALERT_BURN_RATE,
                            "severity": rule.severity,
                            "objective": objective.name,
                            "window": index,
                            "t_ns": (index + 1) * self.window_ns,
                            "long_burn": long_burn,
                            "short_burn": short_burn,
                            "long_windows": rule.long_windows,
                            "short_windows": rule.short_windows,
                        }
                    )
                fired[rule.severity] = active
        return record

    def evaluate(self, metrics) -> List[dict]:
        """Evaluate every objective against ``metrics`` (a windowed
        :class:`~repro.obs.metrics.MetricsRegistry`)."""
        return [
            self._evaluate_objective(objective, metrics.series(objective.metric))
            for objective in self._objectives
        ]

    def alerts(self, metrics) -> List[dict]:
        """All alert events across objectives, in (time, severity) order."""
        events: List[dict] = []
        for record in self.evaluate(metrics):
            events.extend(record["alerts"])
        events.sort(key=lambda e: (e["t_ns"], e["severity"], e["objective"]))
        return events

    def report_dict(self, metrics) -> dict:
        """The ``slo`` section of the timeseries document."""
        return {
            "window_ns": self.window_ns,
            "rules": [
                {
                    "severity": rule.severity,
                    "long_windows": rule.long_windows,
                    "short_windows": rule.short_windows,
                    "burn_threshold": rule.burn_threshold,
                }
                for rule in self.rules
            ],
            "objectives": self.evaluate(metrics),
        }
