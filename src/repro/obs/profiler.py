"""Utilization profiler and bottleneck attribution (simulated clock).

PR 3's tracer answers *where one request's time went*; this module
answers the system-level question behind the paper's design argument:
**which resource is saturated and which is idle?**  The kernel search
(Section IV-C, Rules 1-4) sizes every FC layer so that the embedding
stage remains the throughput bottleneck — the profiler measures that
invariant instead of trusting it, and emits a structured warning when
an MLP stage dominates (the RM-SSD-Naive failure mode of Fig. 12c).

Three record streams feed one profile:

* **service records** — FIFO :class:`repro.sim.resources.Server` jobs
  (the FTL MUX, each flash channel bus) as ``(arrival, start, end)``
  triples.  Queue depths are derived post hoc: the depth seen by job
  *i* is the number of earlier-arrived jobs still in the system at its
  arrival.
* **busy intervals** — occupancy of :class:`repro.sim.resources.
  Resource` units (flash dies: first acquire to last release), plus
  the non-DES engines whose time is analytic — per-FC-layer MLP
  kernels, the EV-Sum adder tree, the controller-DRAM vcache stream,
  and the host DMA/MMIO path.  Overlaps are union-merged, so per
  resource ``busy <= elapsed`` holds by construction.
* **stage samples** — one :class:`repro.core.device.DeviceTiming` per
  device batch, aggregated into the bottleneck report.

Design constraints (shared with :mod:`repro.obs.tracer`):

* **Near-zero overhead when disabled** — every instrumentation site
  guards on ``profiler.enabled``; the shared :data:`NULL_PROFILER`
  singleton makes all methods no-ops, and the DES kernel carries
  ``sim.profiler = None`` by default.
* **Simulated time only** — all timestamps are simulated nanoseconds
  (lint rule R7 bans wall clocks here), so exports are deterministic.
* **Bitwise path equivalence** — the fast path records the *same*
  triples as the DES (same float arithmetic, see
  :mod:`repro.ssd.fastpath`); records are sorted before export, so the
  two paths produce **byte-identical** profile JSON
  (``tests/test_profiler_equivalence.py``).

Enable globally with ``RMSSD_PROFILE=1`` (see :func:`global_profiler`)
or pass ``profiler=`` to :class:`repro.core.device.RMSSD`; export with
:meth:`Profiler.export_json` or ``rmssd-repro profile``.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

#: Environment flag enabling the global profiler ("1"/"true"/"on"/"yes").
ENV_FLAG_PROFILE = "RMSSD_PROFILE"

#: Schema tag stamped into every exported profile.
PROFILE_SCHEMA = "rmssd-profile/v1"

#: Stage keys of the bottleneck report, in tie-breaking priority order
#: (the embedding stage wins exact ties — the kernel search sizes FC
#: layers *up to* the flash bound, so equality still satisfies Rule 4).
STAGE_KEYS = ("emb", "bot", "top", "io")

#: Cap on exported per-resource timeline entries; the merged busy/idle
#: timeline is truncated (never silently — see ``intervals_omitted``).
TIMELINE_LIMIT = 512

_TRUTHY = ("1", "true", "on", "yes")


def profiling_from_env() -> bool:
    """Whether ``RMSSD_PROFILE`` asks for the global profiler."""
    return os.environ.get(ENV_FLAG_PROFILE, "").strip().lower() in _TRUTHY


def merge_intervals(
    intervals: List[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """Union-merge ``(start, end)`` intervals (input need not be sorted).

    Touching intervals coalesce (a die handed straight to the next
    waiter stays busy), so the merged total is the *occupancy* time —
    never double-counting overlap, never exceeding the span it covers.
    """
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged: List[Tuple[float, float]] = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


class Profiler:
    """Collects resource/stage records; builds the utilization profile."""

    enabled = True

    def __init__(self) -> None:
        # name -> list of (arrival, start, end) FIFO service triples.
        self._services: Dict[str, List[Tuple[float, float, float]]] = {}
        # name -> list of (start, end) busy intervals.
        self._busy: Dict[str, List[Tuple[float, float]]] = {}
        # name -> list of (t, depth) sampled wait-queue depths.
        self._queue_samples: Dict[str, List[Tuple[float, int]]] = {}
        self._kinds: Dict[str, str] = {}
        # One dict per device batch (DeviceTiming fields + start).
        self.stages: List[dict] = []
        #: Run metadata merged into the export (model, backend, ...).
        self.meta: Dict[str, object] = {}

    def __len__(self) -> int:
        return (
            sum(len(v) for v in self._services.values())
            + sum(len(v) for v in self._busy.values())
            + len(self.stages)
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _register(self, name: str, kind: str) -> None:
        if name not in self._kinds:
            self._kinds[name] = kind

    def record_service(
        self,
        name: str,
        arrival_ns: float,
        start_ns: float,
        end_ns: float,
        kind: str = "server",
    ) -> None:
        """One FIFO server job: offered at ``arrival``, served
        ``[start, end]`` (``start >= arrival``; the gap is queueing)."""
        if start_ns < arrival_ns or end_ns < start_ns:
            raise ValueError(
                f"service on {name!r} out of order: "
                f"arrival={arrival_ns} start={start_ns} end={end_ns}"
            )
        self._register(name, kind)
        self._services.setdefault(name, []).append(
            (float(arrival_ns), float(start_ns), float(end_ns))
        )

    def record_busy(
        self, name: str, start_ns: float, end_ns: float, kind: str = "resource"
    ) -> None:
        """One busy interval of a resource (overlaps are union-merged)."""
        if end_ns < start_ns:
            raise ValueError(
                f"busy interval on {name!r} ends before it starts "
                f"({end_ns} < {start_ns})"
            )
        self._register(name, kind)
        self._busy.setdefault(name, []).append((float(start_ns), float(end_ns)))

    def record_queue_depth(self, name: str, t_ns: float, depth: int) -> None:
        """Sampled wait-queue depth (e.g. acquires that had to wait)."""
        if depth < 0:
            raise ValueError(f"negative queue depth on {name!r}")
        self._queue_samples.setdefault(name, []).append((float(t_ns), int(depth)))

    def record_stage(
        self,
        start_ns: float,
        nbatch: int,
        emb_ns: float,
        bot_ns: float,
        top_ns: float,
        io_ns: float,
        latency_ns: float,
        serialized: bool,
    ) -> None:
        """One device batch's stage sample (a DeviceTiming, located)."""
        self.stages.append(
            {
                "start_ns": float(start_ns),
                "nbatch": int(nbatch),
                "emb": float(emb_ns),
                "bot": float(bot_ns),
                "top": float(top_ns),
                "io": float(io_ns),
                "latency_ns": float(latency_ns),
                "serialized": bool(serialized),
            }
        )

    def set_meta(self, **fields) -> None:
        """Attach run metadata (model, backend, ...) to the export."""
        self.meta.update(fields)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def elapsed_ns(self) -> float:
        """Run horizon: the latest instant any record touches.

        MLP/host intervals are analytic add-ons that extend beyond the
        DES clock (the embedding stage is the only stream that advances
        it), so the horizon is taken over *all* records, not ``sim.now``.
        """
        horizon = 0.0
        for triples in self._services.values():
            for _, _, end in triples:
                if end > horizon:
                    horizon = end
        for intervals in self._busy.values():
            for _, end in intervals:
                if end > horizon:
                    horizon = end
        for stage in self.stages:
            end = stage["start_ns"] + stage["latency_ns"]
            if end > horizon:
                horizon = end
        return horizon

    def _resource_intervals(self, name: str) -> List[Tuple[float, float]]:
        intervals = list(self._busy.get(name, ()))
        intervals.extend(
            (start, end) for _, start, end in self._services.get(name, ())
        )
        return merge_intervals(intervals)

    def utilizations(self, elapsed: Optional[float] = None) -> Dict[str, float]:
        """Busy fraction per resource (union-merged; ``<= 1`` always)."""
        if elapsed is None:
            elapsed = self.elapsed_ns()
        out: Dict[str, float] = {}
        for name in self._kinds:
            busy = sum(e - s for s, e in self._resource_intervals(name))
            out[name] = busy / elapsed if elapsed > 0 else 0.0
        return out

    @staticmethod
    def _service_queue_depths(
        triples: List[Tuple[float, float, float]],
    ) -> List[int]:
        """Depth seen by each job at arrival (earlier jobs still in
        system).  FIFO service means completion order equals arrival
        order, so departures before ``arrival_i`` are a prefix count."""
        ordered = sorted(triples)
        ends = [end for _, _, end in ordered]
        depths: List[int] = []
        for index, (arrival, _, _) in enumerate(ordered):
            departed = bisect_right(ends, arrival, 0, index)
            depths.append(index - departed)
        return depths

    def _queue_summary(self, name: str) -> Optional[dict]:
        depths = [depth for _, depth in self._queue_samples.get(name, ())]
        triples = self._services.get(name)
        if triples:
            depths.extend(self._service_queue_depths(triples))
        if not depths:
            return None
        return {
            "samples": len(depths),
            "max_depth": max(depths),
            "mean_depth": sum(depths) / len(depths),
        }

    def busy_timelines(self) -> Dict[str, Tuple[str, List[Tuple[float, float]]]]:
        """Untruncated union-merged busy intervals per resource, with
        each resource's kind.

        The raw input of the per-window utilization resampler
        (:func:`repro.obs.timeseries.utilization_series`) — unlike
        :meth:`resource_report` this never truncates at
        :data:`TIMELINE_LIMIT`, so window busy times sum exactly to
        the resource's total busy time (the conservation invariant
        ``tools/check_trace.py --timeseries`` checks).
        """
        return {
            name: (self._kinds[name], self._resource_intervals(name))
            for name in sorted(self._kinds)
        }

    def resource_report(self, elapsed: Optional[float] = None) -> Dict[str, dict]:
        """Per-resource busy/idle timeline, utilization, queue stats."""
        if elapsed is None:
            elapsed = self.elapsed_ns()
        report: Dict[str, dict] = {}
        for name in sorted(self._kinds):
            merged = self._resource_intervals(name)
            busy = sum(e - s for s, e in merged)
            jobs = len(self._services.get(name, ())) or len(
                self._busy.get(name, ())
            )
            entry = {
                "kind": self._kinds[name],
                "busy_ns": busy,
                "utilization": busy / elapsed if elapsed > 0 else 0.0,
                "jobs": jobs,
                "busy_intervals": [list(pair) for pair in merged[:TIMELINE_LIMIT]],
                "intervals_omitted": max(0, len(merged) - TIMELINE_LIMIT),
            }
            queue = self._queue_summary(name)
            if queue is not None:
                entry["queue"] = queue
            report[name] = entry
        return report

    def channel_report(self, elapsed: Optional[float] = None) -> Dict[str, dict]:
        """EV-FMC view: per-channel union of its dies and bus.

        A channel's front end is busy whenever *any* of its dies or its
        bus is — the utilization of the per-channel EV-FMC pipeline.
        """
        if elapsed is None:
            elapsed = self.elapsed_ns()
        groups: Dict[str, List[str]] = {}
        for name, kind in self._kinds.items():
            if kind in ("die", "channel-bus") and "-" in name:
                groups.setdefault(name.split("-")[0], []).append(name)
        report: Dict[str, dict] = {}
        for group in sorted(groups):
            members = sorted(groups[group])
            intervals: List[Tuple[float, float]] = []
            for member in members:
                intervals.extend(self._resource_intervals(member))
            merged = merge_intervals(intervals)
            busy = sum(e - s for s, e in merged)
            report[group] = {
                "busy_ns": busy,
                "utilization": busy / elapsed if elapsed > 0 else 0.0,
                "resources": members,
            }
        return report

    def bottleneck_report(self) -> dict:
        """Name the limiting stage; check the paper's design invariant.

        The kernel search guarantees the *embedding* stage bounds the
        pipeline interval (Rules 1-4); when an MLP stage (or host I/O)
        dominates instead, a structured warning explains which and by
        how much — the profile-level version of Fig. 12c's RM-SSD vs
        RM-SSD-Naive gap.
        """
        totals = {key: 0.0 for key in STAGE_KEYS}
        for stage in self.stages:
            for key in STAGE_KEYS:
                totals[key] += stage[key]
        batches = len(self.stages)
        means = {
            key: (totals[key] / batches if batches else 0.0)
            for key in STAGE_KEYS
        }
        bottleneck = max(STAGE_KEYS, key=lambda key: totals[key])
        # Exact ties resolve to the earliest STAGE_KEYS entry (emb).
        for key in STAGE_KEYS:
            if totals[key] >= totals[bottleneck]:
                bottleneck = key
                break
        slack = {key: totals[bottleneck] - totals[key] for key in STAGE_KEYS}
        holds = bottleneck == "emb"
        warnings: List[dict] = []
        if not holds:
            kind = (
                "mlp-dominates-embedding"
                if bottleneck in ("bot", "top")
                else "io-dominates-embedding"
            )
            warnings.append(
                {
                    "type": kind,
                    "stage": bottleneck,
                    "stage_mean_ns": means[bottleneck],
                    "emb_mean_ns": means["emb"],
                    "ratio": (
                        means[bottleneck] / means["emb"]
                        if means["emb"] > 0
                        else float("inf")
                    ),
                }
            )
        return {
            "batches": batches,
            "inferences": sum(stage["nbatch"] for stage in self.stages),
            "stage_totals_ns": totals,
            "stage_means_ns": means,
            "bottleneck_stage": bottleneck,
            "slack_ns": slack,
            "serialized_batches": sum(
                1 for stage in self.stages if stage["serialized"]
            ),
            "invariant": {
                "name": "embedding-stage-bottleneck",
                "reference": "RM-SSD section IV-C, kernel-search Rules 1-4",
                "holds": holds,
            },
            "warnings": warnings,
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        elapsed = self.elapsed_ns()
        return {
            "schema": PROFILE_SCHEMA,
            "meta": dict(sorted(self.meta.items())),
            "elapsed_ns": elapsed,
            "resources": self.resource_report(elapsed),
            "channels": self.channel_report(elapsed),
            "bottleneck": self.bottleneck_report(),
        }

    def export_json(self, path: str) -> str:
        """Write the profile as deterministic JSON; returns the path.

        Sorted keys, sorted records, fixed float formatting: identical
        runs — and the DES vs fast path of the same run — produce
        byte-identical files.
        """
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


class NullProfiler:
    """No-op profiler: every method returns immediately.

    Instrumentation sites guard record construction on :attr:`enabled`,
    so a disabled run does no per-record work at all.
    """

    enabled = False
    stages: tuple = ()
    meta: dict = {}

    def __len__(self) -> int:
        return 0

    def record_service(self, name, arrival_ns, start_ns, end_ns, kind="server"):
        return None

    def record_busy(self, name, start_ns, end_ns, kind="resource"):
        return None

    def record_queue_depth(self, name, t_ns, depth):
        return None

    def record_stage(
        self, start_ns, nbatch, emb_ns, bot_ns, top_ns, io_ns,
        latency_ns, serialized,
    ):
        return None

    def set_meta(self, **fields):
        return None

    def elapsed_ns(self) -> float:
        return 0.0

    def utilizations(self, elapsed=None) -> dict:
        return {}

    def busy_timelines(self) -> dict:
        return {}

    def resource_report(self, elapsed=None) -> dict:
        return {}

    def channel_report(self, elapsed=None) -> dict:
        return {}

    def bottleneck_report(self) -> dict:
        return {}

    def as_dict(self) -> dict:
        return {}

    def export_json(self, path: str) -> str:
        raise RuntimeError("profiling is disabled; nothing to export")


#: The shared disabled profiler — never allocate per call site.
NULL_PROFILER = NullProfiler()

_global_profiler: Optional[Profiler] = None


def global_profiler():
    """The process-wide profiler: a real :class:`Profiler` when
    ``RMSSD_PROFILE`` is set (created once, shared by every device
    built afterwards), else :data:`NULL_PROFILER`."""
    global _global_profiler
    if not profiling_from_env():
        return NULL_PROFILER
    if _global_profiler is None:
        _global_profiler = Profiler()
    return _global_profiler


def resolve_profiler(profiler=None):
    """``profiler=`` kwarg resolution: explicit object wins, then the
    ``RMSSD_PROFILE`` global, then the no-op profiler."""
    if profiler is not None:
        return profiler
    return global_profiler()
