"""Span tracer keyed to the *simulated* clock.

The engines record where simulated time goes inside a request as
nested spans — ``request -> {io_send, emb{translate, flash_read,
ev_sum}, ssd{ftl, channelK}, mlp{per-FC-layer}, io_recv}`` — and this
module turns them into a Chrome-trace / Perfetto JSON file
(``trace.json``) so a whole serving run can be inspected visually in
`https://ui.perfetto.dev <https://ui.perfetto.dev>`_.

Design constraints, in order:

* **Near-zero overhead when disabled.**  Every instrumentation site
  guards on ``tracer.enabled`` before computing span arguments, and the
  shared :data:`NULL_TRACER` singleton makes all methods no-ops (no
  allocation in hot loops — pinned by ``tests/test_obs_tracer.py``).
* **Simulated time only.**  Timestamps are simulated nanoseconds
  supplied by the caller (or read from a clock callable); the tracer
  never consults the wall clock (lint rule R7 bans wall clocks in the
  simulated-time packages outright).
* **Deterministic.**  Identical runs produce byte-identical traces;
  the fast path and the DES emit *identical span trees* (names,
  tracks, simulated durations) for the same batch — the PR 2
  equivalence contract extended to observability
  (``tests/test_obs_span_equivalence.py``).

Spans are grouped into *tracks* (Chrome-trace threads).  Within one
track spans must nest properly; concurrent flows use the
:meth:`Tracer.lane_index` allocator, which parcels overlapping spans
out over ``group[0] / group[1] / ...`` sibling tracks.

Enable globally with ``RMSSD_TRACE=1`` (see :func:`global_tracer`) or
pass an explicit ``tracer=`` to :class:`repro.core.device.RMSSD` /
:class:`repro.ssd.controller.SSDController` and export with
:meth:`Tracer.export_chrome`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Environment flag enabling the global tracer ("1"/"true"/"on"/"yes").
ENV_FLAG = "RMSSD_TRACE"

_TRUTHY = ("1", "true", "on", "yes")


def tracing_from_env() -> bool:
    """Whether ``RMSSD_TRACE`` asks for the global tracer."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


def _json_safe(value: Any) -> Any:
    """Coerce span-arg values into JSON-serializable scalars."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    # numpy scalars and anything else with an item()/__float__.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class Span:
    """One completed span: simulated start/end plus identity."""

    __slots__ = ("name", "cat", "track", "start_ns", "end_ns", "args")

    def __init__(
        self,
        name: str,
        start_ns: float,
        end_ns: float,
        cat: str,
        track: str,
        args: Optional[dict],
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.args = args

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def key(self) -> tuple:
        """Identity tuple used by the differential span-tree tests."""
        return (self.track, self.name, self.start_ns, self.end_ns)

    def __repr__(self) -> str:
        return (
            f"Span({self.track}:{self.name} "
            f"[{self.start_ns:.0f}, {self.end_ns:.0f}]ns)"
        )


class _Measured:
    """Context manager for :meth:`Tracer.measure` (clock-read spans)."""

    __slots__ = ("_tracer", "_clock", "_name", "_cat", "_track", "_args", "_t0")

    def __init__(self, tracer, clock, name, cat, track, args) -> None:
        self._tracer = tracer
        self._clock = clock
        self._name = name
        self._cat = cat
        self._track = track
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Measured":
        self._t0 = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.add_span(
            self._name,
            self._t0,
            self._clock(),
            cat=self._cat,
            track=self._track,
            args=self._args,
        )


class Tracer:
    """Collects spans on the simulated clock; exports Chrome-trace JSON."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        # group -> list of per-lane last end times (see lane_index).
        self._lanes: Dict[str, List[float]] = {}

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        start_ns: float,
        end_ns: float,
        cat: str = "",
        track: str = "main",
        args: Optional[dict] = None,
    ) -> Span:
        """Record a completed span with explicit simulated times."""
        if end_ns < start_ns:
            raise ValueError(
                f"span {name!r} ends before it starts "
                f"({end_ns} < {start_ns})"
            )
        span = Span(name, float(start_ns), float(end_ns), cat, track, args)
        self.spans.append(span)
        return span

    def measure(
        self,
        clock: Callable[[], float],
        name: str,
        cat: str = "",
        track: str = "main",
        args: Optional[dict] = None,
    ) -> _Measured:
        """Context manager reading ``clock()`` at enter/exit."""
        return _Measured(self, clock, name, cat, track, args)

    def lane_index(self, group: str, start_ns: float, end_ns: float) -> int:
        """Allocate a track lane for a ``[start, end]`` interval.

        Overlapping intervals of one group land on distinct lanes
        (tracks ``group[0]``, ``group[1]``, ...), so concurrent
        requests render side by side instead of producing malformed
        nesting on one track.  Intervals must be offered in
        non-decreasing ``start_ns`` order per group.
        """
        lanes = self._lanes.setdefault(group, [])
        for index, busy_until in enumerate(lanes):
            if start_ns >= busy_until:
                lanes[index] = end_ns
                return index
        lanes.append(end_ns)
        return len(lanes) - 1

    def lane_track(self, group: str, start_ns: float, end_ns: float) -> str:
        """Track name for :meth:`lane_index` (``group`` for lane 0)."""
        index = self.lane_index(group, start_ns, end_ns)
        return group if index == 0 else f"{group}[{index}]"

    # ------------------------------------------------------------------
    # Introspection (tests, reports)
    # ------------------------------------------------------------------
    def as_tuples(self) -> List[tuple]:
        """Span identities ``(track, name, start_ns, end_ns)``, in
        recording order — the exact-equality currency of the
        differential tests."""
        return [span.key() for span in self.spans]

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    # ------------------------------------------------------------------
    # Chrome-trace export
    # ------------------------------------------------------------------
    def chrome_events(self) -> List[dict]:
        """The ``traceEvents`` list: balanced B/E pairs, ts-sorted.

        Timestamps are microseconds (the Chrome-trace unit) derived
        from the simulated nanosecond clock.  Within a track, spans
        must nest properly — a partial overlap raises, pointing at the
        offending instrumentation (use :meth:`lane_index` for
        concurrent flows).
        """
        tracks: List[str] = []
        seen: Dict[str, int] = {}
        for span in self.spans:
            if span.track not in seen:
                seen[span.track] = len(tracks)
                tracks.append(span.track)

        events: List[Tuple[float, int, dict]] = []
        sequence = 0
        for track in tracks:
            tid = seen[track] + 1
            members = [s for s in self.spans if s.track == track]
            members.sort(key=lambda s: (s.start_ns, -s.end_ns))
            stack: List[Span] = []
            for span in members:
                while stack and stack[-1].end_ns <= span.start_ns:
                    closed = stack.pop()
                    events.append(
                        (closed.end_ns, sequence, self._end_event(closed, tid))
                    )
                    sequence += 1
                if stack and span.end_ns > stack[-1].end_ns:
                    raise ValueError(
                        f"span {span!r} partially overlaps {stack[-1]!r} on "
                        f"track {track!r}; allocate lanes for concurrency"
                    )
                events.append(
                    (span.start_ns, sequence, self._begin_event(span, tid))
                )
                sequence += 1
                stack.append(span)
            while stack:
                closed = stack.pop()
                events.append(
                    (closed.end_ns, sequence, self._end_event(closed, tid))
                )
                sequence += 1

        events.sort(key=lambda item: (item[0], item[1]))
        out = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "rm-ssd simulated device"},
            }
        ]
        for track in tracks:
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": seen[track] + 1,
                    "args": {"name": track},
                }
            )
        out.extend(event for _ts, _seq, event in events)
        return out

    @staticmethod
    def _begin_event(span: Span, tid: int) -> dict:
        event = {
            "name": span.name,
            "cat": span.cat or "sim",
            "ph": "B",
            "ts": span.start_ns / 1000.0,
            "pid": 1,
            "tid": tid,
        }
        if span.args:
            event["args"] = {k: _json_safe(v) for k, v in span.args.items()}
        return event

    @staticmethod
    def _end_event(span: Span, tid: int) -> dict:
        return {
            "name": span.name,
            "cat": span.cat or "sim",
            "ph": "E",
            "ts": span.end_ns / 1000.0,
            "pid": 1,
            "tid": tid,
        }

    def export_chrome(self, path: str) -> str:
        """Write the trace as Chrome-trace JSON; returns the path."""
        payload = {
            "displayTimeUnit": "ns",
            "traceEvents": self.chrome_events(),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        return path


class _NullMeasured:
    """Shared, reusable no-op context manager (zero per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullMeasured":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_MEASURED = _NullMeasured()


class NullTracer:
    """No-op tracer: every method returns immediately.

    Instrumentation sites additionally guard span-argument
    construction on :attr:`enabled`, so a disabled run does no
    per-span work at all.
    """

    enabled = False
    spans: tuple = ()

    def __len__(self) -> int:
        return 0

    def add_span(self, name, start_ns, end_ns, cat="", track="main", args=None):
        return None

    def measure(self, clock, name, cat="", track="main", args=None):
        return _NULL_MEASURED

    def lane_index(self, group, start_ns, end_ns) -> int:
        return 0

    def lane_track(self, group, start_ns, end_ns) -> str:
        return group

    def as_tuples(self) -> list:
        return []

    def spans_named(self, name) -> list:
        return []

    def chrome_events(self) -> list:
        return []

    def export_chrome(self, path: str) -> str:
        raise RuntimeError("tracing is disabled; nothing to export")


#: The shared disabled tracer — never allocate per call site.
NULL_TRACER = NullTracer()

_global_tracer: Optional[Tracer] = None


def global_tracer():
    """The process-wide tracer: a real :class:`Tracer` when
    ``RMSSD_TRACE`` is set (created once, shared by every device built
    afterwards), else :data:`NULL_TRACER`."""
    global _global_tracer
    if not tracing_from_env():
        return NULL_TRACER
    if _global_tracer is None:
        _global_tracer = Tracer()
    return _global_tracer


def resolve_tracer(tracer=None):
    """``tracer=`` kwarg resolution: explicit object wins, then the
    ``RMSSD_TRACE`` global, then the no-op tracer."""
    if tracer is not None:
        return tracer
    return global_tracer()
