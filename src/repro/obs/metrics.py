"""Metrics registry: named counters, gauges, latency histograms.

Companion to the span tracer: where the tracer answers "where did this
*one* request's simulated time go", the registry answers "what is the
*distribution*" — p50/p95/p99/max request latency, per-stage time
histograms, and device-traffic counters — in one exportable structure.
:class:`repro.ssd.stats.IOStatistics` snapshots are absorbed whole
(:meth:`MetricsRegistry.absorb_io`), so device traffic and latency
live side by side in ``metrics.json``.

Histograms use *fixed* bucket boundaries (upper-inclusive, like
Prometheus ``le`` buckets) so observation cost is one bisect plus two
integer increments, independent of how many values arrive.  Quantiles
interpolate linearly inside the bucket that crosses the target rank,
with the edge buckets tightened to the observed min/max — exact for
single-bucket data, conservative otherwise.  The boundary semantics
are pinned by ``tests/test_obs_metrics.py``.

All durations are simulated nanoseconds, matching the tracer and the
SSD substrate.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence


def _default_bounds_ns() -> List[float]:
    """1-2-5 series from 100 ns to 10 s — wide enough for any stage
    time the simulator produces at either end."""
    bounds: List[float] = []
    decade = 100.0
    while decade <= 1e10:
        for mantissa in (1.0, 2.0, 5.0):
            bounds.append(decade * mantissa)
        decade *= 10.0
    return bounds


#: Default histogram boundaries (ns), shared by every latency metric.
DEFAULT_BOUNDS_NS: Sequence[float] = tuple(_default_bounds_ns())


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated quantiles.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]`` (bucket 0 starts
    at 0), plus one overflow bucket above ``bounds[-1]``.
    """

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        chosen = list(DEFAULT_BOUNDS_NS if bounds is None else bounds)
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if chosen != sorted(chosen) or len(set(chosen)) != len(chosen):
            raise ValueError("bucket bounds must be strictly increasing")
        if chosen[0] <= 0:
            raise ValueError("bucket bounds must be positive")
        self.bounds: List[float] = chosen
        self.counts: List[int] = [0] * (len(chosen) + 1)
        self.count = 0
        self.total_ns = 0.0
        self.min_ns = float("inf")
        self.max_ns = 0.0

    def observe(self, value_ns: float) -> None:
        """Record one latency observation (simulated ns, >= 0)."""
        if value_ns < 0:
            raise ValueError(f"negative latency {value_ns}")
        self.counts[bisect_left(self.bounds, value_ns)] += 1
        self.count += 1
        self.total_ns += value_ns
        if value_ns < self.min_ns:
            self.min_ns = value_ns
        if value_ns > self.max_ns:
            self.max_ns = value_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0-100) by in-bucket interpolation.

        Returns 0.0 for an empty histogram.  The first and last
        non-empty buckets are tightened to the observed min/max, so a
        distribution confined to one bucket reports exact quantiles.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        if target <= 0:
            return self.min_ns
        first_nonempty = next(
            i for i, c in enumerate(self.counts) if c
        )
        last_nonempty = max(i for i, c in enumerate(self.counts) if c)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.max_ns
                )
                if index == first_nonempty:
                    lower = max(lower, self.min_ns)
                if index == last_nonempty:
                    upper = min(upper, self.max_ns)
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.max_ns  # unreachable; defensive

    def summary(self) -> dict:
        """The export payload: count, mean, quantiles, extremes."""
        return {
            "count": self.count,
            "mean_ns": self.mean_ns,
            "p50_ns": self.percentile(50.0),
            "p95_ns": self.percentile(95.0),
            "p99_ns": self.percentile(99.0),
            "min_ns": self.min_ns if self.count else 0.0,
            "max_ns": self.max_ns,
        }

    def as_dict(self) -> dict:
        data = self.summary()
        data["buckets"] = [
            {"le_ns": bound, "count": count}
            for bound, count in zip(self.bounds, self.counts)
            if count
        ]
        overflow = self.counts[-1]
        if overflow:
            data["buckets"].append({"le_ns": None, "count": overflow})
        return data


class MetricsRegistry:
    """Named metrics, get-or-create, exported as one JSON document."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._snapshots: Dict[str, dict] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> LatencyHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram(name, bounds)
        return histogram

    def absorb(self, name: str, payload: dict) -> None:
        """Attach a point-in-time snapshot dict (e.g. I/O counters)."""
        self._snapshots[name] = dict(payload)

    def absorb_io(self, stats, name: str = "io") -> None:
        """Absorb an :class:`~repro.ssd.stats.IOStatistics` (or one of
        its frozen snapshots) under ``snapshots[name]``."""
        self.absorb(name, stats.as_dict())

    def as_dict(self) -> dict:
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
            "snapshots": dict(sorted(self._snapshots.items())),
        }

    def export_json(self, path: str) -> str:
        """Write the registry as ``metrics.json``; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
