"""Metrics registry: named counters, gauges, latency histograms.

Companion to the span tracer: where the tracer answers "where did this
*one* request's simulated time go", the registry answers "what is the
*distribution*" — p50/p95/p99/max request latency, per-stage time
histograms, and device-traffic counters — in one exportable structure.
:class:`repro.ssd.stats.IOStatistics` snapshots are absorbed whole
(:meth:`MetricsRegistry.absorb_io`), so device traffic and latency
live side by side in ``metrics.json``.

Histograms use *fixed* bucket boundaries (upper-inclusive, like
Prometheus ``le`` buckets) so observation cost is one bisect plus two
integer increments, independent of how many values arrive.  Quantiles
interpolate linearly inside the bucket that crosses the target rank,
with the edge buckets tightened to the observed min/max — exact for
single-bucket data, conservative otherwise.  The boundary semantics
are pinned by ``tests/test_obs_metrics.py``.

All durations are simulated nanoseconds, matching the tracer and the
SSD substrate.

A registry built with ``window_ns=`` additionally rolls every
*timestamped* observation (``inc``/``set``/``observe`` with ``t_ns=``)
into fixed-width windows of the simulated clock
(:mod:`repro.obs.timeseries`), and ``sketch_k=`` attaches a streaming
rank sketch (:mod:`repro.obs.sketch`) to every histogram so deep tails
(p999/p9999) survive without retaining all samples.  Untimestamped
mutations still update the run aggregates only, so existing call
sites are unaffected.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

from repro.obs.sketch import QuantileSketch
from repro.obs.timeseries import (
    WindowedCounter,
    WindowedGauge,
    WindowedLatency,
    build_document,
    export_document,
)


def _default_bounds_ns() -> List[float]:
    """1-2-5 series from 100 ns to 10 s — wide enough for any stage
    time the simulator produces at either end."""
    bounds: List[float] = []
    decade = 100.0
    while decade <= 1e10:
        for mantissa in (1.0, 2.0, 5.0):
            bounds.append(decade * mantissa)
        decade *= 10.0
    return bounds


#: Default histogram boundaries (ns), shared by every latency metric.
DEFAULT_BOUNDS_NS: Sequence[float] = tuple(_default_bounds_ns())


class Counter:
    """Monotonic named counter.

    With a ``window_ns`` (set by a windowed registry), increments that
    carry a ``t_ns=`` stamp also accumulate into per-window deltas.
    """

    __slots__ = ("name", "value", "window_ns", "series")

    def __init__(self, name: str, window_ns: Optional[float] = None) -> None:
        self.name = name
        self.value = 0
        self.window_ns = window_ns
        self.series: Optional[WindowedCounter] = None

    def inc(self, amount: int = 1, t_ns: Optional[float] = None) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount
        if t_ns is not None and self.window_ns is not None:
            if self.series is None:
                self.series = WindowedCounter(self.name, self.window_ns)
            self.series.record(t_ns, amount)


class Gauge:
    """Last-write-wins named value.

    With a ``window_ns``, timestamped sets also track per-window
    last/min/max.
    """

    __slots__ = ("name", "value", "window_ns", "series")

    def __init__(self, name: str, window_ns: Optional[float] = None) -> None:
        self.name = name
        self.value = 0.0
        self.window_ns = window_ns
        self.series: Optional[WindowedGauge] = None

    def set(self, value: float, t_ns: Optional[float] = None) -> None:
        self.value = float(value)
        if t_ns is not None and self.window_ns is not None:
            if self.series is None:
                self.series = WindowedGauge(self.name, self.window_ns)
            self.series.record(t_ns, self.value)


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated quantiles.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]`` (bucket 0 starts
    at 0), plus one overflow bucket above ``bounds[-1]``.  The overflow
    bucket tracks its own observed minimum so high quantiles that land
    in it interpolate over the *observed* value range rather than from
    the top bucket edge — a saturated top bucket reports real tails,
    not the bucket boundary.

    With a ``window_ns``, timestamped observations also feed a
    per-window series; with a ``sketch_k``, every observation feeds a
    deterministic rank sketch for deep tails (p999/p9999).
    """

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        window_ns: Optional[float] = None,
        sketch_k: Optional[int] = None,
    ) -> None:
        self.name = name
        chosen = list(DEFAULT_BOUNDS_NS if bounds is None else bounds)
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if chosen != sorted(chosen) or len(set(chosen)) != len(chosen):
            raise ValueError("bucket bounds must be strictly increasing")
        if chosen[0] <= 0:
            raise ValueError("bucket bounds must be positive")
        self.bounds: List[float] = chosen
        self.counts: List[int] = [0] * (len(chosen) + 1)
        self.count = 0
        self.total_ns = 0.0
        self.min_ns = float("inf")
        self.max_ns = 0.0
        #: Smallest value seen in the overflow bucket (> bounds[-1]).
        self.overflow_min_ns = float("inf")
        self.window_ns = window_ns
        self.series: Optional[WindowedLatency] = None
        self.sketch: Optional[QuantileSketch] = (
            QuantileSketch(sketch_k) if sketch_k else None
        )

    def _window_histogram(self) -> "LatencyHistogram":
        """A plain (unwindowed, unsketched) clone for one window."""
        return LatencyHistogram(self.name, self.bounds)

    def observe(self, value_ns: float, t_ns: Optional[float] = None) -> None:
        """Record one latency observation (simulated ns, >= 0).

        ``t_ns`` locates the observation on the simulated clock for
        the windowed series (typically the completion instant of the
        request it measures); omitted, only the run aggregate updates.
        """
        if value_ns < 0:
            raise ValueError(f"negative latency {value_ns}")
        index = bisect_left(self.bounds, value_ns)
        self.counts[index] += 1
        self.count += 1
        self.total_ns += value_ns
        if value_ns < self.min_ns:
            self.min_ns = value_ns
        if value_ns > self.max_ns:
            self.max_ns = value_ns
        if index == len(self.bounds) and value_ns < self.overflow_min_ns:
            self.overflow_min_ns = value_ns
        if self.sketch is not None:
            self.sketch.insert(value_ns)
        if t_ns is not None and self.window_ns is not None:
            if self.series is None:
                self.series = WindowedLatency(
                    self.name, self.window_ns, self._window_histogram
                )
            self.series.record(t_ns, value_ns)

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0-100) by in-bucket interpolation.

        Returns 0.0 for an empty histogram.  The first and last
        non-empty buckets are tightened to the observed min/max, so a
        distribution confined to one bucket reports exact quantiles.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        if target <= 0:
            return self.min_ns
        first_nonempty = next(
            i for i, c in enumerate(self.counts) if c
        )
        last_nonempty = max(i for i, c in enumerate(self.counts) if c)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if index < len(self.bounds):
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = self.bounds[index]
                else:
                    # Overflow bucket: its edges are the *observed*
                    # extremes, never the top bucket boundary — see
                    # the class docstring (top-bucket clipping fix).
                    lower = self.overflow_min_ns
                    upper = self.max_ns
                if index == first_nonempty:
                    lower = max(lower, self.min_ns)
                if index == last_nonempty:
                    upper = min(upper, self.max_ns)
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.max_ns  # unreachable; defensive

    def summary(self) -> dict:
        """The export payload: count, mean, quantiles, extremes."""
        return {
            "count": self.count,
            "mean_ns": self.mean_ns,
            "p50_ns": self.percentile(50.0),
            "p95_ns": self.percentile(95.0),
            "p99_ns": self.percentile(99.0),
            "min_ns": self.min_ns if self.count else 0.0,
            "max_ns": self.max_ns,
        }

    def as_dict(self) -> dict:
        data = self.summary()
        data["buckets"] = [
            {"le_ns": bound, "count": count}
            for bound, count in zip(self.bounds, self.counts)
            if count
        ]
        overflow = self.counts[-1]
        if overflow:
            data["buckets"].append({"le_ns": None, "count": overflow})
        if self.sketch is not None:
            data["sketch"] = self.sketch.as_dict()
        return data


class MetricsRegistry:
    """Named metrics, get-or-create, exported as one JSON document.

    ``window_ns`` makes the registry *windowed*: timestamped
    mutations additionally roll into fixed-width simulated-clock
    windows, exported via :meth:`export_timeseries`.  ``sketch_k``
    attaches a deterministic rank sketch (deep tails) to every
    histogram.  Both default off, leaving existing exports unchanged.
    """

    def __init__(
        self,
        window_ns: Optional[float] = None,
        sketch_k: Optional[int] = None,
    ) -> None:
        if window_ns is not None and window_ns <= 0:
            raise ValueError("window width must be positive")
        if sketch_k is not None and sketch_k < 2:
            raise ValueError("sketch capacity k must be >= 2")
        self.window_ns = window_ns
        self.sketch_k = sketch_k
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._snapshots: Dict[str, dict] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(
                name, window_ns=self.window_ns
            )
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, window_ns=self.window_ns)
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> LatencyHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram(
                name,
                bounds,
                window_ns=self.window_ns,
                sketch_k=self.sketch_k,
            )
        return histogram

    # ------------------------------------------------------------------
    # Windowed series access (see repro.obs.timeseries)
    # ------------------------------------------------------------------
    def series(self, name: str):
        """The windowed series behind metric ``name`` (or None if the
        metric doesn't exist or never saw a timestamped mutation)."""
        for collection in (self._counters, self._gauges, self._histograms):
            metric = collection.get(name)
            if metric is not None:
                return metric.series
        return None

    def series_dict(self) -> dict:
        """Every populated windowed series, keyed by metric name."""
        out: Dict[str, dict] = {}
        for collection in (self._counters, self._gauges, self._histograms):
            for name, metric in collection.items():
                if metric.series is not None:
                    out[name] = metric.series.as_dict()
        return dict(sorted(out.items()))

    def timeseries_dict(self, profiler=None, slo=None) -> dict:
        """The ``rmssd-timeseries/v1`` document (requires
        ``window_ns``); see :func:`repro.obs.timeseries.build_document`."""
        return build_document(metrics=self, profiler=profiler, slo=slo)

    def export_timeseries(self, path: str, profiler=None, slo=None) -> str:
        """Write the timeseries document; returns the path."""
        return export_document(self.timeseries_dict(profiler, slo), path)

    def absorb(self, name: str, payload: dict) -> None:
        """Attach a point-in-time snapshot dict (e.g. I/O counters)."""
        self._snapshots[name] = dict(payload)

    def absorb_io(self, stats, name: str = "io") -> None:
        """Absorb an :class:`~repro.ssd.stats.IOStatistics` (or one of
        its frozen snapshots) under ``snapshots[name]``."""
        self.absorb(name, stats.as_dict())

    def as_dict(self) -> dict:
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
            "snapshots": dict(sorted(self._snapshots.items())),
        }

    def export_json(self, path: str) -> str:
        """Write the registry as ``metrics.json``; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def export_prometheus(self, path: str) -> str:
        """Write a Prometheus text-exposition snapshot; returns the
        path.  See :func:`render_prometheus`."""
        with open(path, "w") as handle:
            handle.write(render_prometheus(self))
        return path


# ---------------------------------------------------------------------------
# Prometheus text exposition (snapshot of the run aggregates)
# ---------------------------------------------------------------------------
def _prometheus_name(name: str) -> str:
    """Sanitize a metric name into the Prometheus charset, prefixed
    ``rmssd_`` (dots and dashes become underscores)."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"rmssd_{sanitized}"


def _prometheus_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text-exposition format.

    Counters export as ``<name>_total``, histograms as cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count`` — the standard
    scrape shape, so the snapshot loads into any Prometheus-compatible
    toolchain.  Output is sorted and deterministic.
    """
    lines: List[str] = []
    for name, counter in sorted(registry._counters.items()):
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_prometheus_value(counter.value)}")
    for name, gauge in sorted(registry._gauges.items()):
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prometheus_value(gauge.value)}")
    for name, histogram in sorted(registry._histograms.items()):
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prometheus_value(bound)}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {histogram.count}'
        )
        lines.append(f"{metric}_sum {_prometheus_value(histogram.total_ns)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"
