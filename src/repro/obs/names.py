"""Central catalogue of instrumentation names.

Every span, profiler-resource, metric, and DES server/resource name in
the simulator comes from this module — call sites never pass bare
string literals to the tracer/metrics/profiler APIs (lint rule R12
enforces this for ``src/repro``).  A single catalogue means:

* a typo in an instrumentation name is an ``AttributeError`` at import
  time, not a silently diverging trace;
* the DES/fast-path parity analysis (lint rule R9) can resolve the
  names both execution paths emit and diff them statically;
* names that stop being emitted show up as *orphans* instead of
  lingering in dashboards and ``tools/check_trace.py`` invocations.

Adding a name: define the constant here (grouped with its kin), use it
from the emitting call site, and keep emission mirrored between
``lookup_engine`` and ``fastpath`` when it lives on the lookup path —
see ``docs/correctness.md`` ("Whole-program rules").

Names with a per-instance component (channels, dies, FC layers) are
built by the factory helpers at the bottom so the *shape* of every
dynamic name is still catalogued.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Span names (Tracer.add_span) — the span taxonomy of docs/observability.md
# ---------------------------------------------------------------------------
#: Device batch root span (host track group).
SPAN_REQUEST = "request"
#: Host -> device descriptor/input DMA at the batch's front edge.
SPAN_IO_SEND = "io_send"
#: Device -> host status poll + result DMA at the batch's back edge.
SPAN_IO_RECV = "io_recv"
#: One batched embedding lookup (emb track group).
SPAN_LOOKUP_BATCH = "lookup_batch"
#: EV Translator pass (zero-width: translation is metadata-only).
SPAN_TRANSLATE = "translate"
#: Flash phase of a batched lookup (FTL + channels + dies).
SPAN_FLASH_READ = "flash_read"
#: Controller-DRAM vector-cache fetch overlapping the flash phase;
#: doubles as the profiler stream name and its ``kind``.
VCACHE = "vcache"
#: EV Sum fadd-array drain; doubles as the profiler stream name.
EV_SUM = "ev_sum"
#: Shared FTL MUX stage span (ssd.ftl track); doubles as the Server
#: ``kind`` of the FTL MUX.
FTL = "ftl"
#: Bottom/top FC chains (mlp track group).
SPAN_BOTTOM_MLP = "bottom_mlp"
SPAN_TOP_MLP = "top_mlp"
#: Pipeline-model serving spans (serve.req / serve.bot lanes).
SPAN_BATCH = "batch"
SPAN_QUEUE = "queue"
#: Host-runtime pipeline spans (host.send / host.device / host.recv).
SPAN_HOST_SEND = "send"
SPAN_HOST_DEVICE = "device"
SPAN_HOST_RECV = "recv"

# ---------------------------------------------------------------------------
# Pipeline stage names — Server names in the serving models *and* the
# matching span names on the serve.req track.  Both pipeline paths
# (the DES in repro.core.pipeline_sim and the closed-form replay in
# repro.core.pipeline_fast) record profiler triples under these names;
# the R9 serving-parity lint compares the two emission sets.
# ---------------------------------------------------------------------------
STAGE_EMB = "emb"
STAGE_BOT = "bot"
STAGE_TOP = "top"

# ---------------------------------------------------------------------------
# Profiler stream names (record_busy/record_service) and their kinds
# ---------------------------------------------------------------------------
#: Host-side DMA engine occupancy (send + recv edges of a batch).
RES_HOST_IO = "host.io"
#: The conventional design's single shared 16x16 GEMM kernel.
RES_GEMM_NAIVE = "gemm16x16"
#: Shared FTL MUX Server between the block and EV paths.
SERVER_FTL_MUX = "ftl-mux"

KIND_HOST_IO = "host-io"
KIND_MLP = "mlp"
KIND_EV_SUM = "ev-sum"
KIND_CHANNEL_BUS = "channel-bus"
KIND_DIE = "die"

# ---------------------------------------------------------------------------
# Metric names (MetricsRegistry counters/gauges/histograms)
# ---------------------------------------------------------------------------
METRIC_RUN_QPS = "run.qps"
METRIC_RUN_INFERENCES = "run.inferences"
METRIC_DEVICE_BATCHES = "device.batches"
METRIC_DEVICE_INFERENCES = "device.inferences"
METRIC_REQUEST_LATENCY = "request_latency_ns"
METRIC_STAGE_EMB = "stage.emb_ns"
METRIC_STAGE_BOT = "stage.bot_ns"
METRIC_STAGE_TOP = "stage.top_ns"
METRIC_STAGE_IO = "stage.io_ns"
METRIC_VCACHE_HITS = "vcache.hits"
METRIC_VCACHE_MISSES = "vcache.misses"
METRIC_VCACHE_EVICTIONS = "vcache.evictions"
METRIC_VCACHE_HIT_RATIO = "vcache.hit_ratio"
METRIC_SERVING_LATENCY = "serving.latency_ns"
METRIC_SERVING_QUEUE = "serving.queue_ns"
METRIC_SERVING_BATCHES = "serving.batches"
#: Cluster-serving metrics (repro.host.cluster_serving): active replica
#: count sampled at t=0 and at every scaling event, and the running
#: count of autoscaler actions.
METRIC_CLUSTER_REPLICAS = "cluster.replicas"
METRIC_CLUSTER_SCALE_EVENTS = "cluster.scale_events"

# ---------------------------------------------------------------------------
# SLO objective and alert names (repro.obs.slo) — objective names are
# fed to SLOEngine.objective (R12-checked like any emission name);
# alert events carry the type/severity constants below.
# ---------------------------------------------------------------------------
#: The serving tail-latency objective declared by ``rmssd-repro report``
#: and the SLA tooling: ``p<q>(serving.latency_ns) < threshold``.
SLO_SERVING_TAIL = "serving-tail-latency"
#: Structured alert event type emitted by the burn-rate engine.
ALERT_BURN_RATE = "burn-rate"
#: Alert severities of the default fast/slow burn-rate rule pair.
ALERT_PAGE = "page"
ALERT_TICKET = "ticket"
#: Scaling-event actions emitted by the autoscaler (repro.host.autoscale).
EVENT_SCALE_UP = "scale-up"
EVENT_SCALE_DOWN = "scale-down"

# ---------------------------------------------------------------------------
# Critical-path attribution (repro.obs.critpath) — the per-request
# breakdown stream both pipeline paths feed into a CritPathCollector;
# the R9 EXPLAIN_PARITY spec diffs the DES and fast feeds.
# ---------------------------------------------------------------------------
CRITPATH_REQUESTS = "critpath.requests"


# ---------------------------------------------------------------------------
# Factory helpers for per-instance names
# ---------------------------------------------------------------------------
def channel_name(index: int) -> str:
    """Flash channel ``index`` (also its span name and track suffix)."""
    return f"channel{index}"


def channel_bus_name(index: int) -> str:
    """The shared bus Server of flash channel ``index``."""
    return f"channel{index}-bus"


def channel_die_name(index: int, die: int) -> str:
    """Die mutex Resource ``die`` of flash channel ``index``."""
    return f"channel{index}-die{die}"


def fc_name(layer_name: str) -> str:
    """One FC layer's span/profiler name (``fc:<layer>``)."""
    return f"fc:{layer_name}"
