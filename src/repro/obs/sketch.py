"""Deterministic streaming quantile sketch (KLL-style compactors).

The windowed serving series (:mod:`repro.obs.timeseries`) answer
"what was p99 in *this* window"; this module answers "what are the
deep tails of the *whole* stream" — p999/p9999 — without retaining
every sample.  A :class:`QuantileSketch` keeps a ladder of compactor
buffers: level ``h`` holds items that each represent ``2**h``
original observations.  When a level fills past its capacity ``k``,
its buffer is sorted and every second item is promoted one level up
(weight doubles), halving the footprint.

Two properties matter here more than asymptotic optimality:

* **Determinism.**  Classic KLL flips a coin per compaction to decide
  whether the even- or odd-indexed survivors are kept.  That would
  poison the repo's byte-identical-export contracts, so the schedule
  here is *deterministic*: each level alternates parity, starting
  with the even offset.  Same stream -> same sketch -> same bytes.
* **A checkable error contract.**  :meth:`rank_error_bound` returns a
  bound ``B`` (in ranks) such that for any query the true rank of the
  returned value is within ``B`` of the target rank.  The bound is
  computed from what actually happened — levels that never compacted
  contribute nothing — so a stream shorter than ``k`` is *exact*
  (``B == 0``).  ``tests/test_obs_sketch.py`` property-tests the
  contract against exact sorted ranks.

Why the bound holds: one compaction at level ``h`` keeps either the
even- or odd-indexed half of the sorted buffer.  For any threshold
``x``, the estimated rank (sum of surviving weights ``<= x``) moves by
at most ``2**h`` — upward for the even offset, downward for the odd.
Because parities strictly alternate per level, the running error at
level ``h`` stays within ``±2**h`` no matter how many compactions run
(partial sums of alternating terms each in ``[0, 2**h]``).  Summing
over compacted levels ``h < H`` gives ``B_levels < 2**H``; a query can
additionally miss by the weight of the item it lands on (``<= 2**H``).
Since level ``H`` only exists once ``>= k/2`` items were promoted into
it, ``2**H <= 4N/k`` — the relative rank error is ``O(1/k)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: Default compactor capacity: relative rank error <= ~8/k = 0.2%,
#: comfortably inside p999 resolution for streams up to ~1e6 samples
#: while holding O(k log(N/k)) floats.
DEFAULT_K = 4096


class QuantileSketch:
    """Streaming rank sketch with a deterministic compaction schedule.

    ``k`` is the per-level compactor capacity; memory is
    ``O(k log(n/k))`` floats and the rank-error bound scales as
    ``O(n/k)`` (see the module docstring for the exact accounting).
    """

    __slots__ = ("k", "n", "_levels", "_parity", "_compactions")

    def __init__(self, k: int = DEFAULT_K) -> None:
        if k < 2:
            raise ValueError("sketch capacity k must be >= 2")
        self.k = int(k)
        #: Total observations inserted (sum of retained weights).
        self.n = 0
        self._levels: List[List[float]] = [[]]
        #: Next compaction offset per level (0 keeps even indices, 1
        #: keeps odd) — alternated deterministically instead of the
        #: classic coin flip.
        self._parity: List[int] = [0]
        #: Compactions performed per level (drives the error bound).
        self._compactions: List[int] = [0]

    def insert(self, value: float) -> None:
        """Insert one observation (weight 1)."""
        self._levels[0].append(float(value))
        self.n += 1
        if len(self._levels[0]) >= self.k:
            self._compress()

    def extend(self, values) -> None:
        for value in values:
            self.insert(value)

    def _compress(self) -> None:
        """Compact every over-full level, bottom-up."""
        level = 0
        while level < len(self._levels):
            buffer = self._levels[level]
            if len(buffer) < self.k:
                level += 1
                continue
            buffer.sort()
            # Compact the even-length prefix; an odd leftover stays.
            pairs = len(buffer) // 2
            offset = self._parity[level]
            self._parity[level] ^= 1
            self._compactions[level] += 1
            survivors = buffer[offset : 2 * pairs : 2]
            leftover = buffer[2 * pairs :]
            if level + 1 == len(self._levels):
                self._levels.append([])
                self._parity.append(0)
                self._compactions.append(0)
            self._levels[level + 1].extend(survivors)
            self._levels[level] = leftover
            level += 1

    # -- queries ---------------------------------------------------------

    def _weighted_items(self) -> List[Tuple[float, int]]:
        items: List[Tuple[float, int]] = []
        for level, buffer in enumerate(self._levels):
            weight = 1 << level
            items.extend((value, weight) for value in buffer)
        items.sort()
        return items

    def quantile(self, q: float) -> float:
        """The q-th percentile (0-100): smallest retained value whose
        cumulative (estimated) rank reaches the target."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.n == 0:
            return 0.0
        items = self._weighted_items()
        target = q / 100.0 * self.n
        cumulative = 0
        for value, weight in items:
            cumulative += weight
            if cumulative >= target:
                return value
        return items[-1][0]

    def rank_of(self, value: float) -> int:
        """Estimated rank of ``value``: total weight of retained items
        ``<= value``."""
        return sum(w for v, w in self._weighted_items() if v <= value)

    def rank_error_bound(self) -> int:
        """Worst-case |true rank - target rank| for any quantile query.

        Sum of ``2**h`` over every level that has compacted at least
        once (the alternating-parity drift bound), plus the coarsest
        retained weight (query granularity).  0 when nothing has been
        compacted — the sketch still holds every sample exactly.
        """
        drift = sum(
            1 << level
            for level, compactions in enumerate(self._compactions)
            if compactions
        )
        if drift == 0:
            return 0
        top_weight = max(
            (1 << level for level, buf in enumerate(self._levels) if buf),
            default=1,
        )
        return drift + top_weight

    @property
    def retained(self) -> int:
        """Items currently held (the memory footprint in floats)."""
        return sum(len(buffer) for buffer in self._levels)

    def as_dict(self) -> dict:
        """Export payload: tail quantiles plus the error contract."""
        return {
            "k": self.k,
            "n": self.n,
            "retained": self.retained,
            "rank_error_bound": self.rank_error_bound(),
            "p99_ns": self.quantile(99.0),
            "p999_ns": self.quantile(99.9),
            "p9999_ns": self.quantile(99.99),
            "max_ns": self.quantile(100.0),
        }


def resolve_sketch(k: Optional[int]) -> Optional[QuantileSketch]:
    """``None`` disables sketching; a capacity builds one."""
    return None if k is None else QuantileSketch(k)
