"""Per-request critical-path attribution and tail exemplars.

The SLO engine (repro.obs.slo) says *that* a window blew its tail
objective and the autoscaler (repro.host.autoscale) reacts — but
neither can say *why*: which concrete requests landed in the tail, and
where each one spent its time.  This module closes that gap.  From the
:class:`~repro.core.pipeline_sim.BatchRecord` stage triples every
pipeline run already produces, it decomposes each request into

* ``dispatch_wait_ns`` — admission delay before the request reached a
  replica queue (0 today: the dispatch plan assigns at arrival);
* ``queue_ns`` — wait for the critical branch's stage server plus the
  wait for the top stage after the branch finished;
* ``emb_ns`` / ``bot_ns`` — service time of the *critical* branch of
  the parallel embedding∥bottom section (the other reads 0.0, its
  service was hidden);
* ``top_ns`` — top-MLP service time,

with the paper's section IV-C tie-break (equal finish times blame the
embedding stage, mirroring the profiler's bottleneck report).

**Conservation is exact by construction**: ``latency_ns`` is defined
as the component sum evaluated in one fixed order (see
:func:`component_sum`), not as the telescoped ``top_done - arrival``
difference — float addition is not associative, so summing raw
timestamp differences in any other order could miss the end-to-end
latency by an ulp.  The builder still cross-checks the sum against the
record's own latency within a relative tolerance, so a mis-stamped
record cannot hide behind the definition.

Determinism/parity: breakdowns are plain float arithmetic on the
record timestamps, which are bitwise-equal between the DES and the
closed-form replay, so the exported ``rmssd-explain/v1`` documents are
**byte-identical** across paths (asserted by ``cmp`` in
``tools/check.sh`` and by ``tests/test_explain_equivalence.py``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import percentile

#: Version tag of the explain export document.
EXPLAIN_SCHEMA = "rmssd-explain/v1"

#: Breakdown components, in the fixed summation order that *defines*
#: ``latency_ns``.  Validators (tools/check_trace.py --explain) must
#: recompute the sum in exactly this order.
COMPONENTS = ("dispatch_wait_ns", "queue_ns", "emb_ns", "bot_ns", "top_ns")

#: Relative slack for the cross-check of the component sum against the
#: record's raw ``top_done - arrival`` latency (the sum is exact by
#: definition; the raw difference telescopes in a different order).
CONSERVATION_RTOL = 1e-9

#: Default SLO quantiles attributed by :func:`build_explain_document`.
DEFAULT_QUANTILES = (50.0, 95.0, 99.0)


def component_sum(breakdown: Dict[str, float]) -> float:
    """The breakdown's latency: components added in the fixed order.

    ``((((dispatch_wait + queue) + emb) + bot) + top)`` — every
    producer and every validator uses this exact association, so
    "components sum to latency" is an equality, not a tolerance.
    """
    total = 0.0
    for key in COMPONENTS:
        total = total + breakdown[key]
    return total


def request_breakdown(record, replica: int = 0) -> Dict[str, float]:
    """Critical-path decomposition of one :class:`BatchRecord`.

    The embedding and bottom-MLP stages run in parallel; only the
    branch that finished last (ties -> embedding, the profiler's
    tie-break) is on the critical path, so its wait and service are
    charged and the other branch's service reads 0.0.
    """
    arrival = record.arrival_ns
    if record.emb_done_ns >= record.bot_done_ns:
        stage = "emb"
        branch_start = record.emb_start_ns
        branch_done = record.emb_done_ns
        emb_ns = record.emb_done_ns - record.emb_start_ns
        bot_ns = 0.0
    else:
        stage = "bot"
        branch_start = record.bot_start_ns
        branch_done = record.bot_done_ns
        emb_ns = 0.0
        bot_ns = record.bot_done_ns - record.bot_start_ns
    breakdown = {
        "arrival_ns": arrival,
        "dispatch_wait_ns": 0.0,
        "queue_ns": (branch_start - arrival) + (record.top_start_ns - branch_done),
        "emb_ns": emb_ns,
        "bot_ns": bot_ns,
        "top_ns": record.top_done_ns - record.top_start_ns,
        "critical_stage": stage,
        "replica": int(replica),
        "batch": int(record.index),
    }
    latency = component_sum(breakdown)
    raw = record.top_done_ns - record.arrival_ns
    if abs(latency - raw) > CONSERVATION_RTOL * max(abs(raw), 1.0):
        raise ValueError(
            f"batch {record.index}: components sum to {latency} ns but the "
            f"record's end-to-end latency is {raw} ns"
        )
    breakdown["latency_ns"] = latency
    return breakdown


class CritPathCollector:
    """Accumulates per-request breakdowns from pipeline runs.

    Both pipeline paths feed it through
    :meth:`~repro.core.pipeline_sim.PipelineSimulator` (the R9
    ``EXPLAIN_PARITY`` roots ``_explain_des`` / ``_explain_fast``); the
    cluster simulator sets the replica context before each replica's
    replay so breakdowns carry the serving replica id.
    """

    def __init__(self) -> None:
        self.requests: List[Dict[str, float]] = []
        self.stream = ""
        self._replica = 0

    def __len__(self) -> int:
        return len(self.requests)

    def set_replica(self, replica: int) -> None:
        """Replica id stamped on subsequently recorded requests."""
        self._replica = int(replica)

    def reset(self) -> None:
        """Drop accumulated requests (the replica context survives)."""
        self.requests = []

    def record_requests(self, name: str, records: Sequence) -> None:
        """Record one run's batch records under catalogue name ``name``."""
        self.stream = name
        replica = self._replica
        for record in records:
            self.requests.append(request_breakdown(record, replica))


def canonical_order(requests: Sequence[dict]) -> List[dict]:
    """Requests sorted by (arrival, replica, batch) — the document
    order, identical on both paths ((replica, batch) is unique)."""
    return sorted(
        requests,
        key=lambda r: (r["arrival_ns"], r["replica"], r["batch"]),
    )


def tail_exemplars(
    requests: Sequence[dict], threshold_ns: float, top_k: int
) -> List[dict]:
    """The ``top_k`` slowest requests at or above ``threshold_ns``.

    Deterministic tie-breaking: equal latencies order by (arrival,
    replica, batch), so all-identical-latency runs still yield a
    stable exemplar list.
    """
    tail = [r for r in requests if r["latency_ns"] >= threshold_ns]
    tail.sort(
        key=lambda r: (-r["latency_ns"], r["arrival_ns"], r["replica"], r["batch"])
    )
    return tail[: max(0, int(top_k))]


def _tail_summary(tail: Sequence[dict]) -> dict:
    """Blame shares and component means over one quantile's tail."""
    sums = {key: 0.0 for key in COMPONENTS}
    latency_sum = 0.0
    queue_by_replica: Dict[str, float] = {}
    for request in tail:
        for key in COMPONENTS:
            sums[key] += request[key]
        latency_sum += request["latency_ns"]
        rid = str(request["replica"])
        queue_by_replica[rid] = queue_by_replica.get(rid, 0.0) + request["queue_ns"]
    count = len(tail)
    queue_sum = sums["queue_ns"]
    return {
        "count": count,
        "mean_ns": {
            **{key: sums[key] / count for key in COMPONENTS},
            "latency_ns": latency_sum / count,
        },
        "blame": {
            key: (sums[key] / latency_sum if latency_sum > 0 else 0.0)
            for key in COMPONENTS
        },
        "queue_share_by_replica": {
            rid: (share / queue_sum if queue_sum > 0 else 0.0)
            for rid, share in sorted(queue_by_replica.items())
        },
    }


def build_explain_document(
    requests: Sequence[dict],
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    top_k: int = 3,
    meta: Optional[dict] = None,
    include_requests: bool = True,
) -> dict:
    """Assemble the ``rmssd-explain/v1`` document.

    Per SLO quantile: the latency value, the tail (requests at or
    above it) with blame shares per component and per-replica queue
    shares, and the ``top_k`` concrete exemplar requests.  Empty
    request lists export an empty document (count 0, no quantiles)
    rather than raising — an idle window is an answer, not an error.
    """
    ordered = canonical_order(requests)
    latencies = sorted(r["latency_ns"] for r in ordered)
    entries = []
    if ordered:
        for q in quantiles:
            value = percentile(latencies, q, presorted=True)
            tail = tail_exemplars(ordered, value, top_k=len(ordered))
            entries.append(
                {
                    "q": float(q),
                    "latency_ns": value,
                    "tail": _tail_summary(tail),
                    "exemplars": tail[: max(0, int(top_k))],
                }
            )
    document: dict = {
        "schema": EXPLAIN_SCHEMA,
        "meta": dict(meta) if meta else {},
        "components": list(COMPONENTS),
        "quantiles": entries,
        "totals": _totals(ordered),
    }
    if include_requests:
        document["requests"] = {"count": len(ordered), "records": ordered}
    else:
        document["requests"] = {"count": len(ordered)}
    return document


def _totals(ordered: Sequence[dict]) -> dict:
    if not ordered:
        return {"count": 0, "mean_latency_ns": 0.0, "blame": {}}
    summary = _tail_summary(ordered)
    return {
        "count": summary["count"],
        "mean_latency_ns": summary["mean_ns"]["latency_ns"],
        "blame": summary["blame"],
    }


def export_explain_document(document: dict, path: str) -> str:
    """Write an explain document as sorted, indented JSON.

    Same serialization as the timeseries export: sorted keys and a
    trailing newline, so byte-identity across the DES and fast paths
    reduces to value equality.
    """
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
