"""Cross-run regression explainer over exported observability JSON.

``tools/bench_compare.py`` can tell you *that* a gate failed ("p99
regressed"); this module tells you *where the time went*: it diffs two
exported documents of the same schema and attributes the latency/QPS
delta to stages, replicas, or windows — "p99 +3.1 ms: 92% queue on
replica 2" instead of a bare number.

Three schemas are understood, dispatched on the ``schema`` key:

* ``rmssd-explain/v1`` (:mod:`repro.obs.critpath`) — per-quantile
  component attribution from the tail means, plus the replica carrying
  the largest queue share;
* ``rmssd-profile/v1`` — utilization movers and bottleneck-stage
  changes;
* ``rmssd-timeseries/v1`` — the worst-moved window of the serving
  latency series and counter-total drifts.

Everything is pure dict arithmetic over already-exported JSON: no
simulator imports, so ``tools/bench_compare.py`` can use it with only
``src`` on the path and degrade gracefully without it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.critpath import COMPONENTS, EXPLAIN_SCHEMA

PROFILE_SCHEMA = "rmssd-profile/v1"
TIMESERIES_SCHEMA = "rmssd-timeseries/v1"

#: Serving-latency series attributed by the timeseries differ.
_LATENCY_SERIES = "serving.latency_ns"

#: Utilization movers / attribution entries listed per diff.
_TOP_MOVERS = 3


def diff_documents(baseline: dict, fresh: dict) -> dict:
    """Structured diff of two exported documents of the same schema."""
    base_schema = baseline.get("schema")
    fresh_schema = fresh.get("schema")
    if base_schema != fresh_schema:
        raise ValueError(
            f"cannot diff schemas {base_schema!r} and {fresh_schema!r}"
        )
    if base_schema == EXPLAIN_SCHEMA:
        return _diff_explain(baseline, fresh)
    if base_schema == PROFILE_SCHEMA:
        return _diff_profile(baseline, fresh)
    if base_schema == TIMESERIES_SCHEMA:
        return _diff_timeseries(baseline, fresh)
    raise ValueError(f"cannot explain schema {base_schema!r}")


# ---------------------------------------------------------------------------
# rmssd-explain/v1
# ---------------------------------------------------------------------------
def _diff_explain(baseline: dict, fresh: dict) -> dict:
    base_q = {entry["q"]: entry for entry in baseline.get("quantiles", [])}
    quantiles = []
    for entry in fresh.get("quantiles", []):
        base = base_q.get(entry["q"])
        if base is None:
            continue
        quantiles.append(_diff_quantile(base, entry))
    return {
        "kind": "explain",
        "count_delta": (
            fresh.get("requests", {}).get("count", 0)
            - baseline.get("requests", {}).get("count", 0)
        ),
        "quantiles": quantiles,
    }


def _diff_quantile(base: dict, fresh: dict) -> dict:
    delta_ns = fresh["latency_ns"] - base["latency_ns"]
    base_mean = base["tail"]["mean_ns"]
    fresh_mean = fresh["tail"]["mean_ns"]
    tail_delta = fresh_mean["latency_ns"] - base_mean["latency_ns"]
    attribution = []
    for component in COMPONENTS:
        component_delta = fresh_mean[component] - base_mean[component]
        attribution.append(
            {
                "component": component,
                "delta_ns": component_delta,
                "share": component_delta / tail_delta if tail_delta else 0.0,
            }
        )
    attribution.sort(key=lambda a: (-abs(a["delta_ns"]), a["component"]))
    return {
        "q": fresh["q"],
        "base_ns": base["latency_ns"],
        "fresh_ns": fresh["latency_ns"],
        "delta_ns": delta_ns,
        "tail_mean_delta_ns": tail_delta,
        "attribution": attribution,
        "worst_replica": _worst_replica(fresh["tail"]),
    }


def _worst_replica(tail: dict) -> Optional[dict]:
    shares: Dict[str, float] = tail.get("queue_share_by_replica", {})
    if not shares:
        return None
    replica = max(sorted(shares), key=lambda rid: shares[rid])
    return {"replica": replica, "queue_share": shares[replica]}


# ---------------------------------------------------------------------------
# rmssd-profile/v1
# ---------------------------------------------------------------------------
def _diff_profile(baseline: dict, fresh: dict) -> dict:
    base_resources = baseline.get("resources", {})
    fresh_resources = fresh.get("resources", {})
    movers = []
    for name in sorted(set(base_resources) & set(fresh_resources)):
        base_util = base_resources[name].get("utilization", 0.0)
        fresh_util = fresh_resources[name].get("utilization", 0.0)
        movers.append(
            {
                "resource": name,
                "base_utilization": base_util,
                "fresh_utilization": fresh_util,
                "delta": fresh_util - base_util,
            }
        )
    movers.sort(key=lambda m: (-abs(m["delta"]), m["resource"]))
    base_stage = baseline.get("bottleneck", {}).get("bottleneck_stage")
    fresh_stage = fresh.get("bottleneck", {}).get("bottleneck_stage")
    return {
        "kind": "profile",
        "bottleneck": {"base": base_stage, "fresh": fresh_stage},
        "movers": movers[:_TOP_MOVERS],
    }


# ---------------------------------------------------------------------------
# rmssd-timeseries/v1
# ---------------------------------------------------------------------------
def _diff_timeseries(baseline: dict, fresh: dict) -> dict:
    base_series = baseline.get("series", {})
    fresh_series = fresh.get("series", {})
    worst = None
    base_latency = base_series.get(_LATENCY_SERIES)
    fresh_latency = fresh_series.get(_LATENCY_SERIES)
    if base_latency and fresh_latency:
        base_windows = {
            w["index"]: w for w in base_latency.get("windows", [])
        }
        for window in fresh_latency.get("windows", []):
            base_window = base_windows.get(window["index"])
            if base_window is None:
                continue
            delta_ns = window.get("p99_ns", 0.0) - base_window.get("p99_ns", 0.0)
            if worst is None or delta_ns > worst["delta_ns"]:
                worst = {
                    "index": window["index"],
                    "start_ns": window.get("start_ns", 0.0),
                    "base_p99_ns": base_window.get("p99_ns", 0.0),
                    "fresh_p99_ns": window.get("p99_ns", 0.0),
                    "delta_ns": delta_ns,
                }
    counters = []
    for name in sorted(set(base_series) & set(fresh_series)):
        if base_series[name].get("kind") != "counter":
            continue
        delta = fresh_series[name].get("total", 0) - base_series[name].get(
            "total", 0
        )
        if delta:
            counters.append({"name": name, "total_delta": delta})
    return {
        "kind": "timeseries",
        "worst_window": worst,
        "counter_deltas": counters,
        "replicas": _replica_delta(baseline, fresh),
    }


def _replica_delta(baseline: dict, fresh: dict) -> Optional[dict]:
    base_cluster = baseline.get("cluster")
    fresh_cluster = fresh.get("cluster")
    if not base_cluster or not fresh_cluster:
        return None
    return {
        "base_final": base_cluster.get("final_replicas"),
        "fresh_final": fresh_cluster.get("final_replicas"),
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_diff(diff: dict) -> List[str]:
    """Human-readable lines for a :func:`diff_documents` result."""
    kind = diff.get("kind")
    if kind == "explain":
        return _render_explain(diff)
    if kind == "profile":
        return _render_profile(diff)
    if kind == "timeseries":
        return _render_timeseries(diff)
    return [f"(no renderer for diff kind {kind!r})"]


def _render_explain(diff: dict) -> List[str]:
    lines = []
    if diff.get("count_delta"):
        lines.append(f"request count changed by {diff['count_delta']:+d}")
    for entry in diff.get("quantiles", []):
        blame = ", ".join(
            f"{a['share']:.0%} {_component_label(a['component'])}"
            for a in entry["attribution"][:_TOP_MOVERS]
            if abs(a["delta_ns"]) > 0
        )
        line = (
            f"p{entry['q']:g} {entry['delta_ns'] / 1e6:+.2f} ms "
            f"({entry['base_ns'] / 1e6:.2f} -> "
            f"{entry['fresh_ns'] / 1e6:.2f} ms)"
        )
        if blame:
            line += f": {blame}"
        worst = entry.get("worst_replica")
        if worst is not None and worst["queue_share"] > 0:
            line += (
                f"; queue concentrated {worst['queue_share']:.0%} on "
                f"replica {worst['replica']}"
            )
        lines.append(line)
    return lines or ["no shared quantiles to attribute"]


def _component_label(component: str) -> str:
    return component[:-3] if component.endswith("_ns") else component


def _render_profile(diff: dict) -> List[str]:
    lines = []
    bottleneck = diff.get("bottleneck", {})
    if bottleneck.get("base") != bottleneck.get("fresh"):
        lines.append(
            f"bottleneck stage moved: {bottleneck.get('base')} -> "
            f"{bottleneck.get('fresh')}"
        )
    for mover in diff.get("movers", []):
        if not mover["delta"]:
            continue
        lines.append(
            f"{mover['resource']}: utilization "
            f"{mover['base_utilization']:.1%} -> "
            f"{mover['fresh_utilization']:.1%} ({mover['delta']:+.1%})"
        )
    return lines or ["no utilization movement between profiles"]


def _render_timeseries(diff: dict) -> List[str]:
    lines = []
    worst = diff.get("worst_window")
    if worst is not None and worst["delta_ns"]:
        lines.append(
            f"worst window {worst['index']} "
            f"(t={worst['start_ns'] / 1e6:.1f} ms): p99 "
            f"{worst['base_p99_ns'] / 1e6:.2f} -> "
            f"{worst['fresh_p99_ns'] / 1e6:.2f} ms "
            f"({worst['delta_ns'] / 1e6:+.2f} ms)"
        )
    for counter in diff.get("counter_deltas", []):
        lines.append(
            f"counter {counter['name']}: total {counter['total_delta']:+d}"
        )
    replicas = diff.get("replicas")
    if replicas is not None and replicas["base_final"] != replicas["fresh_final"]:
        lines.append(
            f"final replicas: {replicas['base_final']} -> "
            f"{replicas['fresh_final']}"
        )
    return lines or ["no window movement between timeseries"]


def explain_failure(baseline: dict, fresh: dict) -> List[str]:
    """Diagnostic lines for a failed benchmark gate.

    Both payloads may embed an explain/profile/timeseries document
    under an ``explain`` key (the attribution benchmark commits one);
    when present and schema-matched, the rendered diff is the
    diagnostic.  Returns [] when there is nothing to attribute.
    """
    base_doc = baseline.get("explain")
    fresh_doc = fresh.get("explain")
    if not isinstance(base_doc, dict) or not isinstance(fresh_doc, dict):
        return []
    try:
        return render_diff(diff_documents(base_doc, fresh_doc))
    except (KeyError, TypeError, ValueError):
        return []
