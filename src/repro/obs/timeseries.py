"""Windowed metric series over the simulated clock.

The registry's counters/gauges/histograms answer "what happened over
the whole run"; ROADMAP item 1 (SLA-driven serving) needs "what
happened in *this* 5 ms of simulated time" — a flash crowd or a cache
going cold is invisible in run aggregates.  This module rolls
timestamped observations into fixed-width windows of the simulated
clock and exports them as one versioned ``rmssd-timeseries/v1``
document.

Window semantics (pinned by ``tests/test_obs_timeseries.py``):

* window ``i`` covers ``[i * window_ns, (i+1) * window_ns)``;
* an observation stamped ``t_ns`` lands in ``floor(t_ns / window_ns)``
  — for serving latencies the stamp is the batch's *completion* time,
  so a window summarizes the requests that finished inside it;
* only observations that carry a ``t_ns=`` stamp enter the series
  (untimestamped mutations still update the run aggregate), and
  window deltas always sum to the series total — the conservation
  invariant ``tools/check_trace.py --timeseries`` enforces.

Everything is deterministic: windows are stored keyed by index and
exported sorted, values are plain float arithmetic on simulated
timestamps, so the DES and fast paths — whose timestamps are already
bitwise-equal — produce **byte-identical** exports.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Version tag of the timeseries export document.
TIMESERIES_SCHEMA = "rmssd-timeseries/v1"


def window_index(t_ns: float, window_ns: float) -> int:
    """The window containing simulated instant ``t_ns``."""
    if window_ns <= 0:
        raise ValueError("window width must be positive")
    if t_ns < 0:
        raise ValueError(f"negative timestamp {t_ns}")
    return int(t_ns // window_ns)


class WindowedCounter:
    """Per-window deltas of a monotonic counter."""

    __slots__ = ("name", "window_ns", "total", "_windows")

    kind = "counter"

    def __init__(self, name: str, window_ns: float) -> None:
        if window_ns <= 0:
            raise ValueError("window width must be positive")
        self.name = name
        self.window_ns = float(window_ns)
        self.total = 0
        self._windows: Dict[int, int] = {}

    def record(self, t_ns: float, amount: int = 1) -> None:
        index = window_index(t_ns, self.window_ns)
        self._windows[index] = self._windows.get(index, 0) + amount
        self.total += amount

    def as_dict(self) -> dict:
        seconds = self.window_ns / 1e9
        return {
            "kind": self.kind,
            "window_ns": self.window_ns,
            "total": self.total,
            "windows": [
                {
                    "index": index,
                    "start_ns": index * self.window_ns,
                    "delta": delta,
                    "rate_per_s": delta / seconds,
                }
                for index, delta in sorted(self._windows.items())
            ],
        }


class WindowedGauge:
    """Per-window last/min/max of a sampled value."""

    __slots__ = ("name", "window_ns", "_windows")

    kind = "gauge"

    def __init__(self, name: str, window_ns: float) -> None:
        if window_ns <= 0:
            raise ValueError("window width must be positive")
        self.name = name
        self.window_ns = float(window_ns)
        #: index -> [last, min, max]
        self._windows: Dict[int, List[float]] = {}

    def record(self, t_ns: float, value: float) -> None:
        index = window_index(t_ns, self.window_ns)
        value = float(value)
        cell = self._windows.get(index)
        if cell is None:
            self._windows[index] = [value, value, value]
        else:
            cell[0] = value
            if value < cell[1]:
                cell[1] = value
            if value > cell[2]:
                cell[2] = value

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "window_ns": self.window_ns,
            "windows": [
                {
                    "index": index,
                    "start_ns": index * self.window_ns,
                    "last": cell[0],
                    "min": cell[1],
                    "max": cell[2],
                }
                for index, cell in sorted(self._windows.items())
            ],
        }


class WindowedLatency:
    """Per-window latency distributions.

    Each window holds its own histogram (built by ``factory`` so the
    bucket layout matches the parent
    :class:`~repro.obs.metrics.LatencyHistogram`), giving per-window
    count/mean/p50/p95/p99/max with the same interpolation semantics
    as the run aggregate.
    """

    __slots__ = ("name", "window_ns", "_factory", "_windows")

    kind = "latency"

    def __init__(
        self, name: str, window_ns: float, factory: Callable[[], object]
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window width must be positive")
        self.name = name
        self.window_ns = float(window_ns)
        self._factory = factory
        self._windows: Dict[int, object] = {}

    def record(self, t_ns: float, value_ns: float) -> None:
        index = window_index(t_ns, self.window_ns)
        histogram = self._windows.get(index)
        if histogram is None:
            histogram = self._windows[index] = self._factory()
        histogram.observe(value_ns)

    @property
    def total(self) -> int:
        """Observations recorded across all windows."""
        return sum(h.count for h in self._windows.values())

    def window_indices(self) -> List[int]:
        return sorted(self._windows)

    def window_percentile(self, index: int, q: float) -> float:
        """The q-th percentile within one window (0.0 if absent)."""
        histogram = self._windows.get(index)
        return histogram.percentile(q) if histogram is not None else 0.0

    def window_count(self, index: int) -> int:
        histogram = self._windows.get(index)
        return histogram.count if histogram is not None else 0

    def as_dict(self) -> dict:
        windows = []
        for index, histogram in sorted(self._windows.items()):
            summary = histogram.summary()
            summary["index"] = index
            summary["start_ns"] = index * self.window_ns
            windows.append(summary)
        return {
            "kind": self.kind,
            "window_ns": self.window_ns,
            "total": self.total,
            "windows": windows,
        }


# ---------------------------------------------------------------------------
# Profiler resampling: busy-interval timelines -> utilization series
# ---------------------------------------------------------------------------
def _window_overlaps(
    start: float, end: float, window_ns: float
) -> Iterator[Tuple[int, float]]:
    """Yield ``(window index, overlap ns)`` for one busy interval."""
    index = int(start // window_ns)
    while True:
        window_start = index * window_ns
        window_end = window_start + window_ns
        overlap = min(end, window_end) - max(start, window_start)
        if overlap > 0:
            yield index, overlap
        if end <= window_end:
            return
        index += 1


def utilization_series(profiler, window_ns: float) -> dict:
    """Resample the profiler's busy timelines into per-window
    utilization fractions, one series per resource.

    ``profiler`` provides :meth:`~repro.obs.profiler.Profiler.
    busy_timelines` — union-merged busy intervals per resource, the
    same data behind ``resource_report`` but untruncated, so window
    busy times sum exactly to the resource's total busy time.
    """
    if window_ns <= 0:
        raise ValueError("window width must be positive")
    series: dict = {}
    for name, (kind, intervals) in sorted(profiler.busy_timelines().items()):
        windows: Dict[int, float] = {}
        for start, end in intervals:
            for index, overlap in _window_overlaps(start, end, window_ns):
                windows[index] = windows.get(index, 0.0) + overlap
        series[name] = {
            "kind": kind,
            "busy_ns": sum(end - start for start, end in intervals),
            "windows": [
                {
                    "index": index,
                    "start_ns": index * window_ns,
                    "busy_ns": busy,
                    "utilization": busy / window_ns,
                }
                for index, busy in sorted(windows.items())
            ],
        }
    return series


# ---------------------------------------------------------------------------
# Document assembly
# ---------------------------------------------------------------------------
def build_document(
    metrics=None,
    profiler=None,
    slo=None,
    window_ns: Optional[float] = None,
    cluster: Optional[dict] = None,
) -> dict:
    """Assemble the ``rmssd-timeseries/v1`` document.

    ``metrics`` contributes its windowed series (a windowed
    :class:`~repro.obs.metrics.MetricsRegistry`), ``profiler`` the
    per-resource utilization series, ``slo`` (an
    :class:`~repro.obs.slo.SLOEngine`) the objective evaluations and
    burn-rate alerts, ``cluster`` the cluster-serving section (replica
    counts and the autoscaler's scaling-event log, from
    :meth:`~repro.host.cluster_serving.ClusterLoadPoint.
    cluster_section`).  Any subset may be present.
    """
    if window_ns is None and metrics is not None:
        window_ns = metrics.window_ns
    if window_ns is None or window_ns <= 0:
        raise ValueError("timeseries document needs a positive window_ns")
    document: dict = {
        "schema": TIMESERIES_SCHEMA,
        "window_ns": float(window_ns),
        "series": metrics.series_dict() if metrics is not None else {},
    }
    if profiler is not None and profiler.enabled:
        document["utilization"] = utilization_series(profiler, window_ns)
    if slo is not None:
        document["slo"] = slo.report_dict(metrics)
    if cluster is not None:
        document["cluster"] = cluster
    return document


def export_document(document: dict, path: str) -> str:
    """Write a timeseries document as sorted, indented JSON."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
