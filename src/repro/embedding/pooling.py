"""SparseLengthSum pooling operators.

The embedding layer gathers one vector per lookup index and reduces
them to a single vector per table via element-wise pooling (sum or
mean).  ``sparse_length_sum`` is the reference operator the host
framework runs (Facebook's SLS); the in-device EV Sum unit must produce
bit-identical results, which it does because fp32 addition is performed
in the same left-to-right order.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.embedding.table import EmbeddingTable, EmbeddingTableSet


def pool_sum(vectors: np.ndarray) -> np.ndarray:
    """Element-wise sum of ``n x dim`` vectors -> ``dim`` vector.

    Accumulates in index order so hardware and host agree bitwise.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise ValueError("expected a 2-D array of vectors")
    result = np.zeros(vectors.shape[1], dtype=np.float32)
    for row in vectors:
        result += row
    return result


def pool_mean(vectors: np.ndarray) -> np.ndarray:
    """Element-wise average pooling."""
    vectors = np.asarray(vectors, dtype=np.float32)
    if len(vectors) == 0:
        raise ValueError("cannot average zero vectors")
    return (pool_sum(vectors) / np.float32(len(vectors))).astype(np.float32)


#: Supported pooling modes ("element-wise pooling operations (e.g.,
#: addition, average)" — Section II-A).
POOLING_SUM = "sum"
POOLING_MEAN = "mean"


def pool(vectors: np.ndarray, mode: str = POOLING_SUM) -> np.ndarray:
    """Dispatch to the requested pooling operator."""
    if mode == POOLING_SUM:
        return pool_sum(vectors)
    if mode == POOLING_MEAN:
        return pool_mean(vectors)
    raise ValueError(f"unknown pooling mode {mode!r}")


def sparse_length_sum(
    table: EmbeddingTable, indices: Sequence[int], mode: str = POOLING_SUM
) -> np.ndarray:
    """The SLS operator for one table: gather rows, pool them."""
    if len(indices) == 0:
        return np.zeros(table.dim, dtype=np.float32)
    return pool(table.lookup(indices), mode)


def sls_all_tables(
    tables: EmbeddingTableSet,
    indices_per_table: Sequence[Sequence[int]],
    mode: str = POOLING_SUM,
) -> np.ndarray:
    """Pool every table and concatenate: the Top-MLP sparse input.

    Returns a vector of size ``M * dim`` (Section IV-B3: "the size of
    the united input vector of Top MLP is EVdim * M").
    """
    if len(indices_per_table) != len(tables):
        raise ValueError(
            f"{len(indices_per_table)} index lists for {len(tables)} tables"
        )
    pooled: List[np.ndarray] = [
        sparse_length_sum(table, indices, mode)
        for table, indices in zip(tables, indices_per_table)
    ]
    return np.concatenate(pooled).astype(np.float32)


def sls_batch(
    tables: EmbeddingTableSet,
    batch_indices: Sequence[Sequence[Sequence[int]]],
    mode: str = POOLING_SUM,
) -> np.ndarray:
    """Batched SLS: ``batch_indices[sample][table] -> indices``.

    Returns ``batch x (M * dim)``.
    """
    return np.stack(
        [sls_all_tables(tables, sample, mode) for sample in batch_indices]
    )
