"""SparseLengthSum pooling operators.

The embedding layer gathers one vector per lookup index and reduces
them to a single vector per table via element-wise pooling (sum or
mean).  ``sparse_length_sum`` is the reference operator the host
framework runs (Facebook's SLS); the in-device EV Sum unit must produce
bit-identical results, which it does because fp32 addition is performed
in the same left-to-right order.

The vectorized operators (`pool_sum`, `segment_pool`, `sls_batch`)
preserve that contract: they reduce strictly left to right in fp32
(``np.add.accumulate`` and a per-position masked sweep are sequential
by definition, unlike ``np.add.reduce``, whose pairwise summation can
reassociate on contiguous axes), so they match the per-row loop bit
for bit — pinned by ``tests/test_pooling_vectorized.py``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.embedding.table import EmbeddingTable, EmbeddingTableSet


def pool_sum(vectors: np.ndarray) -> np.ndarray:
    """Element-wise sum of ``n x dim`` vectors -> ``dim`` vector.

    Accumulates in index order so hardware and host agree bitwise.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise ValueError("expected a 2-D array of vectors")
    if len(vectors) == 0:
        return np.zeros(vectors.shape[1], dtype=np.float32)
    # The trailing ``+ 0.0`` reproduces the reference loop's leading
    # ``0.0 + row``: it only matters for the sign of zero results.
    return np.add.accumulate(vectors, axis=0)[-1] + np.float32(0.0)


def pool_sum_reference(vectors: np.ndarray) -> np.ndarray:
    """The original per-row accumulation loop, kept as the bitwise
    reference :func:`pool_sum` is tested against."""
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise ValueError("expected a 2-D array of vectors")
    result = np.zeros(vectors.shape[1], dtype=np.float32)
    for row in vectors:
        result += row
    return result


def pool_mean(vectors: np.ndarray) -> np.ndarray:
    """Element-wise average pooling."""
    vectors = np.asarray(vectors, dtype=np.float32)
    if len(vectors) == 0:
        raise ValueError("cannot average zero vectors")
    return (pool_sum(vectors) / np.float32(len(vectors))).astype(np.float32)


#: Supported pooling modes ("element-wise pooling operations (e.g.,
#: addition, average)" — Section II-A).
POOLING_SUM = "sum"
POOLING_MEAN = "mean"


def pool(vectors: np.ndarray, mode: str = POOLING_SUM) -> np.ndarray:
    """Dispatch to the requested pooling operator."""
    if mode == POOLING_SUM:
        return pool_sum(vectors)
    if mode == POOLING_MEAN:
        return pool_mean(vectors)
    raise ValueError(f"unknown pooling mode {mode!r}")


def segment_pool(
    rows: np.ndarray, lengths: np.ndarray, mode: str = POOLING_SUM
) -> np.ndarray:
    """Pool consecutive row segments, strictly left to right per segment.

    ``rows`` is ``(sum(lengths), dim)``; segment ``i`` owns the next
    ``lengths[i]`` rows.  Returns ``(len(lengths), dim)`` float32.  The
    reduction sweeps position-by-position (all segments' row 0, then
    row 1, ...), which performs exactly the additions of a per-segment
    ``acc += row`` loop, in the same order — the EV Sum contract.
    Empty segments pool to zeros; in ``"mean"`` mode non-empty segments
    are divided by their length (empty ones stay zeros, matching
    :func:`sparse_length_sum`).
    """
    if mode not in (POOLING_SUM, POOLING_MEAN):
        raise ValueError(f"unknown pooling mode {mode!r}")
    rows = np.asarray(rows, dtype=np.float32)
    if rows.ndim != 2:
        raise ValueError("expected a 2-D array of rows")
    lengths = np.asarray(lengths, dtype=np.int64)
    if int(lengths.sum()) != len(rows):
        raise ValueError(
            f"segment lengths cover {int(lengths.sum())} rows, got {len(rows)}"
        )
    segments = len(lengths)
    pooled = np.zeros((segments, rows.shape[1]), dtype=np.float32)
    starts = np.zeros(segments, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    longest = int(lengths.max()) if segments else 0
    for position in range(longest):
        active = np.flatnonzero(lengths > position)
        pooled[active] += rows[starts[active] + position]
    if mode == POOLING_MEAN:
        pooled /= np.maximum(lengths, 1).astype(np.float32)[:, None]
    return pooled


def sparse_length_sum(
    table: EmbeddingTable, indices: Sequence[int], mode: str = POOLING_SUM
) -> np.ndarray:
    """The SLS operator for one table: gather rows, pool them."""
    if len(indices) == 0:
        return np.zeros(table.dim, dtype=np.float32)
    return pool(table.lookup(indices), mode)


def sls_all_tables(
    tables: EmbeddingTableSet,
    indices_per_table: Sequence[Sequence[int]],
    mode: str = POOLING_SUM,
) -> np.ndarray:
    """Pool every table and concatenate: the Top-MLP sparse input.

    Returns a vector of size ``M * dim`` (Section IV-B3: "the size of
    the united input vector of Top MLP is EVdim * M").
    """
    if len(indices_per_table) != len(tables):
        raise ValueError(
            f"{len(indices_per_table)} index lists for {len(tables)} tables"
        )
    pooled: List[np.ndarray] = [
        sparse_length_sum(table, indices, mode)
        for table, indices in zip(tables, indices_per_table)
    ]
    return np.concatenate(pooled).astype(np.float32)


def sls_batch(
    tables: EmbeddingTableSet,
    batch_indices: Sequence[Sequence[Sequence[int]]],
    mode: str = POOLING_SUM,
) -> np.ndarray:
    """Batched SLS: ``batch_indices[sample][table] -> indices``.

    Returns ``batch x (M * dim)``.  One gather plus one segment
    reduction per table instead of a per-sample Python loop; bitwise
    identical to stacking :func:`sls_all_tables` over the samples.
    """
    samples = len(batch_indices)
    if samples == 0:
        # Preserve np.stack's empty-batch error from the scalar path.
        return np.stack([])
    num_tables = len(tables)
    for sample in batch_indices:
        if len(sample) != num_tables:
            raise ValueError(
                f"{len(sample)} index lists for {num_tables} tables"
            )
    dim = tables.dim
    out = np.empty((samples, num_tables * dim), dtype=np.float32)
    for position, table in enumerate(tables):
        lengths = np.fromiter(
            (len(sample[position]) for sample in batch_indices),
            dtype=np.int64,
            count=samples,
        )
        if int(lengths.sum()):
            flat = np.concatenate(
                [
                    np.asarray(sample[position], dtype=np.int64)
                    for sample in batch_indices
                    if len(sample[position])
                ]
            )
            rows = table.lookup(flat)
        else:
            rows = np.zeros((0, table.dim), dtype=np.float32)
        out[:, position * dim : (position + 1) * dim] = segment_pool(
            rows, lengths, mode
        )
    return out
