"""Embedding tables.

An embedding table maps a sparse categorical index to a dense fp32
vector.  The paper keeps embeddings in FP32 without quantization
("the recommendation model is much more sensitive to accuracy than
other DNN models"), so rows are always ``float32``.

Production tables reach tens of GB; experiments here materialize
scaled-down tables (the scale factor is recorded so benchmark reports
can state the substitution).  Rows are generated deterministically from
a seed so any two components that should see the same table contents
do, without sharing object references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np


class EmbeddingTable:
    """A single embedding table: ``rows x dim`` float32 matrix."""

    def __init__(
        self,
        name: str,
        rows: int,
        dim: int,
        seed: Optional[int] = 0,
        data: Optional[np.ndarray] = None,
        materialize: bool = True,
    ) -> None:
        if rows < 1 or dim < 1:
            raise ValueError("rows and dim must be positive")
        self.name = name
        self.rows = rows
        self.dim = dim
        if data is not None:
            data = np.asarray(data, dtype=np.float32)
            if data.shape != (rows, dim):
                raise ValueError(
                    f"data shape {data.shape} != ({rows}, {dim})"
                )
            self._data: Optional[np.ndarray] = data
        elif materialize:
            rng = np.random.default_rng(seed)
            # Small magnitudes, like trained embeddings after regularization.
            self._data = rng.standard_normal((rows, dim), dtype=np.float32) * 0.1
        else:
            # Virtual table: addressing/layout studies at paper scale
            # (tens of GB) without allocating row contents.
            self._data = None

    @classmethod
    def virtual(cls, name: str, rows: int, dim: int) -> "EmbeddingTable":
        """A table with shape but no contents (layout-only studies)."""
        return cls(name, rows, dim, materialize=False)

    @property
    def is_virtual(self) -> bool:
        return self._data is None

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise RuntimeError(
                f"table {self.name!r} is virtual (layout-only); "
                "row contents were never materialized"
            )
        return self._data

    @property
    def ev_size(self) -> int:
        """``EVsize`` in bytes: dim * sizeof(float32)."""
        return self.dim * 4

    @property
    def nbytes(self) -> int:
        return self.rows * self.ev_size

    def row(self, index: int) -> np.ndarray:
        if not 0 <= index < self.rows:
            raise IndexError(f"index {index} out of range for table {self.name!r}")
        return self.data[index]

    def row_bytes(self, index: int) -> bytes:
        """Serialized fp32 row, as laid out on flash."""
        return self.row(index).tobytes()

    def lookup(self, indices: Sequence[int]) -> np.ndarray:
        """Gather rows for ``indices`` (shape ``len(indices) x dim``)."""
        return self.data[np.asarray(indices, dtype=np.int64)]

    def __repr__(self) -> str:
        return f"EmbeddingTable({self.name!r}, rows={self.rows}, dim={self.dim})"


class EmbeddingTableSet:
    """The model's full set of embedding tables (``M`` tables, Table I)."""

    def __init__(self, tables: Iterable[EmbeddingTable]) -> None:
        self.tables: List[EmbeddingTable] = list(tables)
        if not self.tables:
            raise ValueError("at least one table required")
        dims = {t.dim for t in self.tables}
        if len(dims) != 1:
            raise ValueError(f"all tables must share one dimension, got {dims}")

    @classmethod
    def uniform(
        cls,
        num_tables: int,
        rows_per_table: int,
        dim: int,
        seed: int = 0,
        name_prefix: str = "table",
    ) -> "EmbeddingTableSet":
        """Build ``num_tables`` equally-sized tables with distinct seeds."""
        return cls(
            EmbeddingTable(f"{name_prefix}{i}", rows_per_table, dim, seed=seed + i)
            for i in range(num_tables)
        )

    @classmethod
    def uniform_virtual(
        cls,
        num_tables: int,
        rows_per_table: int,
        dim: int,
        name_prefix: str = "table",
    ) -> "EmbeddingTableSet":
        """Equally-sized *virtual* tables (addressing studies at the
        paper's full 30 GB capacity without allocating contents)."""
        return cls(
            EmbeddingTable.virtual(f"{name_prefix}{i}", rows_per_table, dim)
            for i in range(num_tables)
        )

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables)

    def __getitem__(self, table_id: int) -> EmbeddingTable:
        return self.tables[table_id]

    @property
    def dim(self) -> int:
        return self.tables[0].dim

    @property
    def ev_size(self) -> int:
        return self.tables[0].ev_size

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.tables)


@dataclass(frozen=True)
class TableScaling:
    """Record of a capacity substitution (30 GB paper -> N MB here).

    Benchmarks report this so a reader always knows how far below the
    paper's capacity a run's tables were materialized.
    """

    paper_total_bytes: int
    built_total_bytes: int

    @property
    def factor(self) -> float:
        return self.paper_total_bytes / self.built_total_bytes

    def __str__(self) -> str:
        return (
            f"{self.built_total_bytes / (1 << 20):.0f} MB built "
            f"(paper: {self.paper_total_bytes / (1 << 30):.0f} GB, "
            f"{self.factor:.0f}x scale-down)"
        )


def scaling_vs_paper(
    tables: EmbeddingTableSet,
    paper_total_bytes: int = 30 * (1 << 30),
) -> TableScaling:
    """The substitution record for a materialized table set."""
    return TableScaling(
        paper_total_bytes=paper_total_bytes,
        built_total_bytes=tables.total_bytes,
    )
