"""Embedding substrate: tables, on-SSD layout, index translation, pooling.

Implements the data side of the paper's embedding layer: embedding
tables as fp32 row matrices, the page-aligned on-SSD layout whose
extent metadata feeds the EV Translator (Fig. 6), the translator
itself, and the SparseLengthSum pooling operators.
"""

from repro.embedding.layout import EmbeddingLayout, TableLayout
from repro.embedding.pooling import pool_mean, pool_sum, sparse_length_sum
from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.embedding.translator import EVTranslator, TranslatedRead

__all__ = [
    "EVTranslator",
    "EmbeddingLayout",
    "EmbeddingTable",
    "EmbeddingTableSet",
    "TableLayout",
    "TranslatedRead",
    "pool_mean",
    "pool_sum",
    "sparse_length_sum",
]
