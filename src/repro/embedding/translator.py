"""Embedding Vector Translator (Fig. 6).

Resolves ``(table_id, index)`` lookups to device addresses using only
the extent metadata shipped at ``RM_open_table`` time — exactly the
five steps of Fig. 6:

1. scan each table's metadata once when a batch arrives;
2. fetch an index from the Index Buffer;
3. find the covering extent by checking index ranges (in parallel in
   hardware; a vectorized ``searchsorted`` here);
4. read that extent's start LBA;
5. add the in-extent offset: vectors are packed ``slots_per_page`` to a
   page, so the final address is
   ``start_LBA * Psize + page_in_extent * Psize + slot * EVsize``.

The translator never touches host state after setup — that is the point
of the design: index-to-address resolution is in-device.  The hardware
translates a whole Index Buffer per pass, which is what
:meth:`EVTranslator.translate_array` models: index arrays in, device
byte offsets out, no per-index Python objects.  :meth:`EVTranslator.
translate` remains as the single-lookup reference implementation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.embedding.layout import ExtentRange


@dataclass(frozen=True)
class TranslatedRead:
    """One vector-grained read request produced by the translator."""

    table_id: int
    index: int
    device_offset: int
    size: int


@dataclass(frozen=True)
class _TableMeta:
    """Preprocessed metadata for one table (Fig. 6 step 1)."""

    extent_first_indices: List[int]
    extents: List[ExtentRange]
    ev_size: int
    slots_per_page: int
    page_size: int
    rows: int
    # Array mirrors of the extent lists for the batched path.
    first_index_array: np.ndarray
    last_index_array: np.ndarray
    start_lba_array: np.ndarray


class EVTranslator:
    """Device-resident index-to-LBA translation."""

    #: Cycles to translate one index once metadata is staged — a couple
    #: of comparisons and adds in the FPGA pipeline.
    CYCLES_PER_LOOKUP = 4

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._tables: Dict[int, _TableMeta] = {}

    def register_table(
        self,
        table_id: int,
        extent_ranges: Sequence[ExtentRange],
        ev_size: int,
        rows: int,
    ) -> None:
        """Stage one table's metadata (the RM_open_table upload)."""
        if not extent_ranges:
            raise ValueError(f"table {table_id} has no extents")
        if ev_size <= 0 or ev_size > self.page_size:
            raise ValueError("invalid embedding vector size")
        self._tables[table_id] = _TableMeta(
            extent_first_indices=[e.first_index for e in extent_ranges],
            extents=list(extent_ranges),
            ev_size=ev_size,
            slots_per_page=self.page_size // ev_size,
            page_size=self.page_size,
            rows=rows,
            first_index_array=np.array(
                [e.first_index for e in extent_ranges], dtype=np.int64
            ),
            last_index_array=np.array(
                [e.last_index for e in extent_ranges], dtype=np.int64
            ),
            start_lba_array=np.array(
                [e.start_lba for e in extent_ranges], dtype=np.int64
            ),
        )

    @property
    def registered_tables(self) -> int:
        return len(self._tables)

    def _meta(self, table_id: int) -> _TableMeta:
        try:
            return self._tables[table_id]
        except KeyError:
            raise KeyError(f"table {table_id} not registered") from None

    def translate(self, table_id: int, index: int) -> TranslatedRead:
        """Resolve one lookup to a device byte address (steps 2-5)."""
        meta = self._meta(table_id)
        if not 0 <= index < meta.rows:
            raise IndexError(f"index {index} out of range for table {table_id}")
        # Step 3: locate the covering extent.
        position = bisect_right(meta.extent_first_indices, index) - 1
        extent = meta.extents[position]
        if not extent.covers(index):
            raise RuntimeError(
                f"metadata hole: index {index} not covered by extent {extent}"
            )
        # Steps 4-5: start LBA plus in-extent page/slot offset.
        index_offset = index - extent.first_index
        page_in_extent, slot = divmod(index_offset, meta.slots_per_page)
        device_offset = (
            (extent.start_lba + page_in_extent) * meta.page_size
            + slot * meta.ev_size
        )
        return TranslatedRead(
            table_id=table_id,
            index=index,
            device_offset=device_offset,
            size=meta.ev_size,
        )

    def translate_array(self, table_id: int, indices) -> np.ndarray:
        """Batched steps 2-5: an index array in, byte offsets out.

        Semantically identical to calling :meth:`translate` per index
        (same addresses, same error for the first offending index), in
        O(log extents) vectorized work per index.
        """
        meta = self._meta(table_id)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.empty(0, dtype=np.int64)
        bounds = (indices < 0) | (indices >= meta.rows)
        if bounds.any():
            index = int(indices[bounds][0])
            raise IndexError(f"index {index} out of range for table {table_id}")
        # Step 3, batched.  ``position`` may come out -1 for an index
        # below the first extent; Python's ``extents[-1]`` wraps to the
        # last extent, so mirror that before the coverage check.
        positions = np.searchsorted(
            meta.first_index_array, indices, side="right"
        ) - 1
        positions %= len(meta.extents)
        holes = (indices < meta.first_index_array[positions]) | (
            indices > meta.last_index_array[positions]
        )
        if holes.any():
            offender = int(np.flatnonzero(holes)[0])
            extent = meta.extents[int(positions[offender])]
            raise RuntimeError(
                f"metadata hole: index {int(indices[offender])} "
                f"not covered by extent {extent}"
            )
        # Steps 4-5, batched (all-int64: exact).
        index_offsets = indices - meta.first_index_array[positions]
        pages_in_extent = index_offsets // meta.slots_per_page
        slots = index_offsets % meta.slots_per_page
        return (
            (meta.start_lba_array[positions] + pages_in_extent) * meta.page_size
            + slots * meta.ev_size
        )

    def translate_batch(
        self, table_id: int, indices: Sequence[int]
    ) -> List[TranslatedRead]:
        """Translate a whole Index Buffer worth of lookups.

        Compatibility wrapper over :meth:`translate_array`: the address
        math runs batched; only the result objects are materialized per
        index.  Callers that can consume plain arrays should prefer
        :meth:`translate_array`.
        """
        offsets = self.translate_array(table_id, indices)
        size = self._meta(table_id).ev_size
        return [
            TranslatedRead(
                table_id=table_id,
                index=int(index),
                device_offset=int(offset),
                size=size,
            )
            for index, offset in zip(
                np.asarray(indices, dtype=np.int64), offsets
            )
        ]

    def translation_cycles(self, num_lookups: int) -> int:
        """Pipeline cycles to translate ``num_lookups`` indices."""
        return self.CYCLES_PER_LOOKUP * num_lookups
