"""Embedding Vector Translator (Fig. 6).

Resolves ``(table_id, index)`` lookups to device addresses using only
the extent metadata shipped at ``RM_open_table`` time — exactly the
five steps of Fig. 6:

1. scan each table's metadata once when a batch arrives;
2. fetch an index from the Index Buffer;
3. find the covering extent by checking index ranges (in parallel in
   hardware; a bisect here);
4. read that extent's start LBA;
5. add the in-extent offset: vectors are packed ``slots_per_page`` to a
   page, so the final address is
   ``start_LBA * Psize + page_in_extent * Psize + slot * EVsize``.

The translator never touches host state after setup — that is the point
of the design: index-to-address resolution is in-device.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.embedding.layout import ExtentRange


@dataclass(frozen=True)
class TranslatedRead:
    """One vector-grained read request produced by the translator."""

    table_id: int
    index: int
    device_offset: int
    size: int


@dataclass(frozen=True)
class _TableMeta:
    """Preprocessed metadata for one table (Fig. 6 step 1)."""

    extent_first_indices: List[int]
    extents: List[ExtentRange]
    ev_size: int
    slots_per_page: int
    page_size: int
    rows: int


class EVTranslator:
    """Device-resident index-to-LBA translation."""

    #: Cycles to translate one index once metadata is staged — a couple
    #: of comparisons and adds in the FPGA pipeline.
    CYCLES_PER_LOOKUP = 4

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._tables: Dict[int, _TableMeta] = {}

    def register_table(
        self,
        table_id: int,
        extent_ranges: Sequence[ExtentRange],
        ev_size: int,
        rows: int,
    ) -> None:
        """Stage one table's metadata (the RM_open_table upload)."""
        if not extent_ranges:
            raise ValueError(f"table {table_id} has no extents")
        if ev_size <= 0 or ev_size > self.page_size:
            raise ValueError("invalid embedding vector size")
        self._tables[table_id] = _TableMeta(
            extent_first_indices=[e.first_index for e in extent_ranges],
            extents=list(extent_ranges),
            ev_size=ev_size,
            slots_per_page=self.page_size // ev_size,
            page_size=self.page_size,
            rows=rows,
        )

    @property
    def registered_tables(self) -> int:
        return len(self._tables)

    def translate(self, table_id: int, index: int) -> TranslatedRead:
        """Resolve one lookup to a device byte address (steps 2-5)."""
        try:
            meta = self._tables[table_id]
        except KeyError:
            raise KeyError(f"table {table_id} not registered") from None
        if not 0 <= index < meta.rows:
            raise IndexError(f"index {index} out of range for table {table_id}")
        # Step 3: locate the covering extent.
        position = bisect_right(meta.extent_first_indices, index) - 1
        extent = meta.extents[position]
        if not extent.covers(index):
            raise RuntimeError(
                f"metadata hole: index {index} not covered by extent {extent}"
            )
        # Steps 4-5: start LBA plus in-extent page/slot offset.
        index_offset = index - extent.first_index
        page_in_extent, slot = divmod(index_offset, meta.slots_per_page)
        device_offset = (
            (extent.start_lba + page_in_extent) * meta.page_size
            + slot * meta.ev_size
        )
        return TranslatedRead(
            table_id=table_id,
            index=index,
            device_offset=device_offset,
            size=meta.ev_size,
        )

    def translate_batch(
        self, table_id: int, indices: Sequence[int]
    ) -> List[TranslatedRead]:
        """Translate a whole Index Buffer worth of lookups."""
        return [self.translate(table_id, index) for index in indices]

    def translation_cycles(self, num_lookups: int) -> int:
        """Pipeline cycles to translate ``num_lookups`` indices."""
        return self.CYCLES_PER_LOOKUP * num_lookups
