"""On-SSD layout of embedding tables.

Each table is stored as a normal file (``RM_create_table`` goes through
the block I/O path and the file system).  Vectors are packed so that
**no vector straddles a flash page boundary** — the EV-FMC reads one
vector with a single in-page column access (Fig. 7), so a row must live
wholly inside one page.  With power-of-two ``EVsize`` (64-256 B) the
packing is dense; otherwise the tail of each page is padding.

The layout also produces the *embedding table metadata* of Fig. 6: per
extent, the index range it covers and its start LBA.  That metadata is
what ``RM_open_table`` ships to the device for the EV Translator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.ssd.blockdev import BlockDevice, FileHandle


@dataclass(frozen=True)
class ExtentRange:
    """Fig. 6 metadata row: one extent's index range and start LBA."""

    extent_id: int
    first_index: int
    last_index: int  # inclusive
    start_lba: int

    def covers(self, index: int) -> bool:
        return self.first_index <= index <= self.last_index


@dataclass
class TableLayout:
    """Placement of one table: geometry, file handle, extent ranges."""

    table_id: int
    table: EmbeddingTable
    handle: FileHandle
    page_size: int
    extent_ranges: List[ExtentRange] = field(default_factory=list)

    @property
    def slots_per_page(self) -> int:
        return self.page_size // self.table.ev_size

    def vector_file_offset(self, index: int) -> int:
        """File-relative byte offset of a row (page-aligned packing)."""
        if not 0 <= index < self.table.rows:
            raise IndexError(
                f"index {index} out of range for table {self.table.name!r}"
            )
        slots = self.slots_per_page
        page, slot = divmod(index, slots)
        return page * self.page_size + slot * self.table.ev_size

    @property
    def file_bytes(self) -> int:
        pages = -(-self.table.rows // self.slots_per_page)
        return pages * self.page_size


class EmbeddingLayout:
    """Lays out a table set on a block device and serves the metadata."""

    def __init__(self, device: BlockDevice, tables: EmbeddingTableSet) -> None:
        self.device = device
        self.tables = tables
        self.page_size = device.page_size
        if tables.ev_size > self.page_size:
            raise ValueError("embedding vector larger than a flash page")
        self.layouts: Dict[int, TableLayout] = {}

    # ------------------------------------------------------------------
    # Creation (RM_create_table path)
    # ------------------------------------------------------------------
    def create_all(self, write_data: bool = True) -> None:
        """Allocate files for every table and optionally write the rows.

        ``write_data=False`` lays out addressing only — useful for
        timing-only studies with very large virtual tables.
        """
        for table_id, table in enumerate(self.tables):
            self._create_one(table_id, table, write_data)

    def _create_one(self, table_id: int, table: EmbeddingTable, write_data: bool) -> None:
        slots_per_page = self.page_size // table.ev_size
        file_bytes = -(-table.rows // slots_per_page) * self.page_size
        handle = self.device.create_file(f"emb/{table.name}", file_bytes)
        layout = TableLayout(
            table_id=table_id,
            table=table,
            handle=handle,
            page_size=self.page_size,
        )
        self.layouts[table_id] = layout
        self._build_extent_ranges(layout)
        if write_data:
            self._write_rows(layout)

    def _write_rows(self, layout: TableLayout) -> None:
        table = layout.table
        slots = layout.slots_per_page
        for first_row in range(0, table.rows, slots):
            rows = table.data[first_row : first_row + slots]
            offset = layout.vector_file_offset(first_row)
            self.device.write_file(layout.handle.name, rows.tobytes(), offset)

    def _build_extent_ranges(self, layout: TableLayout) -> None:
        """Compute each extent's covered index range (Fig. 6 metadata)."""
        slots = layout.slots_per_page
        pages_seen = 0
        for extent_id, extent in enumerate(layout.handle.extents):
            first_index = pages_seen * slots
            pages_seen += extent.page_count
            last_index = min(pages_seen * slots, layout.table.rows) - 1
            if first_index > last_index:
                break  # trailing allocation padding holds no vectors
            layout.extent_ranges.append(
                ExtentRange(
                    extent_id=extent_id,
                    first_index=first_index,
                    last_index=last_index,
                    start_lba=extent.start_lba,
                )
            )

    # ------------------------------------------------------------------
    # Address resolution (used by the EV Translator and baselines)
    # ------------------------------------------------------------------
    def device_offset(self, table_id: int, index: int) -> int:
        """Device byte address of row ``index`` of table ``table_id``."""
        layout = self.layouts[table_id]
        return self.device.device_offset_of(
            layout.handle.name, layout.vector_file_offset(index)
        )

    def metadata(self) -> Dict[int, List[ExtentRange]]:
        """The per-table extent metadata shipped via RM registers."""
        return {tid: list(l.extent_ranges) for tid, l in self.layouts.items()}

    def layout_for(self, table_id: int) -> TableLayout:
        return self.layouts[table_id]
