"""Deployment advisor.

A practitioner's question the paper implicitly answers model by model:
*given my recommendation model, is in-storage inference worth it?*
This module packages the reproduction's machinery into that decision:
it classifies the model (embedding- vs MLP-dominated), sizes the
RM-SSD pipeline for it, estimates the DRAM-host alternative from the
calibrated cost model, checks low-end-FPGA deployability, and states a
recommendation with its reasons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import PLACEMENT_DRAM, decompose_model
from repro.fpga.search import kernel_search
from repro.fpga.specs import XC7A200T, FPGAPart
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.models.configs import ModelConfig
from repro.models import build_model
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


@dataclass
class Advice:
    """The advisor's verdict for one model configuration."""

    model_name: str
    dominated_by: str  # "embedding" | "mlp"
    rmssd_qps: float
    dram_qps_batch1: float
    dram_qps_batched: float
    device_nbatch: int
    fits_low_end: bool
    spilled_layers: List[str]
    embedding_bytes_paper: int
    recommendation: str
    reasons: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"model: {self.model_name} ({self.dominated_by}-dominated)",
            f"RM-SSD:  {self.rmssd_qps:.0f} QPS at device batch "
            f"{self.device_nbatch}",
            f"DRAM:    {self.dram_qps_batch1:.0f} QPS at batch 1, "
            f"{self.dram_qps_batched:.0f} QPS batched",
            f"low-end FPGA ({XC7A200T.name}): "
            f"{'fits' if self.fits_low_end else 'DOES NOT FIT'}"
            + (f" (DRAM-streamed: {', '.join(self.spilled_layers)})"
               if self.spilled_layers else ""),
            f"paper-scale embedding capacity: "
            f"{self.embedding_bytes_paper / (1 << 30):.0f} GB",
            f"recommendation: {self.recommendation}",
        ]
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def advise(
    config: ModelConfig,
    geometry: Optional[SSDGeometry] = None,
    ssd_timing: Optional[SSDTimingModel] = None,
    costs: HostCostModel = DEFAULT_HOST_COSTS,
    target_part: FPGAPart = XC7A200T,
    low_end_bram_budget: int = 280,
    batched_batch: int = 32,
) -> Advice:
    """Evaluate one model configuration for in-storage deployment."""
    geometry = geometry or SSDGeometry()
    ssd_timing = ssd_timing or SSDTimingModel()
    model = build_model(config, rows_per_table=64)

    # Device side: kernel search against the low-end budget.
    decomposed = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        decomposed.vectors_per_inference, geometry, ssd_timing, config.ev_size
    )
    search = kernel_search(
        decomposed, flash, bram_budget_tiles=low_end_bram_budget
    )
    rmssd_qps = search.times.throughput_qps(200e6)
    fits = target_part.fits(search.resources)
    spilled = [
        l.name for l in search.model.all_layers()
        if l.placement == PLACEMENT_DRAM
    ]

    # Host-DRAM alternative from the calibrated cost model.
    bottom_macs = sum(r * c for r, c in model.fc_shapes_bottom())
    top_macs = sum(r * c for r, c in model.fc_shapes_top())
    layers = len(model.fc_shapes_bottom()) + len(model.fc_shapes_top())

    def dram_qps(batch: int) -> float:
        vectors = config.lookups_per_inference * batch
        total_ns = (
            costs.sls_op_ns(config.num_tables, vectors)
            + costs.mlp_ns(bottom_macs + top_macs, layers, batch)
            + costs.concat_ns()
        )
        return batch / (total_ns / 1e9)

    dram_1 = dram_qps(1)
    dram_b = dram_qps(batched_batch)

    dominated = "mlp" if config.is_mlp_dominated else "embedding"
    reasons: List[str] = []
    if not fits:
        recommendation = "host-side serving (engine exceeds the low-end FPGA)"
        reasons.append("the kernel-searched engine does not fit the target part")
    elif rmssd_qps >= dram_b:
        recommendation = "RM-SSD"
        reasons.append("in-storage throughput beats even batched host DRAM")
    elif rmssd_qps >= dram_1:
        recommendation = "RM-SSD for latency-bound serving; DRAM for batch"
        reasons.append(
            "RM-SSD wins at interactive batch sizes; vectorized host math "
            "overtakes at large batch"
        )
    else:
        recommendation = "host DRAM (if capacity allows)"
        reasons.append("the host outruns the device at every batch size")
    if dominated == "embedding":
        reasons.append(
            "embedding-dominated: throughput is pinned to the flash read "
            "floor, so DRAM capacity is the only reason to stay on the host"
        )
    else:
        reasons.append(
            f"MLP-dominated: Rule Three batches {search.nbatch} samples to "
            "hide the FC stages under the embedding reads"
        )
    if spilled:
        reasons.append(
            f"{len(spilled)} layer(s) stream weights from device DRAM "
            "(double-buffered; throughput-neutral while embedding-bound)"
        )

    return Advice(
        model_name=config.name,
        dominated_by=dominated,
        rmssd_qps=rmssd_qps,
        dram_qps_batch1=dram_1,
        dram_qps_batched=dram_b,
        device_nbatch=search.nbatch,
        fits_low_end=fits,
        spilled_layers=spilled,
        embedding_bytes_paper=config.paper_rows_per_table()
        * config.num_tables
        * config.ev_size,
        recommendation=recommendation,
        reasons=reasons,
    )
