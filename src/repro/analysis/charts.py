"""ASCII chart rendering.

The benchmark harness reproduces *figures*; tables carry the numbers,
but a bar or line view makes the shape comparison with the paper's
plots immediate in a terminal.  Pure-text, no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

BAR_FILL = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
    log: bool = False,
) -> str:
    """Horizontal bar chart; optionally log-scaled bar lengths."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    if not labels:
        raise ValueError("empty chart")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    import math

    def scale(v: float) -> float:
        if not log:
            return v
        return math.log10(1.0 + v)

    peak = max(scale(v) for v in values) or 1.0
    label_width = max(len(l) for l in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in zip(labels, values):
        bar = BAR_FILL * max(1 if value > 0 else 0, round(scale(value) / peak * width))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 12,
    title: str = "",
    log: bool = False,
) -> str:
    """Multi-series character plot (one glyph per series).

    X positions are the given categories (evenly spaced); Y is scaled
    to the global max (optionally log10).
    """
    if not series:
        raise ValueError("no series")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must match the x axis length")
    import math

    def scale(v: float) -> float:
        if not log:
            return v
        return math.log10(1.0 + max(v, 0.0))

    glyphs = "ox*+sd^v"
    all_values = [scale(v) for vs in series.values() for v in vs]
    peak = max(all_values) or 1.0
    floor = min(all_values) if log else 0.0
    span = (peak - floor) or 1.0

    columns = len(x_labels)
    col_width = max(6, max(len(x) for x in x_labels) + 2)
    grid = [[" "] * (columns * col_width) for _ in range(height)]
    for series_index, (name, values) in enumerate(series.items()):
        glyph = glyphs[series_index % len(glyphs)]
        for i, value in enumerate(values):
            row = height - 1 - round((scale(value) - floor) / span * (height - 1))
            col = i * col_width + col_width // 2
            grid[row][col] = glyph
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * (columns * col_width))
    axis = "".join(x.center(col_width) for x in x_labels)
    lines.append(" " + axis)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"  [{legend}]" + ("  (log y)" if log else ""))
    return "\n".join(lines)
