"""Reporting helpers used by the benchmark harness."""

from repro.analysis.metrics import geometric_mean, speedup, throughput_qps
from repro.analysis.report import Table, emit, format_seconds, format_si

__all__ = [
    "Table",
    "emit",
    "format_seconds",
    "format_si",
    "geometric_mean",
    "speedup",
    "throughput_qps",
]
