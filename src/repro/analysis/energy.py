"""Energy model (extension).

The paper motivates its resource frugality with power: "high power
consumption often leads to high temperature, which could be detrimental
to SSD lifetime" (Section III-B3) — but reports no energy numbers.
This extension attaches a simple per-operation energy model so the
power argument can be quantified: data movement dominates, so avoiding
host transfers and whole-page reads saves most of the energy.

Per-operation constants are drawn from commonly cited figures
(Horowitz ISSCC'14-era CMOS numbers, NAND datasheets, PCIe PHY
budgets); like the host cost model, they live in one documented place
and feed relative comparisons, not absolute claims.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy costs, in nanojoules."""

    #: NAND page read (sense + flush), per 4 KB page.
    flash_page_read_nj: float = 6_000.0
    #: Channel-bus transfer, per byte.
    flash_bus_nj_per_byte: float = 0.3
    #: PCIe host link, per byte (PHY + SerDes + DMA).
    pcie_nj_per_byte: float = 5.0
    #: Host DRAM access, per byte.
    dram_nj_per_byte: float = 0.6
    #: CPU fp32 op (FLOP, including pipeline overheads).
    cpu_flop_nj: float = 0.5
    #: FPGA fp32 MAC at 200 MHz (two ops).
    fpga_mac_nj: float = 0.02
    #: Static controller/FPGA power while active, watts.
    fpga_static_w: float = 2.0
    #: Static host CPU power attributable to the serving thread, watts.
    cpu_static_w: float = 15.0

    # ------------------------------------------------------------------
    def flash_read_energy_nj(self, pages: int, bus_bytes: int) -> float:
        """Flash sensing plus channel transfer energy."""
        return pages * self.flash_page_read_nj + bus_bytes * self.flash_bus_nj_per_byte

    def vector_read_energy_nj(self, vectors: int, ev_size: int) -> float:
        """Vector-grained reads still sense a whole page per vector but
        only move ``ev_size`` over the bus."""
        return self.flash_read_energy_nj(vectors, vectors * ev_size)

    def host_transfer_energy_nj(self, nbytes: int) -> float:
        return nbytes * self.pcie_nj_per_byte

    def cpu_compute_energy_nj(self, flops: float, elapsed_s: float = 0.0) -> float:
        return flops * self.cpu_flop_nj + self.cpu_static_w * elapsed_s * 1e9

    def fpga_compute_energy_nj(self, macs: float, elapsed_s: float = 0.0) -> float:
        return macs * self.fpga_mac_nj + self.fpga_static_w * elapsed_s * 1e9


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per inference, by component (nanojoules)."""

    flash_nj: float
    host_link_nj: float
    compute_nj: float
    static_nj: float

    @property
    def total_nj(self) -> float:
        return self.flash_nj + self.host_link_nj + self.compute_nj + self.static_nj

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1e3

    def as_dict(self) -> dict:
        return {
            "flash": self.flash_nj,
            "host_link": self.host_link_nj,
            "compute": self.compute_nj,
            "static": self.static_nj,
            "total": self.total_nj,
        }


def rmssd_energy(
    model_macs: int,
    vectors: int,
    ev_size: int,
    result_bytes: int,
    elapsed_s: float,
    energy: EnergyModel = EnergyModel(),
) -> EnergyBreakdown:
    """Per-inference energy of the RM-SSD path."""
    return EnergyBreakdown(
        flash_nj=energy.vector_read_energy_nj(vectors, ev_size),
        host_link_nj=energy.host_transfer_energy_nj(result_bytes),
        compute_nj=energy.fpga_compute_energy_nj(model_macs),
        static_nj=energy.fpga_static_w * elapsed_s * 1e9,
    )


def naive_ssd_energy(
    model_macs: int,
    miss_pages: int,
    hit_bytes: int,
    ev_size: int,
    vectors: int,
    elapsed_s: float,
    energy: EnergyModel = EnergyModel(),
) -> EnergyBreakdown:
    """Per-inference energy of the SSD-S fileIO path."""
    page_bytes = miss_pages * 4096
    return EnergyBreakdown(
        flash_nj=energy.flash_read_energy_nj(miss_pages, page_bytes),
        host_link_nj=energy.host_transfer_energy_nj(page_bytes)
        + hit_bytes * energy.dram_nj_per_byte,
        compute_nj=energy.cpu_compute_energy_nj(
            2.0 * model_macs + vectors * ev_size / 4
        ),
        static_nj=energy.cpu_static_w * elapsed_s * 1e9,
    )
