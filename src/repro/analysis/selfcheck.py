"""Installation self-check (`rmssd-repro selfcheck`).

Runs a fast battery of the reproduction's cornerstone invariants —
the ones that, if broken, invalidate everything downstream — and
reports PASS/FAIL per check.  Meant for adopters to run once after
install, and as a quick smoke in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


def _check_table_ii() -> CheckResult:
    from repro.ssd.timing import SSDTimingModel

    timing = SSDTimingModel()
    ok = (
        abs(timing.page_read_cycles - 4000) < 1e-6
        and abs(timing.vector_read_cycles(128) - 2837.5) < 1e-6
        and 40_000 < timing.random_read_iops_bound(1) < 50_000
    )
    return CheckResult(
        "Table II timing model",
        ok,
        f"Cpage={timing.page_read_cycles:.0f}, CEV(128)="
        f"{timing.vector_read_cycles(128):.1f}",
    )


def _check_numerics() -> CheckResult:
    from repro.core.device import RMSSD
    from repro.models import MODEL_CONFIGS, build_model, get_config

    rng = np.random.default_rng(0)
    for key in MODEL_CONFIGS:
        config = get_config(key)
        model = build_model(config, rows_per_table=48, seed=1)
        device = RMSSD(model, lookups_per_table=min(config.lookups_per_table, 3))
        sparse = [
            [
                list(rng.integers(0, 48, size=min(config.lookups_per_table, 3)))
                for _ in range(config.num_tables)
            ]
        ]
        dense = (
            rng.standard_normal((1, config.dense_dim)).astype(np.float32)
            if config.dense_dim
            else None
        )
        outputs, _ = device.infer_batch(dense, sparse)
        reference = model.forward(dense, sparse)
        if not np.allclose(outputs, reference, rtol=1e-5, atol=1e-6):
            return CheckResult(
                "in-storage numerics", False, f"{key} outputs diverge"
            )
    return CheckResult(
        "in-storage numerics", True, "all 5 models match the host reference"
    )


def _check_table_v() -> CheckResult:
    from repro.core.lookup_engine import flash_read_cycles
    from repro.fpga.decompose import decompose_model
    from repro.fpga.search import kernel_search
    from repro.models import build_model, get_config
    from repro.ssd.geometry import SSDGeometry
    from repro.ssd.timing import SSDTimingModel

    expected = {
        "rmc1": {"Lb0": "4x2", "Lb1": "2x4", "Lb": "4x2", "Le": "4x2",
                 "Lt1": "2x4", "Lt2": "4x1"},
        "rmc3": {"Lb0": "16x8", "Lb1": "8x2", "Lb2": "2x4", "Lb": "4x2",
                 "Le": "4x2", "Lt1": "2x4", "Lt2": "4x1"},
    }
    for key, kernels in expected.items():
        config = get_config(key)
        model = build_model(config, rows_per_table=16)
        dec = decompose_model(model, config.lookups_per_table)
        flash = flash_read_cycles(
            dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
            config.ev_size,
        )
        result = kernel_search(dec, flash)
        got = {name: str(k) for name, k in result.kernels.items()}
        if got != kernels:
            return CheckResult("Table V kernel search", False, f"{key}: {got}")
    return CheckResult("Table V kernel search", True, "RMC1/RMC3 exact")


def _check_ladder() -> CheckResult:
    from repro.baselines import (
        EMBPageSumBackend,
        EMBVectorSumBackend,
        NaiveSSDBackend,
    )
    from repro.models import build_model, get_config
    from repro.workloads.inputs import RequestGenerator

    config = get_config("rmc1")
    model = build_model(config, rows_per_table=1024, seed=0)
    requests = RequestGenerator(config, 1024, seed=1).requests(3, 1)
    times = {}
    for backend in (
        NaiveSSDBackend(model, 0.25),
        EMBPageSumBackend(model),
        EMBVectorSumBackend(model),
    ):
        times[backend.name] = backend.run(requests, compute=False).embedding_ns
    ok = times["SSD-S"] > times["EMB-PageSum"] > times["EMB-VectorSum"]
    return CheckResult(
        "in-storage ladder ordering",
        ok,
        " > ".join(f"{k}" for k in ("SSD-S", "EMB-PageSum", "EMB-VectorSum")),
    )


def _check_pipeline_model() -> CheckResult:
    from repro.core.pipeline_sim import PipelineSimulator

    pipe = PipelineSimulator(emb_ns=100, bot_ns=60, top_ns=40)
    run = pipe.run(16)
    ok = abs(run.steady_interval_ns - 100) < 2
    return CheckResult(
        "Eq. 1 pipeline model", ok,
        f"steady interval {run.steady_interval_ns:.1f} ns (expect 100)",
    )


ALL_CHECKS: List[Callable[[], CheckResult]] = [
    _check_table_ii,
    _check_numerics,
    _check_table_v,
    _check_ladder,
    _check_pipeline_model,
]


def run_selfcheck(verbose: bool = True) -> List[CheckResult]:
    """Run every check; returns the results (and prints when verbose)."""
    results = []
    for check in ALL_CHECKS:
        try:
            result = check()
        except Exception as error:  # surface, don't crash the battery
            result = CheckResult(check.__name__, False, f"raised {error!r}")
        results.append(result)
        if verbose:
            status = "PASS" if result.passed else "FAIL"
            print(f"[{status}] {result.name}: {result.detail}")
    if verbose:
        failed = sum(1 for r in results if not r.passed)
        print(
            f"\n{len(results) - failed}/{len(results)} checks passed"
            + ("" if not failed else f" — {failed} FAILED")
        )
    return results
