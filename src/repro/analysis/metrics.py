"""Small metric helpers shared by benchmarks and tests."""

from __future__ import annotations

from math import exp, log
from typing import Sequence


def throughput_qps(inferences: int, elapsed_ns: float) -> float:
    """Queries (samples) per second."""
    if elapsed_ns <= 0:
        raise ValueError("elapsed time must be positive")
    return inferences / (elapsed_ns / 1e9)


def speedup(baseline_ns: float, improved_ns: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved_ns <= 0:
        raise ValueError("improved time must be positive")
    return baseline_ns / improved_ns


def latency_reduction(baseline_ns: float, improved_ns: float) -> float:
    """Fractional latency cut (the paper's "97% latency reduction")."""
    if baseline_ns <= 0:
        raise ValueError("baseline time must be positive")
    return 1.0 - improved_ns / baseline_ns


def percentile(values: Sequence[float], q: float, presorted: bool = False) -> float:
    """The q-th percentile (0-100) by linear interpolation.

    Used for tail-latency reporting (p95/p99) of per-request latencies
    collected from the discrete-event simulator.  ``presorted=True``
    skips the sort for callers that take several percentiles of the
    same sample (the caller guarantees ascending order).
    """
    values = list(values) if presorted else sorted(values)
    if not values:
        raise ValueError("empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if len(values) == 1:
        return values[0]
    position = (len(values) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(values) - 1)
    fraction = position - lower
    return values[lower] * (1 - fraction) + values[upper] * fraction


def geometric_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return exp(sum(log(v) for v in values) / len(values))
