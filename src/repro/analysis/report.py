"""Plain-text table rendering for the benchmark harness.

Each ``bench_*`` module prints the rows/series of its paper figure or
table through these helpers, so the harness output can be compared to
the paper side by side (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence


def format_si(value: float, digits: int = 3) -> str:
    """1234567 -> '1.23M'."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.{digits - 1}f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.{digits}g}"


def format_seconds(ns: float) -> str:
    """Nanoseconds -> human-readable duration.

    Sign-preserving, and sub-nanosecond values keep their significant
    digits instead of rounding to ``0ns`` (per-cycle quantities at
    multi-GHz clocks are fractions of a nanosecond).
    """
    if ns < 0:
        return "-" + format_seconds(-ns)
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    if ns >= 1 or ns == 0:
        return f"{ns:.0f}ns"
    return f"{ns:.3g}ns"


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        emit(self.render())


def stage_breakdown_table(
    title: str,
    breakdown: Dict[str, float],
    per_inference: Optional[int] = None,
) -> Table:
    """Fig. 11-style stage-time breakdown as a :class:`Table`.

    ``breakdown`` maps stage name to accumulated simulated
    nanoseconds; rows are sorted largest-first with each stage's share
    of the stage-time sum (stages overlap under pipelining, so the sum
    exceeds wall time — the shares say where the work went, not where
    the wall clock went).  ``per_inference`` additionally amortizes
    each stage over that many inferences.
    """
    columns = ["stage", "time", "share"]
    if per_inference:
        columns.append("per-inference")
    table = Table(title, columns)
    total = sum(breakdown.values())
    for stage, value in sorted(breakdown.items(), key=lambda kv: (-kv[1], kv[0])):
        row = [
            stage,
            format_seconds(value),
            f"{value / total:.1%}" if total else "-",
        ]
        if per_inference:
            row.append(format_seconds(value / per_inference))
        table.add_row(*row)
    row = ["(sum)", format_seconds(total), "100.0%" if total else "-"]
    if per_inference:
        row.append(format_seconds(total / per_inference))
    table.add_row(*row)
    return table


def emit(*blocks: Any) -> None:
    """Shared stdout sink for the benchmark harness.

    Every ``bench_*`` module routes its output (tables, ASCII charts)
    through here instead of bare ``print`` — the lint pass (rule R6)
    enforces it — so harness output stays uniform and there is exactly
    one place to redirect when the reports grow a file/JSON sink.
    """
    for block in blocks:
        print()
        print(block)
    print()


def emit_json(name: str, payload: dict, directory: str = ".") -> str:
    """Write a machine-readable result file ``BENCH_<name>.json``.

    Companion to :func:`emit` for benchmarks whose numbers feed
    automated gates (e.g. the fast-path speedup check).  Returns the
    written path and emits a pointer line so the text output records
    where the JSON went.
    """
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"wrote {path}")
    return path
