"""Model serialization.

``RM_create_table`` persists table ownership on the device; a usable
library also needs to persist the *model* itself.  ``save_model`` /
``load_model`` round-trip any zoo model through a single ``.npz``
archive (weights, biases, embedding tables, and enough architecture
metadata to rebuild the object), bit-exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

import numpy as np

from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.models.dlrm import DLRM
from repro.models.layers import Activation, FCLayer
from repro.models.mlp import MLP
from repro.models.ncf import NCF
from repro.models.wnd import WideAndDeep

FORMAT_VERSION = 1


def _pack_mlp(prefix: str, mlp: MLP, arrays: dict, meta: list) -> None:
    for i, layer in enumerate(mlp.layers):
        arrays[f"{prefix}_w{i}"] = layer.weight
        arrays[f"{prefix}_b{i}"] = layer.bias
        meta.append(layer.activation.value)


def _unpack_mlp(prefix: str, arrays, meta: List[str]) -> MLP:
    layers = []
    for i, activation in enumerate(meta):
        weight = arrays[f"{prefix}_w{i}"]
        bias = arrays[f"{prefix}_b{i}"]
        layers.append(
            FCLayer(
                weight.shape[0],
                weight.shape[1],
                activation=Activation(activation),
                weight=weight,
                bias=bias,
            )
        )
    return MLP(layers)


def _pack_tables(tables: EmbeddingTableSet, arrays: dict) -> list:
    names = []
    for i, table in enumerate(tables):
        arrays[f"table_{i}"] = table.data
        names.append(table.name)
    return names


def _unpack_tables(arrays, names: List[str]) -> EmbeddingTableSet:
    tables = []
    for i, name in enumerate(names):
        data = arrays[f"table_{i}"]
        tables.append(
            EmbeddingTable(name, data.shape[0], data.shape[1], data=data)
        )
    return EmbeddingTableSet(tables)


def save_model(model, path) -> Path:
    """Serialize a DLRM / NCF / WideAndDeep to one ``.npz`` archive."""
    if not isinstance(model, (DLRM, NCF, WideAndDeep)):
        raise TypeError(f"cannot serialize {type(model).__name__}")
    path = Path(path)
    arrays: dict = {}
    header = {"version": FORMAT_VERSION, "kind": type(model).__name__,
              "name": model.name}
    if isinstance(model, DLRM):
        bottom_meta: list = []
        top_meta: list = []
        _pack_mlp("bottom", model.bottom, arrays, bottom_meta)
        _pack_mlp("top", model.top, arrays, top_meta)
        header.update(
            bottom=bottom_meta, top=top_meta, pooling=model.pooling,
            tables=_pack_tables(model.tables, arrays),
        )
    elif isinstance(model, NCF):
        tower_meta: list = []
        _pack_mlp("tower", model.mlp_tower, arrays, tower_meta)
        arrays["predict_w"] = model.predict.weight
        arrays["predict_b"] = model.predict.bias
        header.update(
            tower=tower_meta, dim=model.dim,
            tables=_pack_tables(model.tables, arrays),
        )
    elif isinstance(model, WideAndDeep):
        deep_meta: list = []
        _pack_mlp("deep", model.deep, arrays, deep_meta)
        arrays["deep_head_w"] = model.deep_head.weight
        arrays["deep_head_b"] = model.deep_head.bias
        arrays["wide_w"] = model.wide.weight
        arrays["wide_b"] = model.wide.bias
        header.update(
            deep=deep_meta, dense_dim=model.dense_dim,
            tables=_pack_tables(model.tables, arrays),
        )
    else:
        raise TypeError(f"cannot serialize {type(model).__name__}")
    arrays["_header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(path):
    """Rebuild a model saved with :func:`save_model` (bit-exact)."""
    with np.load(Path(path)) as arrays:
        header = json.loads(bytes(arrays["_header"]).decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported format version {header.get('version')}")
        kind = header["kind"]
        if kind == "DLRM":
            tables = _unpack_tables(arrays, header["tables"])
            return DLRM(
                header["name"],
                tables,
                _unpack_mlp("bottom", arrays, header["bottom"]),
                _unpack_mlp("top", arrays, header["top"]),
                pooling=header["pooling"],
            )
        if kind == "NCF":
            tables = _unpack_tables(arrays, header["tables"])
            model = NCF(
                num_users=tables[0].rows,
                num_items=tables[1].rows,
                dim=header["dim"],
                tower_widths=tuple(
                    arrays[f"tower_w{i}"].shape[1]
                    for i in range(len(header["tower"]))
                ),
                name=header["name"],
            )
            model.tables = tables
            model.mlp_tower = _unpack_mlp("tower", arrays, header["tower"])
            predict_w = arrays["predict_w"]
            model.predict = FCLayer(
                predict_w.shape[0], predict_w.shape[1],
                activation=Activation.SIGMOID,
                weight=predict_w, bias=arrays["predict_b"],
            )
            return model
        if kind == "WideAndDeep":
            tables = _unpack_tables(arrays, header["tables"])
            model = WideAndDeep(
                tables,
                dense_dim=header["dense_dim"],
                deep_widths=tuple(
                    arrays[f"deep_w{i}"].shape[1]
                    for i in range(len(header["deep"]))
                ),
                name=header["name"],
            )
            model.deep = _unpack_mlp("deep", arrays, header["deep"])
            head_w = arrays["deep_head_w"]
            model.deep_head = FCLayer(
                head_w.shape[0], head_w.shape[1],
                activation=Activation.NONE,
                weight=head_w, bias=arrays["deep_head_b"],
            )
            wide_w = arrays["wide_w"]
            model.wide = FCLayer(
                wide_w.shape[0], wide_w.shape[1],
                activation=Activation.NONE,
                weight=wide_w, bias=arrays["wide_b"],
            )
            return model
        raise ValueError(f"unknown model kind {kind!r}")
