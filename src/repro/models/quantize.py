"""Post-training int8 quantization (extension study).

The paper keeps MLP weights and embeddings in FP32: "the recommendation
model is much more sensitive to accuracy than other DNN models.
Therefore, we still keep the MLP weights and embedding vectors in FP32
precision without any quantization" (Section IV-C1).  This module
implements the alternative so the trade-off can be *measured*: symmetric
per-tensor int8 weight quantization of FC layers, the induced CTR
error, and the FPGA resource saving it would have bought.

Used by ``benchmarks/bench_ext_quantization.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.models.dlrm import DLRM
from repro.models.layers import FCLayer
from repro.models.mlp import MLP


@dataclass(frozen=True)
class QuantizationReport:
    """Error statistics of a quantized model vs its fp32 reference."""

    max_abs_error: float
    mean_abs_error: float
    max_rel_error: float
    flipped_rankings: int  # pairs whose CTR order inverted
    samples: int

    @property
    def flip_rate(self) -> float:
        pairs = self.samples * (self.samples - 1) // 2
        return self.flipped_rankings / pairs if pairs else 0.0


def quantize_weight(weight: np.ndarray) -> tuple:
    """Symmetric per-tensor int8 quantization: returns ``(q, scale)``."""
    weight = np.asarray(weight, dtype=np.float32)
    max_abs = float(np.max(np.abs(weight)))
    if max_abs == 0.0:
        return np.zeros(weight.shape, dtype=np.int8), 1.0
    scale = max_abs / 127.0
    q = np.clip(np.round(weight / scale), -127, 127).astype(np.int8)
    return q, scale


def dequantize_layer(layer: FCLayer) -> FCLayer:
    """An FC layer whose weights went through an int8 round trip.

    The forward math stays fp32 (as a DSP-poor FPGA would accumulate),
    but the weights carry int8 resolution — exactly the error a
    quantized engine would exhibit.
    """
    q, scale = quantize_weight(layer.weight)
    restored = (q.astype(np.float32) * np.float32(scale)).astype(np.float32)
    return FCLayer(
        layer.in_features,
        layer.out_features,
        activation=layer.activation,
        weight=restored,
        bias=layer.bias.copy(),
    )


def quantize_mlp(mlp: MLP) -> MLP:
    return MLP([dequantize_layer(layer) for layer in mlp.layers])


def quantize_dlrm(model: DLRM) -> DLRM:
    """A DLRM whose bottom and top MLPs carry int8-resolution weights.

    Embedding tables stay fp32 (quantizing them is a separate,
    orthogonal line of work the paper cites — mixed-dimension /
    compositional embeddings).
    """
    return DLRM(
        f"{model.name}-int8",
        model.tables,
        quantize_mlp(model.bottom),
        quantize_mlp(model.top),
        pooling=model.pooling,
    )


def compare_outputs(
    reference: np.ndarray, quantized: np.ndarray
) -> QuantizationReport:
    """Error report between two CTR output vectors."""
    reference = np.asarray(reference, dtype=np.float64).ravel()
    quantized = np.asarray(quantized, dtype=np.float64).ravel()
    if reference.shape != quantized.shape:
        raise ValueError("output shapes differ")
    errors = np.abs(reference - quantized)
    denominator = np.maximum(np.abs(reference), 1e-12)
    flipped = 0
    for i in range(len(reference)):
        for j in range(i + 1, len(reference)):
            ref_order = reference[i] - reference[j]
            q_order = quantized[i] - quantized[j]
            if ref_order * q_order < 0:
                flipped += 1
    return QuantizationReport(
        max_abs_error=float(errors.max()),
        mean_abs_error=float(errors.mean()),
        max_rel_error=float((errors / denominator).max()),
        flipped_rankings=flipped,
        samples=len(reference),
    )


#: Estimated resource scaling of an int8 MAC vs an fp32 MAC on the
#: same fabric: an int8 multiply fits one DSP slice (vs 3) and the
#: adder tree shrinks to ~1/4 the LUTs.
INT8_DSP_FACTOR = 3.0
INT8_LUT_FACTOR = 4.0


def int8_resource_estimate(fp32_usage) -> dict:
    """What the Table VI engine would cost at int8 (rough estimate)."""
    return {
        "lut": int(fp32_usage.lut / INT8_LUT_FACTOR),
        "dsp": int(np.ceil(fp32_usage.dsp / INT8_DSP_FACTOR)),
        "bram": fp32_usage.bram / 4.0,  # weights shrink 4x
        "ff": int(fp32_usage.ff / INT8_LUT_FACTOR),
    }
