"""Recommendation models (NumPy, fp32, inference only).

Implements the model zoo the paper evaluates: Facebook's DLRM in the
RMC1/RMC2/RMC3 configurations of Table III, Neural Collaborative
Filtering (NCF), and Wide & Deep (WnD).  All arithmetic is fp32 without
quantization, matching the paper's accuracy stance.
"""

from repro.models.configs import (
    MODEL_CONFIGS,
    ModelConfig,
    build_model,
    get_config,
)
from repro.models.dlrm import DLRM
from repro.models.layers import Activation, FCLayer
from repro.models.mlp import MLP
from repro.models.ncf import NCF
from repro.models.wnd import WideAndDeep

__all__ = [
    "Activation",
    "DLRM",
    "FCLayer",
    "MLP",
    "MODEL_CONFIGS",
    "ModelConfig",
    "NCF",
    "WideAndDeep",
    "build_model",
    "get_config",
]
