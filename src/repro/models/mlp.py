"""MLP: an ordered chain of fully-connected layers."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.models.layers import Activation, FCLayer


class MLP:
    """A feed-forward stack of :class:`FCLayer`.

    ``MLP.from_widths(288, [256, 64, 1])`` builds layers
    ``288x256 -> 256x64 -> 64x1`` with ReLU between and a configurable
    final activation (sigmoid for a CTR head, none for hidden stacks).
    """

    def __init__(self, layers: Iterable[FCLayer]) -> None:
        self.layers: List[FCLayer] = list(layers)
        if not self.layers:
            raise ValueError("an MLP needs at least one layer")
        for upstream, downstream in zip(self.layers, self.layers[1:]):
            if upstream.out_features != downstream.in_features:
                raise ValueError(
                    f"layer width mismatch: {upstream!r} -> {downstream!r}"
                )

    @classmethod
    def from_widths(
        cls,
        input_dim: int,
        widths: Sequence[int],
        final_activation: Activation = Activation.RELU,
        seed: int = 0,
    ) -> "MLP":
        if not widths:
            raise ValueError("widths must be non-empty")
        layers = []
        previous = input_dim
        for position, width in enumerate(widths):
            is_last = position == len(widths) - 1
            layers.append(
                FCLayer(
                    previous,
                    width,
                    activation=final_activation if is_last else Activation.RELU,
                    seed=seed + position,
                )
            )
            previous = width
        return cls(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    __call__ = forward

    @property
    def input_dim(self) -> int:
        return self.layers[0].in_features

    @property
    def output_dim(self) -> int:
        return self.layers[-1].out_features

    @property
    def macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    def shapes(self) -> List[tuple]:
        """``(R, C)`` per layer — input to the FPGA kernel model."""
        return [(layer.in_features, layer.out_features) for layer in self.layers]

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        chain = "-".join(str(l.out_features) for l in self.layers)
        return f"MLP({self.input_dim}-{chain})"
