"""Model configurations (Table III) and builders.

Table III of the paper:

====== ============== =========== === ====== ======= ========
Model  Bottom MLP     Top MLP     DIM Tables Lookups MLP size
====== ============== =========== === ====== ======= ========
RMC1   128-64-32      256-64-1    32  8      80      0.39 MB
RMC2   256-128-64     128-64-1    64  32     120     1.23 MB
RMC3   2560-1024-...  512-256-1   32  10     20      12.23 MB
====== ============== =========== === ====== ======= ========

The first number of the bottom chain is the dense-feature input width;
the top chain's input is the feature-interaction width
``tables * dim + bottom_out`` (e.g. 8*32+32 = 288 for RMC1).  With that
reading the fp32 parameter totals come out at 0.40/1.28/12.8 MB —
matching the paper's MLP-size column to within rounding.

The paper sets every model's total embedding capacity to 30 GB; here
tables are materialized at a configurable ``rows_per_table`` and the
scale factor is recorded (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.embedding.table import EmbeddingTableSet
from repro.models.dlrm import DLRM
from repro.models.layers import Activation
from repro.models.mlp import MLP
from repro.models.ncf import NCF
from repro.models.wnd import WideAndDeep

#: The paper's per-model embedding capacity (Section VI-A).
PAPER_EMBEDDING_BYTES = 30 * (1 << 30)


@dataclass(frozen=True)
class ModelConfig:
    """Architecture plus workload shape for one evaluated model."""

    name: str
    kind: str  # "dlrm" | "ncf" | "wnd"
    dim: int
    num_tables: int
    lookups_per_table: int
    bottom_widths: Tuple[int, ...] = ()
    top_widths: Tuple[int, ...] = ()
    dense_dim: int = 0

    @property
    def ev_size(self) -> int:
        return self.dim * 4

    @property
    def is_mlp_dominated(self) -> bool:
        """RMC3, NCF, WnD in the paper's taxonomy."""
        return self.lookups_per_table * self.num_tables <= 200

    @property
    def lookups_per_inference(self) -> int:
        return self.lookups_per_table * self.num_tables

    def paper_rows_per_table(self) -> int:
        """Rows each table would have at the paper's 30 GB capacity."""
        return PAPER_EMBEDDING_BYTES // (self.num_tables * self.ev_size)


def _dlrm_config(
    name: str,
    bottom: Tuple[int, ...],
    top: Tuple[int, ...],
    dim: int,
    tables: int,
    lookups: int,
) -> ModelConfig:
    return ModelConfig(
        name=name,
        kind="dlrm",
        dim=dim,
        num_tables=tables,
        lookups_per_table=lookups,
        bottom_widths=bottom,
        top_widths=top,
        dense_dim=bottom[0],
    )


MODEL_CONFIGS: Dict[str, ModelConfig] = {
    "rmc1": _dlrm_config("RMC1", (128, 64, 32), (256, 64, 1), dim=32, tables=8, lookups=80),
    "rmc2": _dlrm_config("RMC2", (256, 128, 64), (128, 64, 1), dim=64, tables=32, lookups=120),
    "rmc3": _dlrm_config(
        "RMC3", (2560, 1024, 256, 32), (512, 256, 1), dim=32, tables=10, lookups=20
    ),
    "ncf": ModelConfig(
        name="NCF",
        kind="ncf",
        dim=64,
        num_tables=4,
        lookups_per_table=1,
        top_widths=(256, 128, 64),
        dense_dim=0,
    ),
    "wnd": ModelConfig(
        name="WnD",
        kind="wnd",
        dim=64,
        num_tables=26,
        lookups_per_table=1,
        top_widths=(1024, 512, 256),
        dense_dim=13,
    ),
}


def get_config(name: str) -> ModelConfig:
    try:
        return MODEL_CONFIGS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(MODEL_CONFIGS)}"
        ) from None


def build_model(
    config: ModelConfig,
    rows_per_table: int = 4096,
    seed: int = 0,
    pooling: str = "sum",
):
    """Materialize a model at a (scaled-down) embedding capacity.

    Returns a DLRM, NCF, or WideAndDeep instance whose ``tables`` hold
    ``rows_per_table`` rows each.  ``pooling`` ("sum" or "mean")
    selects the DLRM embedding pooling operator; NCF and WnD perform
    single lookups, where the two coincide.
    """
    if rows_per_table < 1:
        raise ValueError("rows_per_table must be positive")
    if config.kind == "dlrm":
        tables = EmbeddingTableSet.uniform(
            config.num_tables, rows_per_table, config.dim, seed=seed
        )
        dense_dim = config.bottom_widths[0]
        bottom = MLP.from_widths(
            dense_dim, list(config.bottom_widths[1:]), seed=seed + 100
        )
        top_in = config.num_tables * config.dim + bottom.output_dim
        top = MLP.from_widths(
            top_in,
            list(config.top_widths),
            final_activation=Activation.SIGMOID,
            seed=seed + 200,
        )
        return DLRM(config.name, tables, bottom, top, pooling=pooling)
    if config.kind == "ncf":
        return NCF(
            num_users=rows_per_table,
            num_items=rows_per_table,
            dim=config.dim,
            tower_widths=config.top_widths,
            seed=seed,
            name=config.name,
        )
    if config.kind == "wnd":
        tables = EmbeddingTableSet.uniform(
            config.num_tables, rows_per_table, config.dim, seed=seed
        )
        return WideAndDeep(
            tables,
            dense_dim=config.dense_dim,
            deep_widths=config.top_widths,
            seed=seed,
            name=config.name,
        )
    raise ValueError(f"unknown model kind {config.kind!r}")
