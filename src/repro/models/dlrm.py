"""DLRM: Facebook's deep learning recommendation model (Fig. 1).

Dense features flow through the bottom MLP; sparse features are pooled
per embedding table with SparseLengthSum; feature interaction
concatenates the bottom-MLP output with the pooled embedding vectors;
the top MLP produces the click-through-rate.

The feature-interaction operator here is concatenation, which is the
variant the paper maps onto the FPGA (its intra-layer decomposition in
Section IV-C2 relies on the top MLP's first layer consuming the
concatenated ``[bottom_out | pooled embeddings]`` vector).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.embedding.pooling import POOLING_MEAN, POOLING_SUM, sls_all_tables
from repro.embedding.table import EmbeddingTableSet
from repro.models.mlp import MLP

#: ``batch_sparse[sample][table]`` is the list of lookup indices.
SparseBatch = Sequence[Sequence[Sequence[int]]]


class DLRM:
    """A DLRM instance: bottom MLP + embedding tables + top MLP."""

    def __init__(
        self,
        name: str,
        tables: EmbeddingTableSet,
        bottom: MLP,
        top: MLP,
        pooling: str = POOLING_SUM,
    ) -> None:
        expected_top_in = len(tables) * tables.dim + bottom.output_dim
        if top.input_dim != expected_top_in:
            raise ValueError(
                f"top MLP input {top.input_dim} != concat width {expected_top_in} "
                f"({len(tables)} tables x dim {tables.dim} + bottom out "
                f"{bottom.output_dim})"
            )
        if pooling not in (POOLING_SUM, POOLING_MEAN):
            raise ValueError(f"unknown pooling mode {pooling!r}")
        self.name = name
        self.tables = tables
        self.bottom = bottom
        self.top = top
        self.pooling = pooling

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def interact(self, bottom_out: np.ndarray, pooled: np.ndarray) -> np.ndarray:
        """Feature interaction: concatenation (bottom first, Fig. 8)."""
        return np.concatenate([bottom_out, pooled]).astype(np.float32)

    def forward_one(
        self, dense: np.ndarray, sparse: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Single-sample inference; returns the CTR scalar array."""
        bottom_out = self.bottom(np.asarray(dense, dtype=np.float32))
        pooled = sls_all_tables(self.tables, sparse, self.pooling)
        return self.top(self.interact(bottom_out, pooled))

    def forward(self, dense_batch: np.ndarray, sparse_batch: SparseBatch) -> np.ndarray:
        """Batched inference: ``batch x dense_dim`` -> ``batch x 1``."""
        dense_batch = np.asarray(dense_batch, dtype=np.float32)
        if dense_batch.ndim != 2:
            raise ValueError("dense_batch must be 2-D (batch x dense_dim)")
        if len(dense_batch) != len(sparse_batch):
            raise ValueError("dense and sparse batch sizes differ")
        return np.stack(
            [
                self.forward_one(dense, sparse)
                for dense, sparse in zip(dense_batch, sparse_batch)
            ]
        )

    __call__ = forward

    # ------------------------------------------------------------------
    # Introspection for the ISC mapping
    # ------------------------------------------------------------------
    @property
    def dense_dim(self) -> int:
        return self.bottom.input_dim

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def embedding_out_dim(self) -> int:
        return self.num_tables * self.tables.dim

    @property
    def mlp_weight_bytes(self) -> int:
        """Table III's "MLP size" column."""
        return self.bottom.weight_bytes + self.top.weight_bytes

    def fc_shapes_bottom(self) -> List[tuple]:
        return self.bottom.shapes()

    def fc_shapes_top(self) -> List[tuple]:
        return self.top.shapes()

    def __repr__(self) -> str:
        return (
            f"DLRM({self.name!r}, bottom={self.bottom!r}, top={self.top!r}, "
            f"tables={self.num_tables}x{self.tables.dim})"
        )
