"""Fully-connected layers and activations."""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np


class Activation(Enum):
    """Supported activations: ReLU for hidden layers, sigmoid for CTR."""

    NONE = "none"
    RELU = "relu"
    SIGMOID = "sigmoid"

    def apply(self, x: np.ndarray) -> np.ndarray:
        if self is Activation.NONE:
            return x
        if self is Activation.RELU:
            return np.maximum(x, np.float32(0.0))
        # Sigmoid, computed in fp32.
        return (1.0 / (1.0 + np.exp(-x.astype(np.float32)))).astype(np.float32)


class FCLayer:
    """One fully-connected layer: ``y = act(x @ W + b)``.

    ``in_features`` is the paper's ``R`` and ``out_features`` its ``C``
    (Table I); the FPGA kernel model consumes exactly these two numbers.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Activation = Activation.RELU,
        seed: Optional[int] = 0,
        weight: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        if weight is not None:
            weight = np.asarray(weight, dtype=np.float32)
            if weight.shape != (in_features, out_features):
                raise ValueError(
                    f"weight shape {weight.shape} != ({in_features}, {out_features})"
                )
            self.weight = weight
        else:
            rng = np.random.default_rng(seed)
            scale = np.sqrt(2.0 / in_features)  # He init, as DLRM uses for ReLU
            self.weight = (
                rng.standard_normal((in_features, out_features)) * scale
            ).astype(np.float32)
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float32)
            if bias.shape != (out_features,):
                raise ValueError(f"bias shape {bias.shape} != ({out_features},)")
            self.bias = bias
        else:
            self.bias = np.zeros(out_features, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"input width {x.shape[1]} != layer in_features {self.in_features}"
            )
        y = self.activation.apply((x @ self.weight + self.bias).astype(np.float32))
        return y[0] if squeeze else y

    __call__ = forward

    @property
    def macs(self) -> int:
        """Multiply-accumulates per sample: ``R * C``."""
        return self.in_features * self.out_features

    @property
    def weight_bytes(self) -> int:
        return (self.weight.size + self.bias.size) * 4

    def __repr__(self) -> str:
        return (
            f"FCLayer({self.in_features}x{self.out_features}, "
            f"{self.activation.value})"
        )
