"""Neural Collaborative Filtering (He et al., WWW'17).

NCF is the paper's extreme MLP-dominated case (Fig. 15): it performs
exactly **one** embedding lookup per table (user and item ids) and
spends the rest of the inference in MLP compute.

The model has two towers sharing nothing:

* **GMF** — element-wise product of user and item GMF embeddings;
* **MLP** — concatenation of user and item MLP embeddings through a
  pyramid MLP;

and a final prediction layer over the concatenated tower outputs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.models.layers import Activation, FCLayer
from repro.models.mlp import MLP

# Table order within the sparse input: one lookup per table per sample.
USER_GMF, ITEM_GMF, USER_MLP, ITEM_MLP = range(4)


class NCF:
    """NCF with GMF + MLP towers over four embedding tables."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        dim: int = 64,
        tower_widths: Sequence[int] = (256, 128, 64),
        seed: int = 0,
        name: str = "NCF",
    ) -> None:
        self.name = name
        self.dim = dim
        self.tables = EmbeddingTableSet(
            [
                EmbeddingTable("user_gmf", num_users, dim, seed=seed),
                EmbeddingTable("item_gmf", num_items, dim, seed=seed + 1),
                EmbeddingTable("user_mlp", num_users, dim, seed=seed + 2),
                EmbeddingTable("item_mlp", num_items, dim, seed=seed + 3),
            ]
        )
        self.mlp_tower = MLP.from_widths(2 * dim, list(tower_widths), seed=seed + 10)
        self.predict = FCLayer(
            dim + self.mlp_tower.output_dim,
            1,
            activation=Activation.SIGMOID,
            seed=seed + 20,
        )

    # NCF consumes no dense features.
    dense_dim = 0

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def forward_one(
        self, dense: np.ndarray, sparse: Sequence[Sequence[int]]
    ) -> np.ndarray:
        if len(sparse) != 4:
            raise ValueError("NCF expects 4 index lists (one per table)")
        for indices in sparse:
            if len(indices) != 1:
                raise ValueError("NCF performs exactly one lookup per table")
        user_gmf = self.tables[USER_GMF].row(sparse[USER_GMF][0])
        item_gmf = self.tables[ITEM_GMF].row(sparse[ITEM_GMF][0])
        user_mlp = self.tables[USER_MLP].row(sparse[USER_MLP][0])
        item_mlp = self.tables[ITEM_MLP].row(sparse[ITEM_MLP][0])
        gmf_out = (user_gmf * item_gmf).astype(np.float32)
        mlp_out = self.mlp_tower(np.concatenate([user_mlp, item_mlp]))
        return self.predict(np.concatenate([gmf_out, mlp_out]))

    def forward(self, dense_batch: np.ndarray, sparse_batch) -> np.ndarray:
        return np.stack(
            [self.forward_one(None, sparse) for sparse in sparse_batch]
        )

    __call__ = forward

    # ------------------------------------------------------------------
    # ISC mapping: NCF is all "top" MLP (no dense bottom chain).
    # ------------------------------------------------------------------
    @property
    def embedding_out_dim(self) -> int:
        return self.num_tables * self.dim

    @property
    def mlp_weight_bytes(self) -> int:
        return self.mlp_tower.weight_bytes + self.predict.weight_bytes

    def fc_shapes_bottom(self) -> List[tuple]:
        return []

    def fc_shapes_top(self) -> List[tuple]:
        return self.mlp_tower.shapes() + [
            (self.predict.in_features, self.predict.out_features)
        ]

    def __repr__(self) -> str:
        return f"NCF(dim={self.dim}, tower={self.mlp_tower!r})"
