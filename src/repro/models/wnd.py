"""Wide & Deep (Cheng et al., DLRS'16).

The second MLP-dominated model of Fig. 15.  Like NCF it performs one
embedding lookup per table; unlike NCF it also consumes dense features.

* **Deep**: the concatenation of all embedding vectors and the dense
  features runs through a large MLP.
* **Wide**: a linear model over the dense features, added to the deep
  logit before the sigmoid.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.embedding.table import EmbeddingTableSet
from repro.models.layers import Activation, FCLayer
from repro.models.mlp import MLP


class WideAndDeep:
    """Wide & Deep with one lookup per embedding table."""

    def __init__(
        self,
        tables: EmbeddingTableSet,
        dense_dim: int = 13,
        deep_widths: Sequence[int] = (1024, 512, 256),
        seed: int = 0,
        name: str = "WnD",
    ) -> None:
        self.name = name
        self.tables = tables
        self.dense_dim = dense_dim
        deep_in = len(tables) * tables.dim + dense_dim
        self.deep = MLP.from_widths(deep_in, list(deep_widths), seed=seed)
        self.deep_head = FCLayer(
            self.deep.output_dim, 1, activation=Activation.NONE, seed=seed + 50
        )
        self.wide = FCLayer(dense_dim, 1, activation=Activation.NONE, seed=seed + 60)
        self._sigmoid = Activation.SIGMOID

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def dim(self) -> int:
        return self.tables.dim

    def forward_one(
        self, dense: np.ndarray, sparse: Sequence[Sequence[int]]
    ) -> np.ndarray:
        if len(sparse) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} index lists, got {len(sparse)}"
            )
        rows = []
        for table, indices in zip(self.tables, sparse):
            if len(indices) != 1:
                raise ValueError("WnD performs exactly one lookup per table")
            rows.append(table.row(indices[0]))
        dense = np.asarray(dense, dtype=np.float32)
        deep_in = np.concatenate(rows + [dense]).astype(np.float32)
        deep_logit = self.deep_head(self.deep(deep_in))
        wide_logit = self.wide(dense)
        return self._sigmoid.apply(deep_logit + wide_logit)

    def forward(self, dense_batch: np.ndarray, sparse_batch) -> np.ndarray:
        dense_batch = np.asarray(dense_batch, dtype=np.float32)
        if len(dense_batch) != len(sparse_batch):
            raise ValueError("dense and sparse batch sizes differ")
        return np.stack(
            [
                self.forward_one(dense, sparse)
                for dense, sparse in zip(dense_batch, sparse_batch)
            ]
        )

    __call__ = forward

    # ------------------------------------------------------------------
    # ISC mapping: the deep chain is the "top" MLP; the wide part is a
    # single tiny FC folded into the head's stage time.
    # ------------------------------------------------------------------
    @property
    def embedding_out_dim(self) -> int:
        return self.num_tables * self.dim

    @property
    def mlp_weight_bytes(self) -> int:
        return (
            self.deep.weight_bytes
            + self.deep_head.weight_bytes
            + self.wide.weight_bytes
        )

    def fc_shapes_bottom(self) -> List[tuple]:
        return []

    def fc_shapes_top(self) -> List[tuple]:
        return self.deep.shapes() + [
            (self.deep_head.in_features, self.deep_head.out_features)
        ]

    def __repr__(self) -> str:
        return f"WideAndDeep(tables={self.num_tables}x{self.dim}, deep={self.deep!r})"
