"""Runtime invariant checker for the simulation stack ("sanitizer mode").

The simulator promises a handful of physical and temporal invariants
that, until now, lived only in docstrings: the event kernel keeps a
monotonically non-decreasing clock and fires every event at most once
(:mod:`repro.sim.engine`), flash pages are erased before they are
re-programmed and the L2P map stays injective and in-bounds
(:mod:`repro.ssd.flash`, :mod:`repro.ssd.ftl`), per-channel request
accounting conserves requests (enqueued == completed + in-flight), and
:class:`repro.ssd.timing.SSDTimingModel` never hands back a negative
latency.  Violating any of these silently corrupts benchmark numbers
without failing tests — exactly the failure mode RecSSD and MicroRec
warn about for per-stage timing accounts.

Sanitizer mode turns those promises into cheap machine-checked
assertions.  Enable it with ``Simulator(sanitize=True)`` or by setting
``RMSSD_SANITIZE=1`` in the environment (the test suite's conftest does
the latter by default).  The sanitizer is **observation-only**: it
never changes scheduling, timing, statistics, or data — a property
pinned down by a hypothesis test that compares sanitized and
unsanitized runs byte for byte (``tests/test_sanitizer_property.py``).

Violations raise :class:`SanitizerError`, which carries the simulated
timestamp and the offending component so the failure points at the
buggy layer rather than at whatever consumed the corrupted number
later.

See ``docs/correctness.md`` for the full list of invariants.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Dict, Optional, Set

import numpy as np

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.engine import Event, Process, Simulator

#: Environment variable that turns sanitizer mode on for every
#: :class:`~repro.sim.engine.Simulator` constructed without an explicit
#: ``sanitize=`` argument.
ENV_FLAG = "RMSSD_SANITIZE"

_FALSEY = ("", "0", "false", "off", "no")


def sanitize_from_env() -> bool:
    """Whether ``RMSSD_SANITIZE`` asks for sanitizer mode."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in _FALSEY


class SanitizerError(SimulationError):
    """A machine-checked simulation invariant was violated.

    Subclasses :class:`~repro.sim.engine.SimulationError` so existing
    ``except SimulationError`` handlers (and tests) keep working when
    sanitizer mode sharpens a silent misbehaviour into an error.
    """

    def __init__(
        self,
        invariant: str,
        component: str,
        message: str,
        time_ns: Optional[float] = None,
    ) -> None:
        self.invariant = invariant
        self.component = component
        self.time_ns = time_ns
        stamp = "t=?" if time_ns is None else f"t={time_ns:g}ns"
        super().__init__(f"[{invariant}] {component} @ {stamp}: {message}")


class Sanitizer:
    """Invariant checks shared by the kernel and the SSD substrate.

    One instance is owned by a :class:`~repro.sim.engine.Simulator`
    (``sim.sanitizer``); components reached from that simulator attach
    themselves when they are constructed.  All state kept here is
    bookkeeping *about* the simulation, never consulted by it.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Number of individual checks performed (test observability).
        self.checks = 0
        # Flash pages programmed since their last erase.
        self._programmed: Set[int] = set()
        # L2P forward/reverse maps as observed at the FTL boundary.
        self._l2p: Dict[int, int] = {}
        self._p2l: Dict[int, int] = {}
        # Per-channel request accounting: name -> [enqueued, completed].
        self._channels: Dict[str, list] = {}

    # ------------------------------------------------------------------
    # Error plumbing
    # ------------------------------------------------------------------
    def error(self, invariant: str, component: str, message: str) -> None:
        raise SanitizerError(invariant, component, message, time_ns=self.sim.now)

    # ------------------------------------------------------------------
    # Event-kernel invariants
    # ------------------------------------------------------------------
    def check_schedule(self, delay: float) -> None:
        """Scheduling must never target the simulated past."""
        self.checks += 1
        if not (delay >= 0) or math.isnan(delay):
            self.error(
                "monotonic-clock",
                "Simulator",
                f"schedule into the past: delay={delay!r} at now={self.sim.now!r}",
            )

    def check_clock(self, next_time: float) -> None:
        """The head of the event queue must never precede ``now``."""
        self.checks += 1
        if next_time < self.sim.now:
            self.error(
                "monotonic-clock",
                "Simulator",
                f"event queue yielded t={next_time!r} behind now={self.sim.now!r}",
            )

    def on_double_trigger(self, event: "Event") -> None:
        """Events are single-trigger; a second fire is always a bug."""
        self.error(
            "single-trigger",
            type(event).__name__,
            "event triggered more than once",
        )

    def on_dead_resume(self, process: "Process") -> None:
        """A terminated process must never be resumed again."""
        self.error(
            "no-dead-resume",
            type(process).__name__,
            "process resumed after its generator terminated",
        )

    # ------------------------------------------------------------------
    # Timing invariants
    # ------------------------------------------------------------------
    def check_latency(self, component: str, name: str, value_ns: float) -> None:
        """Latencies handed to the kernel must be finite and >= 0."""
        self.checks += 1
        if not (value_ns >= 0) or math.isinf(value_ns) or math.isnan(value_ns):
            self.error(
                "non-negative-latency",
                component,
                f"{name} = {value_ns!r} ns",
            )

    # ------------------------------------------------------------------
    # Flash invariants
    # ------------------------------------------------------------------
    def on_program(self, page_index: int, component: str = "FlashArray") -> None:
        """Erase-before-write: a page may be programmed once per erase."""
        self.checks += 1
        if page_index in self._programmed:
            self.error(
                "erase-before-write",
                component,
                f"page {page_index} programmed twice without an erase",
            )
        self._programmed.add(page_index)

    def on_erase(self, page_index: int) -> None:
        self._programmed.discard(page_index)

    # ------------------------------------------------------------------
    # FTL invariants
    # ------------------------------------------------------------------
    def on_translate(
        self,
        lba: int,
        physical: int,
        total_pages: int,
        component: str = "FlashTranslationLayer",
    ) -> None:
        """The L2P map must stay injective and in device bounds."""
        self.checks += 1
        if not 0 <= physical < total_pages:
            self.error(
                "l2p-in-bounds",
                component,
                f"LBA {lba} mapped to physical page {physical} "
                f"outside [0, {total_pages})",
            )
        mapped_lba = self._p2l.get(physical)
        if mapped_lba is not None and mapped_lba != lba:
            self.error(
                "l2p-injective",
                component,
                f"physical page {physical} mapped by both "
                f"LBA {mapped_lba} and LBA {lba}",
            )
        previous = self._l2p.get(lba)
        if previous is not None and previous != physical:
            # A remap releases the old physical page (trim); forget it
            # so a future LBA may legally claim it.
            self._p2l.pop(previous, None)
        self._l2p[lba] = physical
        self._p2l[physical] = lba

    def on_translate_array(
        self,
        lbas,
        physicals,
        total_pages: int,
        component: str = "FlashTranslationLayer",
    ) -> None:
        """Batched :meth:`on_translate` for the vectorized fast path.

        Checks the same bounds/injectivity invariants; duplicate
        ``(lba, physical)`` pairs within the batch are checked once.
        """
        pairs = np.unique(
            np.stack(
                [
                    np.asarray(lbas, dtype=np.int64),
                    np.asarray(physicals, dtype=np.int64),
                ]
            ),
            axis=1,
        )
        for lba, physical in zip(pairs[0].tolist(), pairs[1].tolist()):
            self.on_translate(lba, physical, total_pages, component=component)

    # ------------------------------------------------------------------
    # Vector-cache invariants
    # ------------------------------------------------------------------
    def vcache_batch(
        self, hits: int, lookups: int, component: str = "VectorCache"
    ) -> None:
        """A batch can never hit the vector cache more than it probes.

        The lookup engine probes the controller-DRAM cache once per
        embedding lookup; ``hits > lookups`` (or a negative count)
        means the cache double-counted a probe, which would silently
        understate flash load in the Fig. 14 comparison.
        """
        self.checks += 1
        if hits < 0 or lookups < 0 or hits > lookups:
            self.error(
                "vcache-hit-bound",
                component,
                f"batch reported {hits} cache hit(s) over {lookups} lookup(s)",
            )

    # ------------------------------------------------------------------
    # Per-channel queue conservation
    # ------------------------------------------------------------------
    def channel_enqueue(self, channel: str) -> None:
        counters = self._channels.setdefault(channel, [0, 0])
        counters[0] += 1

    def channel_complete(self, channel: str) -> None:
        self.checks += 1
        counters = self._channels.setdefault(channel, [0, 0])
        counters[1] += 1
        if counters[1] > counters[0]:
            self.error(
                "queue-conservation",
                channel,
                f"completed {counters[1]} requests but only "
                f"{counters[0]} were enqueued",
            )

    def channel_batch(self, channel: str, count: int) -> None:
        """Account an atomically-replayed fast-path batch.

        The vectorized fast path completes a whole batch in one step,
        so its requests are enqueued and completed together; queue
        conservation still holds at every observable instant.
        """
        self.checks += 1
        counters = self._channels.setdefault(channel, [0, 0])
        counters[0] += count
        counters[1] += count

    def channel_in_flight(self, channel: str) -> int:
        enqueued, completed = self._channels.get(channel, (0, 0))
        return enqueued - completed

    def check_quiescent(self) -> None:
        """At queue drain, every enqueued request must have completed."""
        self.checks += 1
        for channel, (enqueued, completed) in sorted(self._channels.items()):
            if enqueued != completed:
                self.error(
                    "queue-conservation",
                    channel,
                    f"event queue drained with {enqueued - completed} "
                    f"request(s) still in flight "
                    f"(enqueued={enqueued}, completed={completed})",
                )
