"""Shared resources for simulation processes.

Three primitives cover everything the SSD substrate needs:

* :class:`Resource` — counting semaphore with a FIFO wait queue (flash
  dies, DMA engines).
* :class:`Server` — a single FIFO server that processes *jobs* of a
  given service time and tracks busy-time utilization (a flash channel
  bus is a ``Server``).
* :class:`Store` — an unbounded producer/consumer queue of items
  (request queues between controller stages).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.engine import Event, Simulator


class Resource:
    """Counting semaphore with FIFO granting order.

    Named resources report occupancy to an attached utilization
    profiler (``sim.profiler``): a busy interval opens when the first
    unit is taken and closes when the last is returned, and the wait
    queue is sampled whenever an acquire has to queue (lint rule R8
    requires new acquisition sites to construct named resources so
    these reports happen).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        name: Optional[str] = None,
        kind: str = "resource",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.kind = kind
        self._in_use = 0
        self._busy_since = 0.0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Event that fires when a unit of the resource is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            if self._in_use == 0:
                self._busy_since = self.sim.now
            self._in_use += 1
            event.succeed()
        else:
            profiler = self.sim.profiler
            if profiler is not None and profiler.enabled and self.name is not None:
                # Depth seen by this arrival: waiters already queued.
                profiler.record_queue_depth(
                    self.name, self.sim.now, len(self._waiters)
                )
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release without matching acquire")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
            if self._in_use == 0:
                profiler = self.sim.profiler
                if (
                    profiler is not None
                    and profiler.enabled
                    and self.name is not None
                ):
                    profiler.record_busy(
                        self.name, self._busy_since, self.sim.now, self.kind
                    )


class Server:
    """Single FIFO server with busy-time accounting.

    ``serve(duration)`` returns an event that fires when the caller's
    job completes; jobs run back-to-back in arrival order.
    """

    def __init__(
        self, sim: Simulator, name: str = "server", kind: str = "server"
    ) -> None:
        self.sim = sim
        self.name = name
        self.kind = kind
        self._free_at = 0.0
        self.busy_time = 0.0
        self.jobs_served = 0

    @property
    def free_at(self) -> float:
        """When the server finishes its last accepted job (read-only).

        A job offered now starts at ``max(now, free_at)`` — the
        observability layer uses this to separate queueing from
        service time without re-deriving server state.
        """
        return self._free_at

    def serve(self, duration: float) -> Event:
        """Enqueue a job of ``duration``; event fires at completion."""
        if duration < 0:
            raise ValueError("negative service duration")
        start = max(self.sim.now, self._free_at)
        finish = start + duration
        self._free_at = finish
        self.busy_time += duration
        self.jobs_served += 1
        profiler = self.sim.profiler
        if profiler is not None and profiler.enabled:
            profiler.record_service(self.name, self.sim.now, start, finish, self.kind)
        return self.sim.timeout(finish - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time this server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if queued)."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


def drain(sim: Simulator, store: Store, count: int) -> Generator:
    """Process helper: collect ``count`` items from ``store`` into a list."""
    items: List[Any] = []
    for _ in range(count):
        item = yield store.get()
        items.append(item)
    return items
