"""Discrete-event simulation kernel.

A minimal, dependency-free process-based simulator in the style of
SimPy: processes are Python generators that yield *events* (timeouts,
resource acquisitions, other processes) and are resumed when those
events fire.  The SSD substrate (:mod:`repro.ssd`) is built on top of
this kernel; the FPGA engine models are analytic and do not need it.
"""

from repro.sim.engine import AllOf, Event, Process, Simulator, Timeout
from repro.sim.resources import Resource, Server, Store
from repro.sim.sanitizer import Sanitizer, SanitizerError, sanitize_from_env

__all__ = [
    "AllOf",
    "Event",
    "Process",
    "Resource",
    "Sanitizer",
    "SanitizerError",
    "Server",
    "Simulator",
    "Store",
    "Timeout",
    "sanitize_from_env",
]
