"""Core event loop and process machinery.

The simulator keeps a heap of ``(time, sequence, event)`` entries.  An
:class:`Event` may have *callbacks*; when the event fires, callbacks run
in registration order.  A :class:`Process` wraps a generator: each value
the generator yields must be an :class:`Event`, and the process is
resumed (with the event's ``value``) when that event succeeds.

Time is unitless from the kernel's perspective.  The SSD substrate uses
nanoseconds throughout (see :mod:`repro.ssd.timing`).

The kernel's promises (single-trigger events, a monotonically
non-decreasing clock, no resuming a terminated process) can be machine
checked by constructing the simulator with ``sanitize=True`` (or
setting ``RMSSD_SANITIZE=1``); see :mod:`repro.sim.sanitizer`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; :meth:`succeed` (or the simulator firing a
    scheduled event) transitions them to *triggered* exactly once and
    delivers ``value`` to every callback.
    """

    __slots__ = ("sim", "callbacks", "value", "_triggered", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self.value: Any = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event *now*, delivering ``value`` to callbacks."""
        if self._triggered or self._scheduled:
            sanitizer = self.sim.sanitizer
            if sanitizer is not None:
                sanitizer.on_double_trigger(self)
            raise SimulationError("event already triggered")
        self._scheduled = True
        self.value = value
        self.sim._schedule(self, delay=0)
        return self

    def _fire(self) -> None:
        if self._triggered:
            sanitizer = self.sim.sanitizer
            if sanitizer is not None:
                sanitizer.on_double_trigger(self)
            return
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (immediately if fired)."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.value = value
        sim._schedule(self, delay=delay)

    def _fire(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The event ``value`` is the generator's return value (the value of
    its ``StopIteration``), which lets processes wait for each other::

        result = yield sim.process(child())
    """

    __slots__ = ("_generator", "_done")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        self._generator = generator
        self._done = False
        # Kick off on the next scheduling round at the current time.
        bootstrap = Timeout(sim, 0)
        bootstrap.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self._done:
            sanitizer = self.sim.sanitizer
            if sanitizer is not None:
                sanitizer.on_dead_resume(self)
            return
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self._done = True
            if not self._triggered:
                self.value = stop.value
                self.sim._schedule(self, delay=0)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event instances"
            )
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires once every event in ``events`` has fired.

    ``value`` is the list of the constituent events' values, in the
    order the events were given.
    """

    __slots__ = ("_pending", "_values", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        self._values: List[Any] = [None] * len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for i, event in enumerate(self._events):
            event.add_callback(self._make_callback(i))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def callback(event: Event) -> None:
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0 and not self._triggered:
                self.succeed(self._values)

        return callback


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    5
    """

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._queue: List = []
        self._sequence = 0
        # ``None`` defers to the RMSSD_SANITIZE environment flag; the
        # import is deferred to break the engine <-> sanitizer cycle.
        from repro.sim.sanitizer import Sanitizer, sanitize_from_env

        if sanitize is None:
            sanitize = sanitize_from_env()
        self.sanitizer = Sanitizer(self) if sanitize else None
        # Optional utilization profiler (repro.obs.profiler).  ``None``
        # by default so the hot path pays a single attribute load;
        # owners (e.g. repro.core.device.RMSSD) attach an enabled
        # profiler and resources report busy intervals to it.
        self.profiler = None

    def _schedule(self, event: Event, delay: float) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_schedule(delay)
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A bare, manually-triggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or simulated time reaches ``until``."""
        while self._queue:
            time, _seq, event = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            if self.sanitizer is not None:
                self.sanitizer.check_clock(time)
            self.now = time
            event._fire()
        if self.sanitizer is not None:
            self.sanitizer.check_quiescent()
        if until is not None:
            self.now = max(self.now, until)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` when idle."""
        return self._queue[0][0] if self._queue else None
