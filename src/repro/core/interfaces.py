"""Host-side runtime library (Section IV-D).

The paper ships a C++/Cython runtime with four calls; this module is
its Python equivalent over the simulated device:

* ``RM_create_table(TableSize)`` — allocate a table file through the
  block-I/O path (permission-checked, persisted).
* ``RM_open_table(TableID, TablePath)`` — a one-time open that ships
  the file's extent list to the device and returns an fd used as the
  authentication token for later calls.
* ``RM_send_inputs(fd, IndicesPerLookup, SparseIn, DenseIn)`` — push
  one small batch of inference inputs (registers via MMIO, bulk via
  DMA).
* ``RM_read_outputs()`` — poll the status register, then DMA results.

The runtime also implements the system-level throughput optimization:
large host batches are partitioned into device-sized small batches and
the next batch's inputs are pre-sent while the device computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.device import RMSSD, WorkloadResult


class RMPermissionError(PermissionError):
    """Raised when a caller lacks access to a table (Section IV-D)."""


@dataclass
class _OpenTable:
    fd: int
    table_id: int
    owner: str


class RMRuntime:
    """User-space library over one RM-SSD device."""

    def __init__(self, device: RMSSD, user: str = "svc-recsys") -> None:
        self.device = device
        self.user = user
        self._owners: Dict[int, str] = {}
        self._open: Dict[int, _OpenTable] = {}
        self._next_fd = 3  # after stdin/stdout/stderr, like a real fd

    # ------------------------------------------------------------------
    # Table lifecycle
    # ------------------------------------------------------------------
    def rm_create_table(self, table_id: int, owner: Optional[str] = None) -> None:
        """Record ownership of a (already laid-out) table.

        The data write itself went through the normal block path when
        the device laid out the model; creation here persists the
        owner/permission metadata the open path checks.
        """
        if table_id in self._owners:
            raise ValueError(f"table {table_id} already created")
        if table_id not in self.device.layout.layouts:
            raise KeyError(f"table {table_id} does not exist on the device")
        self._owners[table_id] = owner or self.user

    def rm_open_table(self, table_id: int, user: Optional[str] = None) -> int:
        """Authorize and register extent metadata; returns an fd."""
        user = user or self.user
        owner = self._owners.get(table_id)
        if owner is None:
            raise FileNotFoundError(f"table {table_id} was never created")
        if owner != user:
            raise RMPermissionError(
                f"user {user!r} may not open table {table_id} owned by {owner!r}"
            )
        # Ship the extent list over MMIO (already staged in the
        # translator at layout time; account for the transfer).
        ranges = self.device.layout.layout_for(table_id).extent_ranges
        self.device.mmio.dma_to_device(len(ranges) * 24)  # id + range + LBA
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = _OpenTable(fd=fd, table_id=table_id, owner=user)
        return fd

    def _check_fds(self, fds: Sequence[int]) -> None:
        for fd in fds:
            if fd not in self._open:
                raise RMPermissionError(f"invalid fd {fd}")

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def rm_infer(
        self,
        fds: Sequence[int],
        dense_batch: Optional[np.ndarray],
        sparse_batch: Sequence[Sequence[Sequence[int]]],
        pipelined: bool = True,
    ) -> Tuple[np.ndarray, WorkloadResult]:
        """Full send-inputs / read-outputs cycle for a host batch.

        Host batches larger than the device's supported ``Nbatch`` are
        partitioned into small batches; with ``pipelined`` the next
        small batch's inputs are pre-sent during device processing.
        """
        self._check_fds(fds)
        device_nbatch = max(1, self.device.supported_nbatch)
        dense_parts: List[Optional[np.ndarray]] = []
        sparse_parts: List[Sequence] = []
        for start in range(0, len(sparse_batch), device_nbatch):
            stop = start + device_nbatch
            sparse_parts.append(sparse_batch[start:stop])
            dense_parts.append(
                None if dense_batch is None else dense_batch[start:stop]
            )
        result = self.device.run_workload(dense_parts, sparse_parts, pipelined)
        return result.outputs, result

    # Aliases matching the paper's interface names.
    RM_create_table = rm_create_table
    RM_open_table = rm_open_table
