"""Page-granular in-SSD lookup engine (the EMB-PageSum data path).

The comparison systems that predate vector-grained reads — EMB-PageSum
and RecSSD's device side — fetch the *whole flash page* containing each
embedding vector and pool inside the SSD.  This module executes that
path on the discrete-event simulator, sharing the translator/layout
machinery with the real Embedding Lookup Engine, so the page-vs-vector
comparison can be made under identical queueing rather than only
analytically.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence

import numpy as np

from repro.embedding.layout import EmbeddingLayout
from repro.embedding.translator import EVTranslator
from repro.ssd.controller import SSDController


class PageLookupEngine:
    """Translator + page-granular internal reads + in-SSD pooling."""

    def __init__(self, controller: SSDController, layout: EmbeddingLayout) -> None:
        self.controller = controller
        self.layout = layout
        self.tables = layout.tables
        self.translator = EVTranslator(page_size=controller.geometry.page_size)
        for table_id, ranges in layout.metadata().items():
            self.translator.register_table(
                table_id, ranges, self.tables.ev_size, self.tables[table_id].rows
            )

    @property
    def dim(self) -> int:
        return self.tables.dim

    def _read_all_proc(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> Generator:
        sim = self.controller.sim
        events = []
        slots: List[tuple] = []
        cols: List[int] = []
        page_size = self.controller.geometry.page_size
        for sample_id, sample in enumerate(sparse_batch):
            if len(sample) != len(self.tables):
                raise ValueError(
                    f"sample {sample_id}: {len(sample)} index lists for "
                    f"{len(self.tables)} tables"
                )
            for table_id, indices in enumerate(sample):
                for position, index in enumerate(indices):
                    read = self.translator.translate(table_id, index)
                    lba = read.device_offset // page_size
                    events.append(
                        sim.process(self.controller.read_page_internal_proc(lba))
                    )
                    slots.append((sample_id, table_id, position))
                    cols.append(read.device_offset % page_size)
        results = yield sim.all_of(events)
        raw: Dict[tuple, np.ndarray] = {}
        ev_size = self.tables.ev_size
        for slot, col, request in zip(slots, cols, results):
            payload = request.data[col : col + ev_size]
            raw[slot] = np.frombuffer(payload, dtype=np.float32)
        return raw

    def lookup_batch(self, sparse_batch) -> tuple:
        """Run a batched page-granular lookup; returns ``(pooled,
        elapsed_ns, pages_read)``.  Pooling order matches the host SLS.
        """
        sim = self.controller.sim
        start = sim.now
        proc = sim.process(self._read_all_proc(sparse_batch))
        sim.run()
        raw = proc.value
        elapsed = sim.now - start
        pooled_rows = []
        for sample_id, sample in enumerate(sparse_batch):
            per_table = []
            for table_id, indices in enumerate(sample):
                acc = np.zeros(self.dim, dtype=np.float32)
                for position in range(len(indices)):
                    acc += raw[(sample_id, table_id, position)]
                per_table.append(acc)
            pooled_rows.append(np.concatenate(per_table).astype(np.float32))
        return np.stack(pooled_rows), elapsed, len(raw)
