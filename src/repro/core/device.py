"""The RM-SSD device: end-to-end simulated inference.

Wires together the substrate stack (flash array, FTL, block device,
embedding layout), the Embedding Lookup Engine, the kernel-searched MLP
Acceleration Engine, and the MMIO manager, and executes batched
recommendation inference with both numeric outputs and timing.

Two MLP design points are supported (Section VI-D):

* ``"optimized"`` — the full RM-SSD: intra-layer decomposition,
  inter-layer composition, kernel search;
* ``"naive"`` — the conventional shared-GEMM design (RM-SSD-Naive in
  Fig. 12/15): one 16x16 array processes layers sequentially per
  sample, with no decomposition, so the MLP cannot hide under the
  embedding stage for MLP-dominated models.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lookup_engine import EmbeddingLookupEngine, flash_read_cycles
from repro.core.mlp_engine import MLPAccelerationEngine
from repro.core.registers import MMIOCostModel, MMIOManager
from repro.obs import names, resolve_profiler, resolve_tracer
from repro.embedding.layout import EmbeddingLayout
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.fpga.specs import DEFAULT_SETTINGS, FPGASettings
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.ssd.vcache import VectorCache

MLP_DESIGN_OPTIMIZED = "optimized"
MLP_DESIGN_NAIVE = "naive"

#: The naive comparator's fixed GEMM array side (16x16 MACs).
NAIVE_GEMM_SIDE = 16


@dataclass
class DeviceTiming:
    """Timing of one device batch.

    ``serialized`` marks the naive MLP design, whose shared GEMM unit
    cannot overlap the embedding stage (no intra-layer decomposition):
    its stages add instead of pipelining.
    """

    nbatch: int
    emb_ns: float
    bot_ns: float
    top_ns: float
    io_ns: float
    serialized: bool = False

    @property
    def interval_ns(self) -> float:
        """Pipelined issue interval: the slowest stage (or the stage
        sum for the serialized naive design)."""
        if self.serialized:
            return self.emb_ns + self.bot_ns + self.top_ns + self.io_ns
        return max(self.emb_ns, self.bot_ns, self.top_ns, self.io_ns, 1.0)

    @property
    def latency_ns(self) -> float:
        """Unpipelined completion time of this batch."""
        if self.serialized:
            return self.emb_ns + self.bot_ns + self.top_ns + self.io_ns
        return max(self.emb_ns, self.bot_ns) + self.top_ns + self.io_ns


@dataclass
class WorkloadResult:
    """Aggregate of a run over many batches."""

    outputs: np.ndarray
    total_ns: float
    batch_timings: List[DeviceTiming]
    inferences: int

    @property
    def qps(self) -> float:
        return self.inferences / (self.total_ns / 1e9)

    @property
    def mean_latency_ns(self) -> float:
        if not self.batch_timings:
            return 0.0
        return sum(t.latency_ns for t in self.batch_timings) / len(self.batch_timings)


class RMSSD:
    """A fully-assembled RM-SSD holding one model."""

    def __init__(
        self,
        model,
        lookups_per_table: int,
        geometry: Optional[SSDGeometry] = None,
        ssd_timing: Optional[SSDTimingModel] = None,
        settings: FPGASettings = DEFAULT_SETTINGS,
        mlp_design: str = MLP_DESIGN_OPTIMIZED,
        use_des: bool = True,
        max_extent_pages: Optional[int] = None,
        mmio_costs: MMIOCostModel = MMIOCostModel(),
        sanitize: Optional[bool] = None,
        fastpath: Optional[bool] = None,
        tracer=None,
        metrics=None,
        vcache: Optional[VectorCache] = None,
        profiler=None,
    ) -> None:
        if mlp_design not in (MLP_DESIGN_OPTIMIZED, MLP_DESIGN_NAIVE):
            raise ValueError(f"unknown MLP design {mlp_design!r}")
        self.model = model
        self.lookups_per_table = lookups_per_table
        self.settings = settings
        self.mlp_design = mlp_design
        self.use_des = use_des
        #: ``None`` defers to the RMSSD_FASTPATH environment flag; the
        #: lookup engine falls back to the DES whenever background
        #: block I/O is still in flight (see repro.ssd.fastpath).
        self.fastpath = fastpath

        # ``tracer=None`` defers to the RMSSD_TRACE environment flag
        # (see repro.obs); ``metrics`` is an optional MetricsRegistry
        # that accumulates latency histograms across infer_batch calls.
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics

        # ``sanitize=None`` defers to the RMSSD_SANITIZE environment
        # flag (see repro.sim.sanitizer); the substrate built from this
        # simulator inherits its invariant checks.
        self.sim = Simulator(sanitize=sanitize)
        # ``profiler=None`` defers to the RMSSD_PROFILE environment
        # flag (see repro.obs.profiler); attaching it to the simulator
        # makes every named DES resource report busy intervals.
        self.profiler = resolve_profiler(profiler)
        if self.profiler.enabled:
            self.sim.profiler = self.profiler
        # Optional controller-DRAM hot-vector cache (repro.ssd.vcache);
        # ``None`` keeps the paper's cache-free lookup path.
        if vcache is not None and vcache.ev_size == 0:
            vcache.ev_size = model.tables.ev_size
        self.controller = SSDController(
            self.sim, geometry, ssd_timing, tracer=self.tracer, vcache=vcache
        )
        # Last-seen cumulative cache stats, for per-batch metric deltas.
        self._vcache_observed = (0, 0, 0)
        self.blockdev = BlockDevice(self.controller, max_extent_pages=max_extent_pages)
        self.layout = EmbeddingLayout(self.blockdev, model.tables)
        self.layout.create_all()
        self.lookup_engine = EmbeddingLookupEngine(
            self.controller,
            self.layout,
            pooling=getattr(model, "pooling", "sum"),
        )
        self.mmio = MMIOManager(self.controller.stats, mmio_costs)

        decomposed = decompose_model(model, lookups_per_table)
        flash_base = flash_read_cycles(
            decomposed.vectors_per_inference,
            self.controller.geometry,
            self.controller.timing,
            model.tables.ev_size,
        )
        self.search = kernel_search(decomposed, flash_base, settings)
        self.mlp_engine = MLPAccelerationEngine(model, self.search)
        self._naive_mlp_cycles = self._naive_gemm_cycles()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.controller.stats

    @property
    def vcache(self) -> Optional[VectorCache]:
        return self.controller.vcache

    @property
    def supported_nbatch(self) -> int:
        """Largest batch one device I/O carries (Rule Three's Nbatch)."""
        return self.search.nbatch

    def _naive_gemm_cycles(self) -> Tuple[int, int]:
        """MLP cost of the shared 16x16 GEMM design.

        Returns ``(compute_cycles_per_sample, stream_cycles_per_batch)``.
        Models whose weights overflow on-chip storage stream them from
        DRAM once per batch (double-buffered), which floors the naive
        design's batch time — the reason RM-SSD-Naive trails RM-SSD by
        ~3x on RMC3 (Fig. 12c) while matching it on RMC1/2.
        """
        from repro.fpga.resources import weight_bram_tiles
        from repro.fpga.search import DEFAULT_BRAM_BUDGET_TILES

        compute = 0
        weight_bytes = 0
        shapes = list(self.model.fc_shapes_bottom()) + list(self.model.fc_shapes_top())
        for rows, cols in shapes:
            compute += (
                ceil(rows / NAIVE_GEMM_SIDE)
                * ceil(cols / NAIVE_GEMM_SIDE)
                * self.settings.ii
            )
            weight_bytes += rows * cols * 4
        if weight_bram_tiles(weight_bytes) > DEFAULT_BRAM_BUDGET_TILES:
            stream = ceil(weight_bytes / 4 / self.settings.dram_words_per_cycle)
        else:
            stream = 0
        return compute, stream

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def simulate_table_upload(self) -> float:
        """Timed replay of the ``RM_create_table`` bulk write.

        The creation phase streams every table page through the block
        I/O path (Section IV-D); returns the elapsed simulated
        nanoseconds.  Contents are rewritten in place, so the laid-out
        tables are unchanged afterwards.
        """
        page_size = self.controller.geometry.page_size
        start = self.sim.now
        for layout in self.layout.layouts.values():
            for extent in layout.handle.extents:
                for lba in range(extent.start_lba, extent.end_lba):
                    data = self.controller.peek_logical(lba * page_size, page_size)
                    self.sim.process(self.controller.write_block_proc(lba, data))
        self.sim.run()
        return self.sim.now - start

    def start_background_block_reads(self, lbas: Sequence[int]) -> list:
        """Issue conventional block I/O concurrently with inference.

        RM-SSD "supports both block I/O requests and recommendation
        inference" (Section IV-A); both paths share the FTL and flash
        channels through the round-robin MUX.  The returned process
        events complete during the next inference's simulation run, and
        the contention is visible in the embedding stage time.  While
        these reads are in flight the lookup engine always takes the
        DES path — the vectorized fast path requires idle channels.
        """
        return [
            self.sim.process(self.controller.read_block_proc(lba)) for lba in lbas
        ]

    def _input_bytes(self, sparse_batch) -> int:
        indices = sum(
            len(lookups) for sample in sparse_batch for lookups in sample
        )
        dense = len(sparse_batch) * getattr(self.model, "dense_dim", 0) * 4
        return indices * 8 + dense  # 64-bit indices + fp32 dense

    def _output_bytes(self, nbatch: int) -> int:
        return max(self.settings.mmio_width_bytes, nbatch * 4)

    def infer_batch(
        self,
        dense_batch: Optional[np.ndarray],
        sparse_batch: Sequence[Sequence[Sequence[int]]],
    ) -> Tuple[np.ndarray, DeviceTiming]:
        """One device batch: numeric outputs plus its timing."""
        nbatch = len(sparse_batch)
        if nbatch < 1:
            raise ValueError("empty batch")
        batch_start = self.sim.now

        # Host -> device: control registers + DMA of indices/dense.
        send_ns = self.mmio.write_register("num_lookups", self.lookups_per_table)
        send_ns += self.mmio.write_register("nbatch", nbatch)
        send_ns += self.mmio.dma_to_device(self._input_bytes(sparse_batch))

        # Embedding Lookup Engine.
        lookup = self.lookup_engine.lookup_batch(sparse_batch, fast=self.fastpath)
        if self.use_des:
            emb_ns = lookup.elapsed_ns
        else:
            # Analytic view: only the flash misses pay Eq. 1a bandwidth;
            # the cached vectors stream from DRAM in parallel.
            emb_ns = max(
                self.controller.timing.cycles_to_ns(
                    self.lookup_engine.analytic_cycles(lookup.vectors_read)
                ),
                lookup.vcache_ns,
            )

        # MLP Acceleration Engine (numeric + stage timing).
        outputs = self.mlp_engine.forward_batch(dense_batch, lookup.pooled)
        if self.mlp_design == MLP_DESIGN_OPTIMIZED:
            stages = self.mlp_engine.stage_times_for(nbatch)
            if stages.temb > stages.flash_cycles:
                # The Le tail of the embedding stage dominates the reads.
                emb_ns = max(emb_ns, self.settings.cycles_to_ns(stages.temb))
            bot_ns = self.settings.cycles_to_ns(stages.tbot)
            top_ns = self.settings.cycles_to_ns(stages.ttop)
        else:
            # Weights re-stream from DRAM for every sample (no Rule-Two
            # double buffering in the conventional design).
            compute, stream = self._naive_mlp_cycles
            bot_ns = 0.0
            top_ns = self.settings.cycles_to_ns(max(compute, stream) * nbatch)

        # Device -> host: status poll + result DMA.
        recv_ns = self.mmio.poll_status()
        recv_ns += self.mmio.dma_from_device(self._output_bytes(nbatch))

        timing = DeviceTiming(
            nbatch=nbatch,
            emb_ns=emb_ns,
            bot_ns=bot_ns,
            top_ns=top_ns,
            io_ns=send_ns + recv_ns,
            serialized=self.mlp_design == MLP_DESIGN_NAIVE,
        )
        if self.tracer.enabled:
            self._emit_request_spans(
                batch_start, timing, send_ns, recv_ns, lookup.path
            )
        if self.profiler.enabled:
            self._profile_request(batch_start, timing, send_ns, recv_ns)
        if self.metrics is not None:
            self._observe_metrics(timing, batch_start + timing.latency_ns)
        return outputs, timing

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit_request_spans(
        self,
        batch_start: float,
        timing: DeviceTiming,
        send_ns: float,
        recv_ns: float,
        lookup_path: str,
    ) -> None:
        """Span tree of one device batch.

        The root ``request`` span covers the batch's unpipelined
        latency on a lane of the ``host`` track group (concurrent
        requests render side by side); ``io_send``/``io_recv`` nest at
        its edges.  The MLP chains get their own ``mlp`` track group so
        they can overlap the embedding spans (which live on ``emb``,
        emitted by the lookup engine) without breaking track nesting.
        """
        tracer = self.tracer
        end = batch_start + timing.latency_ns
        track = tracer.lane_track("host", batch_start, end)
        tracer.add_span(
            names.SPAN_REQUEST,
            batch_start,
            end,
            cat="host",
            track=track,
            args={
                "nbatch": timing.nbatch,
                "design": self.mlp_design,
                "lookup_path": lookup_path,
            },
        )
        tracer.add_span(
            names.SPAN_IO_SEND,
            batch_start,
            batch_start + send_ns,
            cat="io",
            track=track,
        )
        tracer.add_span(
            names.SPAN_IO_RECV, end - recv_ns, end, cat="io", track=track
        )
        if timing.serialized:
            # The naive shared-GEMM design runs after the embedding
            # stage drains; there is no per-layer decomposition to show.
            mlp_start = batch_start + timing.emb_ns
            mlp_end = mlp_start + timing.top_ns
            mlp_track = tracer.lane_track("mlp", mlp_start, mlp_end)
            tracer.add_span(
                names.SPAN_TOP_MLP,
                mlp_start,
                mlp_end,
                cat="mlp",
                track=mlp_track,
                args={"design": MLP_DESIGN_NAIVE},
            )
            return
        self._emit_chain_spans(
            names.SPAN_BOTTOM_MLP, "bottom", batch_start, timing.nbatch
        )
        top_start = batch_start + max(timing.emb_ns, timing.bot_ns)
        self._emit_chain_spans(names.SPAN_TOP_MLP, "top", top_start, timing.nbatch)

    def _emit_chain_spans(
        self, name: str, chain: str, chain_start: float, nbatch: int
    ) -> None:
        """One FC chain: pairs laid end to end, members overlaid.

        A composition pair advances in the time of its slower member
        (Fig. 9b), so both members start together and the shorter one
        nests inside the longer — the trace shows exactly where the
        scan-direction composition saves time.
        """
        pairs = self.mlp_engine.layer_intervals(chain, nbatch)
        if not pairs:
            return
        total = sum(max(d for _, d in pair) for pair in pairs)
        tracer = self.tracer
        track = tracer.lane_track("mlp", chain_start, chain_start + total)
        tracer.add_span(
            name,
            chain_start,
            chain_start + total,
            cat="mlp",
            track=track,
            args={"pairs": len(pairs)},
        )
        cursor = chain_start
        for pair in pairs:
            for layer_name, duration in pair:
                tracer.add_span(
                    names.fc_name(layer_name),
                    cursor,
                    cursor + duration,
                    cat="mlp",
                    track=track,
                )
            cursor += max(d for _, d in pair)

    def _profile_request(
        self,
        batch_start: float,
        timing: DeviceTiming,
        send_ns: float,
        recv_ns: float,
    ) -> None:
        """Utilization records of one device batch.

        Mirrors :meth:`_emit_request_spans` exactly — same interval
        arithmetic, same layer walk — but feeds the profiler instead of
        the tracer, so profiling works without tracing (and both paths
        record bitwise-equal intervals; the MLP and host-I/O times are
        analytic add-ons that may extend past the DES clock, which is
        why the profiler's run horizon is taken over all records).
        """
        profiler = self.profiler
        end = batch_start + timing.latency_ns
        profiler.record_stage(
            batch_start,
            timing.nbatch,
            timing.emb_ns,
            timing.bot_ns,
            timing.top_ns,
            timing.io_ns,
            timing.latency_ns,
            timing.serialized,
        )
        profiler.record_busy(
            names.RES_HOST_IO,
            batch_start,
            batch_start + send_ns,
            names.KIND_HOST_IO,
        )
        profiler.record_busy(
            names.RES_HOST_IO, end - recv_ns, end, names.KIND_HOST_IO
        )
        if timing.serialized:
            mlp_start = batch_start + timing.emb_ns
            profiler.record_busy(
                names.RES_GEMM_NAIVE,
                mlp_start,
                mlp_start + timing.top_ns,
                names.KIND_MLP,
            )
            return
        self._profile_chain("bottom", batch_start, timing.nbatch)
        top_start = batch_start + max(timing.emb_ns, timing.bot_ns)
        self._profile_chain("top", top_start, timing.nbatch)

    def _profile_chain(self, chain: str, chain_start: float, nbatch: int) -> None:
        """Busy intervals of one FC chain's kernels (Fig. 9b walk)."""
        pairs = self.mlp_engine.layer_intervals(chain, nbatch)
        profiler = self.profiler
        cursor = chain_start
        for pair in pairs:
            for layer_name, duration in pair:
                profiler.record_busy(
                    names.fc_name(layer_name),
                    cursor,
                    cursor + duration,
                    names.KIND_MLP,
                )
            cursor += max(d for _, d in pair)

    def _observe_metrics(self, timing: DeviceTiming, done_ns: float) -> None:
        # Every observation is stamped with the batch's completion
        # instant, so a windowed registry (repro.obs.timeseries) rolls
        # device metrics into the window the batch finished in —
        # identically on the DES and fast paths, whose timings are
        # bitwise-equal.
        metrics = self.metrics
        metrics.counter(names.METRIC_DEVICE_BATCHES).inc(t_ns=done_ns)
        metrics.counter(names.METRIC_DEVICE_INFERENCES).inc(
            timing.nbatch, t_ns=done_ns
        )
        metrics.histogram(names.METRIC_REQUEST_LATENCY).observe(
            timing.latency_ns, t_ns=done_ns
        )
        metrics.histogram(names.METRIC_STAGE_EMB).observe(
            timing.emb_ns, t_ns=done_ns
        )
        metrics.histogram(names.METRIC_STAGE_BOT).observe(
            timing.bot_ns, t_ns=done_ns
        )
        metrics.histogram(names.METRIC_STAGE_TOP).observe(
            timing.top_ns, t_ns=done_ns
        )
        metrics.histogram(names.METRIC_STAGE_IO).observe(
            timing.io_ns, t_ns=done_ns
        )
        vcache = self.controller.vcache
        if vcache is not None:
            hits, misses, evictions = self._vcache_observed
            metrics.counter(names.METRIC_VCACHE_HITS).inc(
                vcache.hits - hits, t_ns=done_ns
            )
            metrics.counter(names.METRIC_VCACHE_MISSES).inc(
                vcache.misses - misses, t_ns=done_ns
            )
            metrics.counter(names.METRIC_VCACHE_EVICTIONS).inc(
                vcache.evictions - evictions, t_ns=done_ns
            )
            metrics.gauge(names.METRIC_VCACHE_HIT_RATIO).set(
                vcache.hit_ratio, t_ns=done_ns
            )
            self._vcache_observed = (
                vcache.hits, vcache.misses, vcache.evictions,
            )

    def run_workload(
        self,
        dense_batches: Sequence[Optional[np.ndarray]],
        sparse_batches: Sequence[Sequence],
        pipelined: bool = True,
    ) -> WorkloadResult:
        """Run a sequence of device batches.

        With system-level pipelining (Section IV-D) the host pre-sends
        the next batch while the device works, so steady-state cost per
        batch is its pipeline interval; the first batch pays full
        latency.  Unpipelined, every batch pays full latency.
        """
        if len(dense_batches) != len(sparse_batches):
            raise ValueError("dense/sparse batch counts differ")
        outputs: List[np.ndarray] = []
        timings: List[DeviceTiming] = []
        total_ns = 0.0
        inferences = 0
        for position, (dense, sparse) in enumerate(zip(dense_batches, sparse_batches)):
            batch_out, timing = self.infer_batch(dense, sparse)
            outputs.append(batch_out)
            timings.append(timing)
            inferences += timing.nbatch
            if pipelined:
                total_ns += timing.latency_ns if position == 0 else timing.interval_ns
            else:
                total_ns += timing.latency_ns
        return WorkloadResult(
            outputs=np.concatenate(outputs) if outputs else np.empty((0, 1)),
            total_ns=total_ns,
            batch_timings=timings,
            inferences=inferences,
        )
