"""Multi-device scale-out (extension).

The paper cites capacity-driven scale-out (Lui et al.) and
FPGA-cluster serving (FleetRec) as the context its single-device
design lives in.  This extension shards one recommendation model
across several RM-SSDs:

* **table sharding** — each device stores a subset of the embedding
  tables and runs its lookups locally; pooled vectors gather at an
  aggregator device that runs the MLP engine.  Embedding time divides
  across devices; the MLP stage and the gather hop set the floor.
* **replication** — every device holds the full model; requests
  load-balance round-robin, so throughput scales linearly at the cost
  of N copies of the capacity.

Numerics remain exact in both modes (same fp32 sums, same MLP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.device import RMSSD
from repro.core.lookup_engine import EmbeddingLookupEngine
from repro.core.mlp_engine import forward_from_pooled
from repro.embedding.layout import EmbeddingLayout
from repro.embedding.table import EmbeddingTableSet
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

MODE_TABLE_SHARD = "tables"
MODE_REPLICA = "replicas"


@dataclass
class ClusterTiming:
    """Timing of one batch across the cluster.

    Throughput and latency read different compositions of the stage
    times: the steady-state *interval* is bounded by the slowest
    pipeline stage (``max``), while the per-batch *latency* is the
    serial critical path — the bottom MLP overlaps the embedding
    lookups (and the gather hop), the top MLP runs after both.
    """

    nbatch: int
    per_device_emb_ns: List[float]
    gather_ns: float
    bot_ns: float
    top_ns: float
    io_ns: float

    @property
    def emb_ns(self) -> float:
        return max(self.per_device_emb_ns) if self.per_device_emb_ns else 0.0

    @property
    def mlp_ns(self) -> float:
        """The MLP engine's pipeline-interval term: its two stages are
        themselves pipelined, so the slower one bounds throughput."""
        return max(self.bot_ns, self.top_ns)

    @property
    def interval_ns(self) -> float:
        return max(self.emb_ns + self.gather_ns, self.mlp_ns, self.io_ns, 1.0)

    @property
    def latency_ns(self) -> float:
        """Serial per-batch latency: the bottom MLP overlaps the
        embedding+gather phase; the top MLP and the I/O edges do not."""
        return (
            max(self.emb_ns + self.gather_ns, self.bot_ns)
            + self.top_ns
            + self.io_ns
        )


class _TableShard:
    """One device of a table-sharded cluster: a lookup engine over a
    subset of the model's tables."""

    def __init__(
        self,
        table_ids: Sequence[int],
        tables: EmbeddingTableSet,
        geometry: Optional[SSDGeometry],
        ssd_timing: Optional[SSDTimingModel],
        pooling: str,
    ) -> None:
        self.table_ids = list(table_ids)
        subset = EmbeddingTableSet([tables[i] for i in self.table_ids])
        self.controller = SSDController(Simulator(), geometry, ssd_timing)
        device = BlockDevice(self.controller)
        layout = EmbeddingLayout(device, subset)
        layout.create_all()
        self.engine = EmbeddingLookupEngine(self.controller, layout, pooling=pooling)

    def lookup(self, sparse_batch):
        """Pooled vectors for this shard's tables, plus elapsed ns."""
        local = [
            [sample[table_id] for table_id in self.table_ids]
            for sample in sparse_batch
        ]
        return self.engine.lookup_batch(local)


class RMSSDCluster:
    """A recommendation model served by several RM-SSDs."""

    def __init__(
        self,
        model,
        lookups_per_table: int,
        num_devices: int = 2,
        mode: str = MODE_TABLE_SHARD,
        geometry: Optional[SSDGeometry] = None,
        ssd_timing: Optional[SSDTimingModel] = None,
        costs: HostCostModel = DEFAULT_HOST_COSTS,
    ) -> None:
        if num_devices < 1:
            raise ValueError("need at least one device")
        if mode not in (MODE_TABLE_SHARD, MODE_REPLICA):
            raise ValueError(f"unknown sharding mode {mode!r}")
        if mode == MODE_TABLE_SHARD and num_devices > len(model.tables):
            raise ValueError(
                f"{num_devices} devices for {len(model.tables)} tables"
            )
        self.model = model
        self.mode = mode
        self.num_devices = num_devices
        self.costs = costs
        pooling = getattr(model, "pooling", "sum")

        # The aggregator runs the MLP engine (and, for replication,
        # everything): reuse the single-device assembly for its
        # kernel-searched stage times.
        self.aggregator = RMSSD(
            model,
            lookups_per_table,
            geometry=geometry,
            ssd_timing=ssd_timing,
            use_des=True,
        )
        self.shards: List[_TableShard] = []
        if mode == MODE_TABLE_SHARD and num_devices > 1:
            assignment = [[] for _ in range(num_devices)]
            for table_id in range(len(model.tables)):
                assignment[table_id % num_devices].append(table_id)
            self.shards = [
                _TableShard(ids, model.tables, geometry, ssd_timing, pooling)
                for ids in assignment
            ]

    # ------------------------------------------------------------------
    @property
    def total_capacity_bytes(self) -> int:
        """Embedding bytes stored across the cluster."""
        per_model = self.model.tables.total_bytes
        return per_model * (self.num_devices if self.mode == MODE_REPLICA else 1)

    def _gather_ns(self, nbatch: int) -> float:
        pooled_bytes = nbatch * len(self.model.tables) * self.model.tables.dim * 4
        return self.costs.pcie_transfer_ns(pooled_bytes) + 2000.0

    # ------------------------------------------------------------------
    def infer_batch(
        self,
        dense_batch: Optional[np.ndarray],
        sparse_batch,
    ) -> Tuple[np.ndarray, ClusterTiming]:
        nbatch = len(sparse_batch)
        if nbatch < 1:
            raise ValueError("empty batch")

        if self.mode == MODE_REPLICA or self.num_devices == 1:
            outputs, timing = self.aggregator.infer_batch(dense_batch, sparse_batch)
            # Replication: N devices serve independent request streams;
            # per-batch timing is the single-device timing, and the
            # cluster's throughput multiplies by N (see throughput_qps).
            cluster_timing = ClusterTiming(
                nbatch=nbatch,
                per_device_emb_ns=[timing.emb_ns],
                gather_ns=0.0,
                bot_ns=timing.bot_ns,
                top_ns=timing.top_ns,
                io_ns=timing.io_ns,
            )
            return outputs, cluster_timing

        # Table sharding: per-shard lookups, gather, aggregate MLP.
        per_device_ns: List[float] = []
        pooled_parts = {}
        for shard in self.shards:
            result = shard.lookup(sparse_batch)
            per_device_ns.append(result.elapsed_ns)
            for position, table_id in enumerate(shard.table_ids):
                dim = self.model.tables.dim
                pooled_parts[table_id] = result.pooled[
                    :, position * dim : (position + 1) * dim
                ]
        pooled = np.concatenate(
            [pooled_parts[t] for t in range(len(self.model.tables))], axis=1
        )
        outputs = np.stack(
            [
                forward_from_pooled(
                    self.model,
                    None if dense_batch is None else dense_batch[i],
                    pooled[i],
                )
                for i in range(nbatch)
            ]
        )
        stages = self.aggregator.mlp_engine.stage_times_for(nbatch)
        settings = self.aggregator.settings
        timing = ClusterTiming(
            nbatch=nbatch,
            per_device_emb_ns=per_device_ns,
            gather_ns=self._gather_ns(nbatch),
            bot_ns=settings.cycles_to_ns(stages.tbot),
            top_ns=settings.cycles_to_ns(stages.ttop),
            io_ns=2 * 2000.0,
        )
        return outputs, timing

    def throughput_qps(self, nbatch: int = 1, seed: int = 0) -> float:
        """Steady-state cluster QPS for random requests of ``nbatch``."""
        rng = np.random.default_rng(seed)
        lookups = self.aggregator.lookups_per_table
        # Draw each table's indices against its *own* row count:
        # production models mix tiny and enormous tables, and indices
        # drawn from tables[0] would be out of range (or biased) there.
        sparse = [
            [
                list(rng.integers(0, table.rows, size=lookups))
                for table in self.model.tables
            ]
            for _ in range(nbatch)
        ]
        dense_dim = getattr(self.model, "dense_dim", 0)
        dense = (
            rng.standard_normal((nbatch, dense_dim)).astype(np.float32)
            if dense_dim
            else None
        )
        _, timing = self.infer_batch(dense, sparse)
        base = nbatch / (timing.interval_ns / 1e9)
        if self.mode == MODE_REPLICA:
            return base * self.num_devices
        return base
