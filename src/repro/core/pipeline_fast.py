"""Closed-form replay of the three-stage serving pipeline.

The DES path in :mod:`repro.core.pipeline_sim` spawns three generator
processes per batch; a 200-query load sweep costs thousands of heap
pushes per evaluated load, so the *simulator* dominates the wall clock
of every latency-vs-load curve and SLA bisection.  This module replays
the same structure in closed form: with unit-capacity stage servers
and sorted arrivals, each stage is the max-plus recurrence

    start[i]  = max(arrival[i], finish[i - 1])
    finish[i] = start[i] + duration[i]

computed with ``np.add.accumulate`` scans over whole arrival arrays
(:func:`serve_chain`), and the top stage's service order is the stable
sort of the per-batch ready times ``max(emb_done, bot_done)``.

Exactness mirrors the lookup fast path (``repro.ssd.fastpath``):

* ``Server.serve`` computes ``finish = max(now, free_at) + duration``
  but resumes the caller at ``now + (finish - now)`` — the replay
  tracks both quantities instead of assuming the round trip is exact.
* Sequential float accumulation (back-to-back server finishes) is
  replayed with ``np.add.accumulate`` or an explicit left-to-right
  loop, never with closed-form multiplication.
* DES tie-breaking is positional: stage calls happen in batch-index
  order on equal arrivals, and top-stage service order is ``(ready
  time, batch index)`` — exactly what a stable argsort reproduces.

Stage-time callables are evaluated in the same global order as the
DES (``emb(0), bot(0), emb(1), bot(1), ...`` then ``top`` in service
order), so index-pure jitter callables — the documented contract —
replay bit for bit.  Constant stage times (the serving path) skip the
evaluation loop outright.  ``RMSSD_FASTPATH=0`` (the same flag as the
lookup fast path) falls back to the DES; see ``docs/performance.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.obs import names
from repro.sim import Server, Simulator
from repro.ssd import fastpath

#: Below this many jobs a plain Python loop beats the numpy scan
#: (array setup dominates); both are bitwise-identical by design.
VECTOR_MIN_JOBS = 64


def resolve_fast(fast: Optional[bool]) -> bool:
    """``fast=`` kwarg resolution: explicit wins, then ``RMSSD_FASTPATH``."""
    if fast is not None:
        return bool(fast)
    return fastpath.enabled()


def serve_chain(
    arrivals: np.ndarray,
    durations: np.ndarray,
    free0: float = 0.0,
    vectorized: Optional[bool] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay sequential ``Server.serve`` calls at sorted ``arrivals``.

    Returns ``(starts, finishes)`` with ``start[i] = max(arrival[i],
    finish[i - 1])`` (``finish[-1] = free0``), every float op in the
    exact order the DES performs it.  ``vectorized=None`` picks the
    scan only for :data:`VECTOR_MIN_JOBS`-sized chains that are
    *backlogged* (offered work >= the arrival span, so the chain is a
    few long busy runs — one ``np.add.accumulate`` each); a lightly
    loaded chain alternates idle/busy regions every few jobs, where
    the per-region numpy call overhead loses to the reference loop.
    Both produce identical bits, so dispatch is pure performance.
    """
    t = np.ascontiguousarray(arrivals, dtype=np.float64)
    d = np.ascontiguousarray(durations, dtype=np.float64)
    if t.shape != d.shape:
        raise ValueError("one duration per arrival required")
    if vectorized is None:
        vectorized = t.size >= VECTOR_MIN_JOBS and (
            t.size < 2 or float(np.sum(d)) >= float(t[-1] - t[0])
        )
    if vectorized:
        return _serve_chain_scan(t, d, float(free0))
    return _serve_chain_loop(t, d, float(free0))


def _serve_chain_loop(
    t: np.ndarray, d: np.ndarray, free: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference left-to-right replay (`max` written as the DES's)."""
    n = t.size
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    arrivals = t.tolist()
    durations = d.tolist()
    for i in range(n):
        arrival = arrivals[i]
        # Server.serve: start = max(now, free_at); max() keeps the
        # first argument on ties, so spell the comparison the same way.
        start = arrival if arrival >= free else free
        free = start + durations[i]
        starts[i] = start
        finishes[i] = free
    return starts, finishes


def _serve_chain_scan(
    t: np.ndarray, d: np.ndarray, free: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Region-decomposed scan, bitwise-equal to the loop.

    The chain alternates *idle runs* (each job starts at its own
    arrival: ``start = t[k]``, vectorized elementwise) and *busy runs*
    (each job starts at its predecessor's finish: one
    ``np.add.accumulate`` per run, grown in doubling blocks so a fully
    saturated chain costs one scan).  Region boundaries use the same
    strict comparisons as ``max(now, free_at)``, so ties land in the
    busy branch exactly as the DES's ``max`` does.
    """
    n = t.size
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    # Finish of job k if it starts idle (at its own arrival) — also
    # the run-extension test: job k+1 stays idle iff it arrives
    # strictly after idle_finish[k].
    idle_finish = t + d
    idle_next = t[1:] > idle_finish[:-1] if n > 1 else np.empty(0, dtype=bool)
    i = 0
    while i < n:
        if t[i] > free:
            # Idle run [i, j): every job starts at its own arrival.
            rel = idle_next[i : n - 1]
            first_busy = int(np.argmin(rel)) if rel.size else 0
            if rel.size and rel[first_busy]:
                first_busy = rel.size  # all remaining transitions idle
            j = i + 1 + first_busy
            starts[i:j] = t[i:j]
            finishes[i:j] = idle_finish[i:j]
            free = float(idle_finish[j - 1])
            i = j
            continue
        # Busy run from base ``free``: finishes are the prefix sums of
        # [free, d[i], d[i+1], ...]; extend in doubling blocks until a
        # job arrives strictly after its predecessor's finish.
        j = i
        prev = free
        block = 32
        while True:
            hi = min(n, j + block)
            segment = np.empty(hi - j + 1, dtype=np.float64)
            segment[0] = prev
            segment[1:] = d[j:hi]
            acc = np.add.accumulate(segment)
            # acc[m] is both finish[j + m - 1] and start[j + m].
            if hi > j + 1:
                breaks = t[j + 1 : hi] > acc[1 : hi - j]
                cut = int(np.argmax(breaks)) if breaks.any() else -1
            else:
                cut = -1
            if cut >= 0:
                stop = j + 1 + cut
                width = stop - j
                starts[j:stop] = acc[:width]
                finishes[j:stop] = acc[1 : width + 1]
                free = float(acc[width])
                i = stop
                break
            starts[j:hi] = acc[: hi - j]
            finishes[j:hi] = acc[1:]
            prev = float(acc[-1])
            j = hi
            if j >= n or t[j] > prev:
                free = prev
                i = j
                break
            block *= 2
    return starts, finishes


def _record_stage_services(
    profiler,
    server: Server,
    arrivals: np.ndarray,
    starts: np.ndarray,
    finishes: np.ndarray,
) -> None:
    """Profiler triples for one stage, as ``Server.serve`` records them.

    The arrays are in this stage's DES service order (batch-index
    order for emb/bot, ready order for top), so each per-name triple
    list — and therefore the exported profile — is byte-identical.
    """
    for arrival, start, finish in zip(
        arrivals.tolist(), starts.tolist(), finishes.tolist()
    ):
        profiler.record_service(server.name, arrival, start, finish, server.kind)


def replay_serving(
    emb_fn,
    bot_fn,
    top_fn,
    arrivals: Sequence[float],
    profiler=None,
) -> Tuple[np.ndarray, float]:
    """Replay ``PipelineSimulator.run``'s DES in closed form.

    ``emb_fn``/``bot_fn``/``top_fn`` are per-batch stage times: either
    callables of the batch index or plain numbers.  Constants skip the
    per-index evaluation loop entirely (``np.full``) — with no
    callable there is no observable evaluation order, so the skip is
    bitwise-invisible and saves ~3n Python calls per replay.

    Returns ``(timeline, makespan_ns)`` where ``timeline`` is an
    ``(n, 6)`` array of ``emb_start, emb_done, bot_start, bot_done,
    top_start, top_done`` per batch — the same floats the DES writes
    into each :class:`~repro.core.pipeline_sim.BatchRecord`.
    """
    t = np.ascontiguousarray(arrivals, dtype=np.float64)
    n = t.size
    # Flows bootstrap at clock 0, so a batch can never be served
    # before t=0 even if its nominal arrival is negative.
    t_call = np.maximum(t, 0.0)

    if callable(emb_fn) or callable(bot_fn):
        emb_of = emb_fn if callable(emb_fn) else (lambda _i, _v=float(emb_fn): _v)
        bot_of = bot_fn if callable(bot_fn) else (lambda _i, _v=float(bot_fn): _v)
        emb = np.empty(n, dtype=np.float64)
        bot = np.empty(n, dtype=np.float64)
        for index in range(n):
            # DES evaluation order: emb then bot, per batch, at arrival.
            emb[index] = emb_of(index)
            bot[index] = bot_of(index)
    else:
        emb = np.full(n, float(emb_fn))
        bot = np.full(n, float(bot_fn))
    if np.any(emb < 0):
        raise ValueError("negative service duration")

    # Embedding stage: always served, even zero-length jobs.
    emb_start, emb_finish = serve_chain(t_call, emb)
    emb_done = t_call + (emb_finish - t_call)

    # Bottom stage: only positive durations touch the server; the
    # others complete instantly at the batch's service clock.
    bot_start = t_call.copy()
    bot_done = t_call.copy()
    served_bot = np.flatnonzero(bot > 0)
    bot_chain_start = bot_chain_finish = None
    if served_bot.size:
        tb = t_call[served_bot]
        bot_chain_start, bot_chain_finish = serve_chain(tb, bot[served_bot])
        bot_start[served_bot] = bot_chain_start
        bot_done[served_bot] = tb + (bot_chain_finish - tb)

    # Top stage: ready when both predecessors are done; the DES serves
    # in (ready time, batch index) order — a stable sort.
    ready = np.maximum(emb_done, bot_done)
    order = np.argsort(ready, kind="stable")
    if callable(top_fn):
        top = np.empty(n, dtype=np.float64)
        for index in order.tolist():
            top[index] = top_fn(index)
    else:
        top = np.full(n, float(top_fn))
    top_start = ready.copy()
    top_done = ready.copy()
    ready_sorted = ready[order]
    served_mask = top[order] > 0
    served_top = order[served_mask]
    top_chain_start = top_chain_finish = ready_served = None
    if served_top.size:
        ready_served = ready_sorted[served_mask]
        top_chain_start, top_chain_finish = serve_chain(
            ready_served, top[served_top]
        )
        top_start[served_top] = top_chain_start
        top_done[served_top] = ready_served + (top_chain_finish - ready_served)

    if profiler is not None and profiler.enabled:
        # Throwaway servers carry the catalogue name/kind pair each
        # stage's triples are recorded under; the replay never serves
        # through them (state effects are not observable on the DES
        # path either — its servers die with its Simulator).
        sim = Simulator()
        emb_server = Server(sim, names.STAGE_EMB)
        bot_server = Server(sim, names.STAGE_BOT)
        top_server = Server(sim, names.STAGE_TOP)
        _record_stage_services(profiler, emb_server, t_call, emb_start, emb_finish)
        if served_bot.size:
            _record_stage_services(
                profiler, bot_server, t_call[served_bot], bot_chain_start,
                bot_chain_finish,
            )
        if served_top.size:
            _record_stage_services(
                profiler, top_server, ready_served, top_chain_start,
                top_chain_finish,
            )

    timeline = np.column_stack(
        (emb_start, emb_done, bot_start, bot_done, top_start, top_done)
    )
    makespan = float(top_done.max()) if n else 0.0
    return timeline, makespan
