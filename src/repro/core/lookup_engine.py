"""Embedding Lookup Engine (Section IV-B).

The engine chains the EV Translator, the vector-grained EV-FMC reads,
and the EV Sum pooling unit:

* lookups are translated to device addresses using only on-device
  extent metadata;
* vector reads are striped over all channels and dies (the layout's
  channel-major page numbering does the striping);
* returned vectors are accumulated per table in *lookup order* by the
  fadd array, so results match the host SLS operator bit for bit.

Two views are provided: an analytic bandwidth model (used by the kernel
search and quick sizing) and a discrete-event execution (used by the
end-to-end device, capturing real queueing over the trace's channel
distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.embedding.layout import EmbeddingLayout
from repro.embedding.pooling import segment_pool
from repro.embedding.translator import EVTranslator
from repro.obs import names
from repro.ssd import fastpath, vcache as vcache_model
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

#: EV Sum cost per returned vector, in cycles: the fadd array adds all
#: dimensions in parallel, pipelined one vector per cycle plus a small
#: drain.  Negligible next to flash reads ("the time consumption of
#: embedding vector extraction and sum can be ignored for FPGA
#: handling").
EV_SUM_CYCLES_PER_VECTOR = 1


def effective_vector_bandwidth(
    geometry: SSDGeometry,
    timing: SSDTimingModel,
    ev_size: int,
) -> float:
    """``bEV``: sustained vector reads per engine cycle, whole device.

    Per channel, throughput is bounded by (a) its dies, which can
    overlap flushes (one vector per ``CEV`` cycles per die), and (b)
    the shared channel bus (one vector's transfer slice at a time).
    """
    cev = timing.vector_read_cycles(ev_size)
    per_die = 1.0 / cev
    die_bound = geometry.dies_per_channel * per_die
    bus_bound = 1.0 / timing.vector_transfer_cycles(ev_size)
    return geometry.channels * min(die_bound, bus_bound)


def effective_page_bandwidth(
    geometry: SSDGeometry,
    timing: SSDTimingModel,
) -> float:
    """Sustained full-page reads per engine cycle, whole device.

    The page-granularity analogue of :func:`effective_vector_bandwidth`
    — what the EMB-PageSum / EMB-MMIO / RecSSD paths achieve.  Pages
    pay the full transfer slice on the shared bus, which is why the
    vector-grained path beats them on bulk throughput.
    """
    die_bound = geometry.dies_per_channel / timing.page_read_cycles
    bus_bound = 1.0 / timing.transfer_cycles
    return geometry.channels * min(die_bound, bus_bound)


def flash_read_cycles(
    vectors: int,
    geometry: SSDGeometry,
    timing: SSDTimingModel,
    ev_size: int,
) -> int:
    """Analytic cycles to stream ``vectors`` embedding reads (Eq. 1a's
    ``M*N / bEV`` term)."""
    if vectors <= 0:
        return 0
    return ceil(vectors / effective_vector_bandwidth(geometry, timing, ev_size))


@dataclass
class LookupResult:
    """Output of one batched lookup: pooled vectors plus timing.

    ``path`` records which execution path produced the result:
    ``"des"`` (per-read simulation processes) or ``"fast"`` (the
    vectorized replay, bitwise-equal by construction and by test).

    ``vectors_read`` counts vectors *read from flash*; with a
    controller-DRAM vector cache configured, ``vcache_hits`` of the
    batch's lookups were absorbed before translation and fetched from
    DRAM in ``vcache_ns`` instead (both zero without a cache).
    """

    pooled: np.ndarray  # batch x (tables * dim)
    elapsed_ns: float
    vectors_read: int
    path: str = "des"
    vcache_hits: int = 0
    vcache_ns: float = 0.0

    @property
    def total_vectors(self) -> int:
        """All embedding vectors the batch consumed (flash + cache)."""
        return self.vectors_read + self.vcache_hits

    def elapsed_cycles(self, cycle_ns: float) -> float:
        return self.elapsed_ns / cycle_ns


class EmbeddingLookupEngine:
    """Translator + EV-FMC + EV Sum over a laid-out table set.

    ``pooling`` selects the EV Sum reduction: ``"sum"`` (the default
    SparseLengthSum semantics) or ``"mean"`` (average pooling — the
    fadd array followed by one multiply by ``1/N``).
    """

    def __init__(
        self,
        controller: SSDController,
        layout: EmbeddingLayout,
        pooling: str = "sum",
    ) -> None:
        if pooling not in ("sum", "mean"):
            raise ValueError(f"unknown pooling mode {pooling!r}")
        self.controller = controller
        self.layout = layout
        self.pooling = pooling
        self.tables = layout.tables
        self.translator = EVTranslator(page_size=controller.geometry.page_size)
        for table_id, ranges in layout.metadata().items():
            self.translator.register_table(
                table_id,
                ranges,
                self.tables.ev_size,
                self.tables[table_id].rows,
            )
        # High-water marks of the cache's cumulative eviction/fill
        # counters, so each batch accounts only its own activity even
        # though VectorCache counters never reset between batches.
        self._vcache_activity_seen = (0, 0)

    @property
    def dim(self) -> int:
        return self.tables.dim

    # ------------------------------------------------------------------
    # Controller-DRAM vector cache (optional; see repro.ssd.vcache)
    # ------------------------------------------------------------------
    def _load_vector(self, table_id: int, index: int) -> np.ndarray:
        """Functional fetch of one embedding vector (no simulated time).

        Used to fill the vector cache on admitted misses: the bytes are
        identical to what the timed flash read of the same row returns,
        so cache hits are bit-exact substitutes for flash reads.
        """
        read = self.translator.translate(table_id, index)
        data = self.controller.peek_logical(read.device_offset, read.size)
        return np.frombuffer(data, dtype=np.float32)

    def _probe_vcache(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> Tuple[Dict[tuple, np.ndarray], List[tuple], int]:
        """Probe the cache once per lookup, in issue order.

        Returns ``(raw_hits, misses, total)``: hit vectors keyed by
        ``(sample, table, position)``, the missed lookups as
        ``(slot, table_id, index)`` in issue order, and the total
        probe count.  Cache state advances deterministically with the
        probe sequence, so the DES and fast paths — which call this
        with identical sequences — observe identical hit sets.
        """
        num_tables = len(self.tables)
        for sample_id, sample in enumerate(sparse_batch):
            if len(sample) != num_tables:
                raise ValueError(
                    f"sample {sample_id}: {len(sample)} index lists for "
                    f"{num_tables} tables"
                )
        cache = self.controller.vcache
        raw_hits: Dict[tuple, np.ndarray] = {}
        misses: List[tuple] = []
        total = 0
        for sample_id, sample in enumerate(sparse_batch):
            for table_id, indices in enumerate(sample):
                for position, index in enumerate(indices):
                    total += 1
                    row = int(index)
                    value = cache.access(
                        (table_id, row),
                        lambda t=table_id, r=row: self._load_vector(t, r),
                    )
                    if value is not None:
                        raw_hits[(sample_id, table_id, position)] = value
                    else:
                        misses.append(((sample_id, table_id, position), table_id, row))
        return raw_hits, misses, total

    def _account_vcache(self, hits: int, total: int) -> float:
        """Record one batch's probe outcome; returns the DRAM fetch ns."""
        cache = self.controller.vcache
        evictions = fills = 0
        if cache is not None:
            seen_evictions, seen_fills = self._vcache_activity_seen
            # ``reset_stats()`` (benchmarks call it mid-run) drops the
            # cumulative counters below the high-water mark; restart
            # the window instead of reporting a negative delta.
            if cache.evictions < seen_evictions or cache.fills < seen_fills:
                seen_evictions = seen_fills = 0
            evictions = cache.evictions - seen_evictions
            fills = cache.fills - seen_fills
            self._vcache_activity_seen = (cache.evictions, cache.fills)
        self.controller.stats.record_vcache(hits, total - hits, evictions, fills)
        sanitizer = self.controller.flash.sanitizer
        if sanitizer is not None:
            sanitizer.vcache_batch(hits, total)
        return self.controller.timing.cycles_to_ns(
            vcache_model.fetch_cycles(hits, self.tables.ev_size)
        )

    def warm_vcache(self, keys: Sequence[Tuple[int, int]]) -> int:
        """Pre-fill the vector cache with ``(table_id, index)`` keys.

        The static-hot workflow (RecFlash): profile the trace, pin the
        hot set, serve.  Returns the resident vector count.
        """
        cache = self.controller.vcache
        if cache is None:
            raise ValueError("no vector cache configured on this device")
        return cache.warm(
            ((int(t), int(i)), self._load_vector(int(t), int(i)))
            for t, i in keys
        )

    # ------------------------------------------------------------------
    # Discrete-event execution
    # ------------------------------------------------------------------
    def _read_all_proc(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> Generator:
        """Process: issue every vector read of the batch concurrently.

        Returns the raw vectors as ``(sample, table, position) -> row``
        so EV Sum can reduce in lookup order regardless of completion
        order (the Path Buffer's job).
        """
        sim = self.controller.sim
        events = []
        slots = []
        for sample_id, sample in enumerate(sparse_batch):
            if len(sample) != len(self.tables):
                raise ValueError(
                    f"sample {sample_id}: {len(sample)} index lists for "
                    f"{len(self.tables)} tables"
                )
            for table_id, indices in enumerate(sample):
                for position, index in enumerate(indices):
                    read = self.translator.translate(table_id, index)
                    events.append(
                        sim.process(
                            self.controller.read_vector_proc(
                                read.device_offset, read.size
                            )
                        )
                    )
                    slots.append((sample_id, table_id, position))
        results = yield sim.all_of(events)
        raw: Dict[tuple, np.ndarray] = {}
        for slot, request in zip(slots, results):
            raw[slot] = np.frombuffer(request.data, dtype=np.float32)
        return raw

    def _read_misses_proc(self, misses: Sequence[tuple]) -> Generator:
        """Process: issue the cache-missed vector reads concurrently.

        ``misses`` is the probe's miss list — ``(slot, table_id, row)``
        in issue order, so the FTL MUX serves the flash reads in the
        same order the cache-free DES would serve them.
        """
        sim = self.controller.sim
        events = []
        slots = []
        for slot, table_id, row in misses:
            read = self.translator.translate(table_id, row)
            events.append(
                sim.process(
                    self.controller.read_vector_proc(
                        read.device_offset, read.size
                    )
                )
            )
            slots.append(slot)
        results = yield sim.all_of(events)
        raw: Dict[tuple, np.ndarray] = {}
        for slot, request in zip(slots, results):
            raw[slot] = np.frombuffer(request.data, dtype=np.float32)
        return raw

    def lookup_batch(
        self,
        sparse_batch: Sequence[Sequence[Sequence[int]]],
        fast: Optional[bool] = None,
    ) -> LookupResult:
        """Run a batched lookup to completion on the simulation clock.

        Pools per (sample, table) in lookup order and concatenates per
        sample — the EV Sum semantics.

        ``fast=None`` defers to the ``RMSSD_FASTPATH`` flag.  The fast
        path replays the batch without per-read processes (same elapsed
        time, bitwise-identical pooled outputs) but requires exclusive
        use of the flash channels: any in-flight work — concurrent
        block I/O from :meth:`repro.core.device.RMSSD.
        start_background_block_reads`, for example — falls back to the
        DES, as does request-history recording on the EV-FMC.
        """
        if fast is None:
            fast = fastpath.enabled()
        sim = self.controller.sim
        if (
            fast
            and len(sparse_batch) > 0
            and sim.peek() is None
            and not self.controller.fmc.keep_history
        ):
            if self.controller.vcache is not None:
                return self._lookup_batch_fast_vcache(sparse_batch)
            return self._lookup_batch_fast(sparse_batch)
        return self._lookup_batch_des(sparse_batch)

    def _emit_lookup_spans(
        self,
        start: float,
        elapsed: float,
        ev_sum_ns: float,
        vectors_read: int,
        nbatch: int,
        path: str,
        mark,
        vcache_hits: int = 0,
        vcache_ns: float = 0.0,
        vcache_enabled: bool = False,
    ) -> None:
        """Span tree of one batched lookup, identical for both paths.

        Every quantity here — ``start``, ``elapsed``, ``ev_sum_ns`` and
        the server states behind ``emit_batch_spans`` — is bitwise
        equal between the DES and the fast path (the PR 2 equivalence
        contract), so the emitted trees match exactly; pinned by
        ``tests/test_obs_span_equivalence.py``.

        With the vector cache enabled, a ``vcache`` span covers the
        DRAM fetch of the hit vectors (overlapping ``flash_read``) and
        ``ev_sum`` starts when the slower of the two streams drains;
        with it disabled the tree is byte-identical to the cache-free
        build.
        """
        tracer = self.controller.tracer
        stage_ns = max(elapsed, vcache_ns) if vcache_enabled else elapsed
        end = start + stage_ns + ev_sum_ns
        track = tracer.lane_track("emb", start, end)
        batch_args = {"vectors": vectors_read, "samples": nbatch, "path": path}
        if vcache_enabled:
            batch_args["vcache_hits"] = vcache_hits
        tracer.add_span(
            names.SPAN_LOOKUP_BATCH,
            start,
            end,
            cat="emb",
            track=track,
            args=batch_args,
        )
        tracer.add_span(
            names.SPAN_TRANSLATE,
            start,
            start,
            cat="emb",
            track=track,
            args={"vectors": vectors_read},
        )
        tracer.add_span(
            names.SPAN_FLASH_READ, start, start + elapsed, cat="emb", track=track
        )
        if vcache_enabled:
            tracer.add_span(
                names.VCACHE,
                start,
                start + vcache_ns,
                cat="emb",
                track=track,
                args={"hits": vcache_hits},
            )
        tracer.add_span(
            names.EV_SUM,
            start + stage_ns,
            end,
            cat="emb",
            track=track,
            args={"vectors": vectors_read + vcache_hits},
        )
        self.controller.emit_batch_spans(start, mark)

    def _profile_lookup(
        self,
        start: float,
        elapsed: float,
        ev_sum_ns: float,
        vcache_ns: float = 0.0,
        vcache_enabled: bool = False,
    ) -> None:
        """Busy intervals of the engines the DES does not model as
        resources: the EV-Sum adder tree and the controller-DRAM
        vcache stream are analytic add-ons, so their occupancy is
        reported here — from the same bitwise-equal quantities the
        span tree uses, identically on both execution paths.
        """
        profiler = self.controller.sim.profiler
        if profiler is None or not profiler.enabled:
            return
        stage_ns = max(elapsed, vcache_ns) if vcache_enabled else elapsed
        profiler.record_busy(
            names.EV_SUM,
            start + stage_ns,
            start + stage_ns + ev_sum_ns,
            names.KIND_EV_SUM,
        )
        if vcache_enabled:
            profiler.record_busy(
                names.VCACHE, start, start + vcache_ns, names.VCACHE
            )

    def _lookup_batch_des(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> LookupResult:
        """Reference path: one simulation process per vector read.

        With a vector cache configured, the batch is probed first (in
        issue order) and only the misses become read processes; hit
        vectors are merged back by slot before EV Sum, so pooling still
        accumulates in lookup order.
        """
        sim = self.controller.sim
        start = sim.now
        tracer = self.controller.tracer
        mark = self.controller.batch_mark() if tracer.enabled else None
        vcache = self.controller.vcache
        if vcache is None:
            proc = sim.process(self._read_all_proc(sparse_batch))
            sim.run()
            raw = proc.value
            vcache_hits = 0
            vcache_ns = 0.0
        else:
            raw, misses, total = self._probe_vcache(sparse_batch)
            proc = sim.process(self._read_misses_proc(misses))
            sim.run()
            raw.update(proc.value)
            vcache_hits = total - len(misses)
            vcache_ns = self._account_vcache(vcache_hits, total)
        elapsed = sim.now - start
        total_vectors = len(raw)
        vectors_read = total_vectors - vcache_hits
        # EV Sum: accumulate in lookup order for bitwise-stable fp32.
        pooled_rows: List[np.ndarray] = []
        for sample_id, sample in enumerate(sparse_batch):
            per_table: List[np.ndarray] = []
            for table_id, indices in enumerate(sample):
                acc = np.zeros(self.dim, dtype=np.float32)
                for position in range(len(indices)):
                    acc += raw[(sample_id, table_id, position)]
                if self.pooling == "mean" and indices:
                    acc = (acc / np.float32(len(indices))).astype(np.float32)
                per_table.append(acc)
            pooled_rows.append(np.concatenate(per_table).astype(np.float32))
        self.controller.stats.record_useful(total_vectors * self.tables.ev_size)
        ev_sum_ns = self.controller.timing.cycles_to_ns(
            EV_SUM_CYCLES_PER_VECTOR * total_vectors
        )
        stage_ns = elapsed if vcache is None else max(elapsed, vcache_ns)
        if tracer.enabled:
            self._emit_lookup_spans(
                start, elapsed, ev_sum_ns, vectors_read,
                len(sparse_batch), "des", mark,
                vcache_hits=vcache_hits,
                vcache_ns=vcache_ns,
                vcache_enabled=vcache is not None,
            )
        self._profile_lookup(
            start, elapsed, ev_sum_ns, vcache_ns, vcache is not None
        )
        return LookupResult(
            pooled=np.stack(pooled_rows),
            elapsed_ns=stage_ns + ev_sum_ns,
            vectors_read=vectors_read,
            path="des",
            vcache_hits=vcache_hits,
            vcache_ns=vcache_ns,
        )

    def _lookup_batch_fast(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> LookupResult:
        """Vectorized path: translate, replay, gather, segment-reduce.

        Produces the same elapsed time and bitwise-identical pooled
        outputs as :meth:`_lookup_batch_des`
        (``tests/test_fastpath_equivalence.py``), in O(vectors) numpy
        work instead of O(vectors) Python processes.
        """
        sim = self.controller.sim
        start = sim.now
        tracer = self.controller.tracer
        mark = self.controller.batch_mark() if tracer.enabled else None
        num_tables = len(self.tables)
        # Per-(sample, table) lengths and the flat index stream, in
        # issue order (sample-major) — the order the DES creates its
        # read processes in, which fixes the FTL service order.
        cells: List[Sequence[int]] = []
        for sample_id, sample in enumerate(sparse_batch):
            if len(sample) != num_tables:
                raise ValueError(
                    f"sample {sample_id}: {len(sample)} index lists for "
                    f"{num_tables} tables"
                )
            cells.extend(sample)
        lengths = np.fromiter(
            (len(cell) for cell in cells), dtype=np.int64, count=len(cells)
        )
        vectors_read = int(lengths.sum())
        ev_size = self.tables.ev_size
        timing = self.controller.timing
        ev_sum_ns = timing.cycles_to_ns(EV_SUM_CYCLES_PER_VECTOR * vectors_read)
        if vectors_read == 0:
            pooled = np.zeros(
                (len(sparse_batch), num_tables * self.dim), dtype=np.float32
            )
            self.controller.stats.record_useful(0)
            sim.run(until=start)
            if tracer.enabled:
                self._emit_lookup_spans(
                    start, 0.0, ev_sum_ns, 0, len(sparse_batch), "fast", mark
                )
            self._profile_lookup(start, 0.0, ev_sum_ns)
            return LookupResult(
                pooled=pooled,
                elapsed_ns=ev_sum_ns,
                vectors_read=0,
                path="fast",
            )
        flat_indices = np.concatenate(
            [np.asarray(cell, dtype=np.int64) for cell in cells if len(cell)]
        )
        table_ids = np.tile(np.arange(num_tables), len(sparse_batch))
        flat_tables = np.repeat(table_ids, lengths)
        # Fig. 6 translation, batched per table.
        device_offsets = np.empty(vectors_read, dtype=np.int64)
        for table_id in range(num_tables):
            members = np.flatnonzero(flat_tables == table_id)
            if members.size:
                device_offsets[members] = self.translator.translate_array(
                    table_id, flat_indices[members]
                )
        physical_pages, cols = self.controller.translate_vector_offsets(
            device_offsets, ev_size
        )
        channel_ids, die_ids = self.controller.geometry.split_page_indices(
            physical_pages
        )
        # Timing: serialize the shared FTL stage, then replay the
        # two-phase flash protocol per channel.
        enter_ns = self.controller.serve_ftl_batch(vectors_read)
        transfer_ns = np.full(
            vectors_read, timing.vector_transfer_ns(ev_size)
        )
        _, end = fastpath.replay_reads(
            self.controller.flash,
            enter_ns,
            channel_ids,
            die_ids,
            transfer_ns,
            staged=True,
        )
        self.controller.stats.record_vector_reads(
            vectors_read, vectors_read * ev_size
        )
        self.controller.stats.record_useful(vectors_read * ev_size)
        sim.run(until=end)
        elapsed = sim.now - start
        # EV Sum: gather rows from the flash pages, then reduce each
        # (sample, table) segment strictly left to right.
        rows = self.controller.flash.peek_vectors(physical_pages, cols, ev_size)
        mode = self.pooling
        pooled = segment_pool(rows, lengths, mode).reshape(
            len(sparse_batch), num_tables * self.dim
        )
        if tracer.enabled:
            self._emit_lookup_spans(
                start, elapsed, ev_sum_ns, vectors_read,
                len(sparse_batch), "fast", mark,
            )
        self._profile_lookup(start, elapsed, ev_sum_ns)
        return LookupResult(
            pooled=pooled,
            elapsed_ns=elapsed + ev_sum_ns,
            vectors_read=vectors_read,
            path="fast",
        )

    def _lookup_batch_fast_vcache(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> LookupResult:
        """Vectorized path with the controller-DRAM cache enabled.

        Probes the cache in the same issue order as the DES (so both
        paths observe identical hit sets and cache states), replays
        only the missed reads through the PR 2 machinery, and fills
        the hit rows from cached DRAM copies — bitwise-equal pooled
        outputs, elapsed times, and span trees
        (``tests/test_vcache_equivalence.py``).
        """
        sim = self.controller.sim
        start = sim.now
        tracer = self.controller.tracer
        mark = self.controller.batch_mark() if tracer.enabled else None
        num_tables = len(self.tables)
        raw_hits, misses, total = self._probe_vcache(sparse_batch)
        vectors_read = len(misses)
        vcache_hits = total - vectors_read
        ev_size = self.tables.ev_size
        timing = self.controller.timing
        ev_sum_ns = timing.cycles_to_ns(EV_SUM_CYCLES_PER_VECTOR * total)
        vcache_ns = self._account_vcache(vcache_hits, total)
        if total == 0:
            pooled = np.zeros(
                (len(sparse_batch), num_tables * self.dim), dtype=np.float32
            )
            self.controller.stats.record_useful(0)
            sim.run(until=start)
            if tracer.enabled:
                self._emit_lookup_spans(
                    start, 0.0, ev_sum_ns, 0, len(sparse_batch), "fast", mark,
                    vcache_hits=0, vcache_ns=vcache_ns, vcache_enabled=True,
                )
            self._profile_lookup(start, 0.0, ev_sum_ns, vcache_ns, True)
            return LookupResult(
                pooled=pooled,
                elapsed_ns=ev_sum_ns,
                vectors_read=0,
                path="fast",
                vcache_hits=0,
                vcache_ns=vcache_ns,
            )
        # Flat row slots in issue order: lookup (sample, table, position)
        # lands at cell_offset + position, matching both the probe order
        # and the DES's read-process creation order.
        lengths = np.fromiter(
            (len(indices) for sample in sparse_batch for indices in sample),
            dtype=np.int64,
            count=len(sparse_batch) * num_tables,
        )
        offsets = np.zeros(len(lengths), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        rows = np.empty((total, self.dim), dtype=np.float32)
        for (sample_id, table_id, position), vector in raw_hits.items():
            rows[offsets[sample_id * num_tables + table_id] + position] = vector
        if vectors_read:
            miss_tables = np.fromiter(
                (miss[1] for miss in misses), dtype=np.int64, count=vectors_read
            )
            miss_rows = np.fromiter(
                (miss[2] for miss in misses), dtype=np.int64, count=vectors_read
            )
            device_offsets = np.empty(vectors_read, dtype=np.int64)
            for table_id in range(num_tables):
                members = np.flatnonzero(miss_tables == table_id)
                if members.size:
                    device_offsets[members] = self.translator.translate_array(
                        table_id, miss_rows[members]
                    )
            physical_pages, cols = self.controller.translate_vector_offsets(
                device_offsets, ev_size
            )
            channel_ids, die_ids = self.controller.geometry.split_page_indices(
                physical_pages
            )
            enter_ns = self.controller.serve_ftl_batch(vectors_read)
            transfer_ns = np.full(
                vectors_read, timing.vector_transfer_ns(ev_size)
            )
            _, end = fastpath.replay_reads(
                self.controller.flash,
                enter_ns,
                channel_ids,
                die_ids,
                transfer_ns,
                staged=True,
            )
            self.controller.stats.record_vector_reads(
                vectors_read, vectors_read * ev_size
            )
            sim.run(until=end)
            miss_slots = np.fromiter(
                (
                    offsets[miss[0][0] * num_tables + miss[0][1]] + miss[0][2]
                    for miss in misses
                ),
                dtype=np.int64,
                count=vectors_read,
            )
            rows[miss_slots] = self.controller.flash.peek_vectors(
                physical_pages, cols, ev_size
            )
        else:
            sim.run(until=start)
        elapsed = sim.now - start
        self.controller.stats.record_useful(total * ev_size)
        pooled = segment_pool(rows, lengths, self.pooling).reshape(
            len(sparse_batch), num_tables * self.dim
        )
        if tracer.enabled:
            self._emit_lookup_spans(
                start, elapsed, ev_sum_ns, vectors_read,
                len(sparse_batch), "fast", mark,
                vcache_hits=vcache_hits,
                vcache_ns=vcache_ns,
                vcache_enabled=True,
            )
        self._profile_lookup(start, elapsed, ev_sum_ns, vcache_ns, True)
        return LookupResult(
            pooled=pooled,
            elapsed_ns=max(elapsed, vcache_ns) + ev_sum_ns,
            vectors_read=vectors_read,
            path="fast",
            vcache_hits=vcache_hits,
            vcache_ns=vcache_ns,
        )

    # ------------------------------------------------------------------
    # Analytic view
    # ------------------------------------------------------------------
    def analytic_cycles(self, vectors: int) -> int:
        return flash_read_cycles(
            vectors,
            self.controller.geometry,
            self.controller.timing,
            self.tables.ev_size,
        )
