"""Embedding Lookup Engine (Section IV-B).

The engine chains the EV Translator, the vector-grained EV-FMC reads,
and the EV Sum pooling unit:

* lookups are translated to device addresses using only on-device
  extent metadata;
* vector reads are striped over all channels and dies (the layout's
  channel-major page numbering does the striping);
* returned vectors are accumulated per table in *lookup order* by the
  fadd array, so results match the host SLS operator bit for bit.

Two views are provided: an analytic bandwidth model (used by the kernel
search and quick sizing) and a discrete-event execution (used by the
end-to-end device, capturing real queueing over the trace's channel
distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.embedding.layout import EmbeddingLayout
from repro.embedding.pooling import segment_pool
from repro.embedding.translator import EVTranslator
from repro.ssd import fastpath
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel

#: EV Sum cost per returned vector, in cycles: the fadd array adds all
#: dimensions in parallel, pipelined one vector per cycle plus a small
#: drain.  Negligible next to flash reads ("the time consumption of
#: embedding vector extraction and sum can be ignored for FPGA
#: handling").
EV_SUM_CYCLES_PER_VECTOR = 1


def effective_vector_bandwidth(
    geometry: SSDGeometry,
    timing: SSDTimingModel,
    ev_size: int,
) -> float:
    """``bEV``: sustained vector reads per engine cycle, whole device.

    Per channel, throughput is bounded by (a) its dies, which can
    overlap flushes (one vector per ``CEV`` cycles per die), and (b)
    the shared channel bus (one vector's transfer slice at a time).
    """
    cev = timing.vector_read_cycles(ev_size)
    per_die = 1.0 / cev
    die_bound = geometry.dies_per_channel * per_die
    bus_bound = 1.0 / timing.vector_transfer_cycles(ev_size)
    return geometry.channels * min(die_bound, bus_bound)


def effective_page_bandwidth(
    geometry: SSDGeometry,
    timing: SSDTimingModel,
) -> float:
    """Sustained full-page reads per engine cycle, whole device.

    The page-granularity analogue of :func:`effective_vector_bandwidth`
    — what the EMB-PageSum / EMB-MMIO / RecSSD paths achieve.  Pages
    pay the full transfer slice on the shared bus, which is why the
    vector-grained path beats them on bulk throughput.
    """
    die_bound = geometry.dies_per_channel / timing.page_read_cycles
    bus_bound = 1.0 / timing.transfer_cycles
    return geometry.channels * min(die_bound, bus_bound)


def flash_read_cycles(
    vectors: int,
    geometry: SSDGeometry,
    timing: SSDTimingModel,
    ev_size: int,
) -> int:
    """Analytic cycles to stream ``vectors`` embedding reads (Eq. 1a's
    ``M*N / bEV`` term)."""
    if vectors <= 0:
        return 0
    return ceil(vectors / effective_vector_bandwidth(geometry, timing, ev_size))


@dataclass
class LookupResult:
    """Output of one batched lookup: pooled vectors plus timing.

    ``path`` records which execution path produced the result:
    ``"des"`` (per-read simulation processes) or ``"fast"`` (the
    vectorized replay, bitwise-equal by construction and by test).
    """

    pooled: np.ndarray  # batch x (tables * dim)
    elapsed_ns: float
    vectors_read: int
    path: str = "des"

    def elapsed_cycles(self, cycle_ns: float) -> float:
        return self.elapsed_ns / cycle_ns


class EmbeddingLookupEngine:
    """Translator + EV-FMC + EV Sum over a laid-out table set.

    ``pooling`` selects the EV Sum reduction: ``"sum"`` (the default
    SparseLengthSum semantics) or ``"mean"`` (average pooling — the
    fadd array followed by one multiply by ``1/N``).
    """

    def __init__(
        self,
        controller: SSDController,
        layout: EmbeddingLayout,
        pooling: str = "sum",
    ) -> None:
        if pooling not in ("sum", "mean"):
            raise ValueError(f"unknown pooling mode {pooling!r}")
        self.controller = controller
        self.layout = layout
        self.pooling = pooling
        self.tables = layout.tables
        self.translator = EVTranslator(page_size=controller.geometry.page_size)
        for table_id, ranges in layout.metadata().items():
            self.translator.register_table(
                table_id,
                ranges,
                self.tables.ev_size,
                self.tables[table_id].rows,
            )

    @property
    def dim(self) -> int:
        return self.tables.dim

    # ------------------------------------------------------------------
    # Discrete-event execution
    # ------------------------------------------------------------------
    def _read_all_proc(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> Generator:
        """Process: issue every vector read of the batch concurrently.

        Returns the raw vectors as ``(sample, table, position) -> row``
        so EV Sum can reduce in lookup order regardless of completion
        order (the Path Buffer's job).
        """
        sim = self.controller.sim
        events = []
        slots = []
        for sample_id, sample in enumerate(sparse_batch):
            if len(sample) != len(self.tables):
                raise ValueError(
                    f"sample {sample_id}: {len(sample)} index lists for "
                    f"{len(self.tables)} tables"
                )
            for table_id, indices in enumerate(sample):
                for position, index in enumerate(indices):
                    read = self.translator.translate(table_id, index)
                    events.append(
                        sim.process(
                            self.controller.read_vector_proc(
                                read.device_offset, read.size
                            )
                        )
                    )
                    slots.append((sample_id, table_id, position))
        results = yield sim.all_of(events)
        raw: Dict[tuple, np.ndarray] = {}
        for slot, request in zip(slots, results):
            raw[slot] = np.frombuffer(request.data, dtype=np.float32)
        return raw

    def lookup_batch(
        self,
        sparse_batch: Sequence[Sequence[Sequence[int]]],
        fast: Optional[bool] = None,
    ) -> LookupResult:
        """Run a batched lookup to completion on the simulation clock.

        Pools per (sample, table) in lookup order and concatenates per
        sample — the EV Sum semantics.

        ``fast=None`` defers to the ``RMSSD_FASTPATH`` flag.  The fast
        path replays the batch without per-read processes (same elapsed
        time, bitwise-identical pooled outputs) but requires exclusive
        use of the flash channels: any in-flight work — concurrent
        block I/O from :meth:`repro.core.device.RMSSD.
        start_background_block_reads`, for example — falls back to the
        DES, as does request-history recording on the EV-FMC.
        """
        if fast is None:
            fast = fastpath.enabled()
        sim = self.controller.sim
        if (
            fast
            and len(sparse_batch) > 0
            and sim.peek() is None
            and not self.controller.fmc.keep_history
        ):
            return self._lookup_batch_fast(sparse_batch)
        return self._lookup_batch_des(sparse_batch)

    def _emit_lookup_spans(
        self,
        start: float,
        elapsed: float,
        ev_sum_ns: float,
        vectors_read: int,
        nbatch: int,
        path: str,
        mark,
    ) -> None:
        """Span tree of one batched lookup, identical for both paths.

        Every quantity here — ``start``, ``elapsed``, ``ev_sum_ns`` and
        the server states behind ``emit_batch_spans`` — is bitwise
        equal between the DES and the fast path (the PR 2 equivalence
        contract), so the emitted trees match exactly; pinned by
        ``tests/test_obs_span_equivalence.py``.
        """
        tracer = self.controller.tracer
        end = start + elapsed + ev_sum_ns
        track = tracer.lane_track("emb", start, end)
        tracer.add_span(
            "lookup_batch",
            start,
            end,
            cat="emb",
            track=track,
            args={"vectors": vectors_read, "samples": nbatch, "path": path},
        )
        tracer.add_span(
            "translate",
            start,
            start,
            cat="emb",
            track=track,
            args={"vectors": vectors_read},
        )
        tracer.add_span("flash_read", start, start + elapsed, cat="emb", track=track)
        tracer.add_span(
            "ev_sum",
            start + elapsed,
            end,
            cat="emb",
            track=track,
            args={"vectors": vectors_read},
        )
        self.controller.emit_batch_spans(start, mark)

    def _lookup_batch_des(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> LookupResult:
        """Reference path: one simulation process per vector read."""
        sim = self.controller.sim
        start = sim.now
        tracer = self.controller.tracer
        mark = self.controller.batch_mark() if tracer.enabled else None
        proc = sim.process(self._read_all_proc(sparse_batch))
        sim.run()
        raw = proc.value
        elapsed = sim.now - start
        vectors_read = len(raw)
        # EV Sum: accumulate in lookup order for bitwise-stable fp32.
        pooled_rows: List[np.ndarray] = []
        for sample_id, sample in enumerate(sparse_batch):
            per_table: List[np.ndarray] = []
            for table_id, indices in enumerate(sample):
                acc = np.zeros(self.dim, dtype=np.float32)
                for position in range(len(indices)):
                    acc += raw[(sample_id, table_id, position)]
                if self.pooling == "mean" and indices:
                    acc = (acc / np.float32(len(indices))).astype(np.float32)
                per_table.append(acc)
            pooled_rows.append(np.concatenate(per_table).astype(np.float32))
        self.controller.stats.record_useful(vectors_read * self.tables.ev_size)
        ev_sum_ns = self.controller.timing.cycles_to_ns(
            EV_SUM_CYCLES_PER_VECTOR * vectors_read
        )
        if tracer.enabled:
            self._emit_lookup_spans(
                start, elapsed, ev_sum_ns, vectors_read,
                len(sparse_batch), "des", mark,
            )
        return LookupResult(
            pooled=np.stack(pooled_rows),
            elapsed_ns=elapsed + ev_sum_ns,
            vectors_read=vectors_read,
            path="des",
        )

    def _lookup_batch_fast(
        self, sparse_batch: Sequence[Sequence[Sequence[int]]]
    ) -> LookupResult:
        """Vectorized path: translate, replay, gather, segment-reduce.

        Produces the same elapsed time and bitwise-identical pooled
        outputs as :meth:`_lookup_batch_des`
        (``tests/test_fastpath_equivalence.py``), in O(vectors) numpy
        work instead of O(vectors) Python processes.
        """
        sim = self.controller.sim
        start = sim.now
        tracer = self.controller.tracer
        mark = self.controller.batch_mark() if tracer.enabled else None
        num_tables = len(self.tables)
        # Per-(sample, table) lengths and the flat index stream, in
        # issue order (sample-major) — the order the DES creates its
        # read processes in, which fixes the FTL service order.
        cells: List[Sequence[int]] = []
        for sample_id, sample in enumerate(sparse_batch):
            if len(sample) != num_tables:
                raise ValueError(
                    f"sample {sample_id}: {len(sample)} index lists for "
                    f"{num_tables} tables"
                )
            cells.extend(sample)
        lengths = np.fromiter(
            (len(cell) for cell in cells), dtype=np.int64, count=len(cells)
        )
        vectors_read = int(lengths.sum())
        ev_size = self.tables.ev_size
        timing = self.controller.timing
        ev_sum_ns = timing.cycles_to_ns(EV_SUM_CYCLES_PER_VECTOR * vectors_read)
        if vectors_read == 0:
            pooled = np.zeros(
                (len(sparse_batch), num_tables * self.dim), dtype=np.float32
            )
            self.controller.stats.record_useful(0)
            sim.run(until=start)
            if tracer.enabled:
                self._emit_lookup_spans(
                    start, 0.0, ev_sum_ns, 0, len(sparse_batch), "fast", mark
                )
            return LookupResult(
                pooled=pooled,
                elapsed_ns=ev_sum_ns,
                vectors_read=0,
                path="fast",
            )
        flat_indices = np.concatenate(
            [np.asarray(cell, dtype=np.int64) for cell in cells if len(cell)]
        )
        table_ids = np.tile(np.arange(num_tables), len(sparse_batch))
        flat_tables = np.repeat(table_ids, lengths)
        # Fig. 6 translation, batched per table.
        device_offsets = np.empty(vectors_read, dtype=np.int64)
        for table_id in range(num_tables):
            members = np.flatnonzero(flat_tables == table_id)
            if members.size:
                device_offsets[members] = self.translator.translate_array(
                    table_id, flat_indices[members]
                )
        physical_pages, cols = self.controller.translate_vector_offsets(
            device_offsets, ev_size
        )
        channel_ids, die_ids = self.controller.geometry.split_page_indices(
            physical_pages
        )
        # Timing: serialize the shared FTL stage, then replay the
        # two-phase flash protocol per channel.
        enter_ns = self.controller.serve_ftl_batch(vectors_read)
        transfer_ns = np.full(
            vectors_read, timing.vector_transfer_ns(ev_size)
        )
        _, end = fastpath.replay_reads(
            self.controller.flash,
            enter_ns,
            channel_ids,
            die_ids,
            transfer_ns,
            staged=True,
        )
        self.controller.stats.record_vector_reads(
            vectors_read, vectors_read * ev_size
        )
        self.controller.stats.record_useful(vectors_read * ev_size)
        sim.run(until=end)
        elapsed = sim.now - start
        # EV Sum: gather rows from the flash pages, then reduce each
        # (sample, table) segment strictly left to right.
        rows = self.controller.flash.peek_vectors(physical_pages, cols, ev_size)
        mode = self.pooling
        pooled = segment_pool(rows, lengths, mode).reshape(
            len(sparse_batch), num_tables * self.dim
        )
        if tracer.enabled:
            self._emit_lookup_spans(
                start, elapsed, ev_sum_ns, vectors_read,
                len(sparse_batch), "fast", mark,
            )
        return LookupResult(
            pooled=pooled,
            elapsed_ns=elapsed + ev_sum_ns,
            vectors_read=vectors_read,
            path="fast",
        )

    # ------------------------------------------------------------------
    # Analytic view
    # ------------------------------------------------------------------
    def analytic_cycles(self, vectors: int) -> int:
        return flash_read_cycles(
            vectors,
            self.controller.geometry,
            self.controller.timing,
            self.tables.ev_size,
        )
