"""Discrete-event validation of the Eq. 1 pipeline model.

The analytic stage-time model assumes perfect pipelining: steady-state
throughput of one batch per ``max(Temb', Tbot', Ttop')``.  This module
*simulates* the three-stage pipeline on the DES kernel — each engine
stage is a unit-capacity server, batches flow embedding∥bottom -> top —
so the assumption can be checked rather than trusted, including under
per-batch service-time jitter (real flash reads vary with striping
luck).

Used by ``benchmarks/bench_ext_pipeline_validation.py`` and the unit
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence

import numpy as np

from repro.core import pipeline_fast
from repro.fpga.compose import StageTimes
from repro.obs import names, resolve_profiler, resolve_tracer
from repro.sim import Server, Simulator


@dataclass
class BatchRecord:
    """Timeline of one batch through the pipeline (ns).

    The ``*_start_ns`` fields record when each stage's *service*
    began (after any wait for the stage server), so queueing and
    service time separate cleanly: the queue wait is
    ``emb_start_ns - arrival_ns``.
    """

    index: int
    arrival_ns: float
    emb_start_ns: float = 0.0
    emb_done_ns: float = 0.0
    bot_start_ns: float = 0.0
    bot_done_ns: float = 0.0
    top_start_ns: float = 0.0
    top_done_ns: float = 0.0

    @property
    def latency_ns(self) -> float:
        return self.top_done_ns - self.arrival_ns

    @property
    def queue_ns(self) -> float:
        """Time spent waiting before the embedding stage started."""
        return self.emb_start_ns - self.arrival_ns


@dataclass
class PipelineRunResult:
    """Outcome of streaming N batches through the simulated pipeline."""

    records: List[BatchRecord]
    makespan_ns: float
    #: Which implementation produced the records: "des" for the
    #: event-driven reference, "fast" for the closed-form replay
    #: (bitwise-equal; see repro/core/pipeline_fast.py).
    path: str = "des"

    @property
    def batches(self) -> int:
        return len(self.records)

    @property
    def steady_interval_ns(self) -> float:
        """Mean inter-completion gap once the pipeline is full."""
        completions = [r.top_done_ns for r in self.records]
        if len(completions) < 3:
            return self.makespan_ns / max(1, len(completions))
        # Skip the fill: measure from the second completion on.
        gaps = [b - a for a, b in zip(completions[1:], completions[2:])]
        return sum(gaps) / len(gaps)

    @property
    def mean_latency_ns(self) -> float:
        return sum(r.latency_ns for r in self.records) / len(self.records)


class PipelineSimulator:
    """Three-stage RM-SSD pipeline on the DES.

    ``emb_ns`` / ``bot_ns`` / ``top_ns`` give each batch's stage times;
    they may be constants or callables of the batch index (to inject
    jitter).  Embedding and bottom-MLP stages run concurrently for a
    batch; the top stage starts when both finish.  Each stage serves
    one batch at a time (the engines are single pipelines), which is
    exactly the structure behind Eq. 1.
    """

    def __init__(
        self,
        emb_ns,
        bot_ns,
        top_ns,
        tracer=None,
        profiler=None,
        metrics=None,
        critpath=None,
    ) -> None:
        # Raw values feed the fast replay (constants skip its
        # per-index evaluation loop); the DES always calls through
        # the normalized callables.
        self._emb_raw = emb_ns
        self._bot_raw = bot_ns
        self._top_raw = top_ns
        self._emb = self._as_fn(emb_ns)
        self._bot = self._as_fn(bot_ns)
        self._top = self._as_fn(top_ns)
        self.tracer = resolve_tracer(tracer)
        #: Utilization profiler fed by both paths: the DES wires it
        #: into its Simulator (Server.serve records the triples), the
        #: fast replay records the identical triples directly.
        self.profiler = resolve_profiler(profiler)
        #: Optional MetricsRegistry: each path observes per-batch
        #: latency/queue-wait into the serving histograms, stamped at
        #: the batch's completion instant so a windowed registry rolls
        #: them into simulated-clock windows (repro.obs.timeseries).
        #: Both paths call _observe_completions with bitwise-equal
        #: timestamps — lint R9's SERVING_PARITY spec diffs the two
        #: emission sets, and the injected canary asserts drift fires.
        self.metrics = metrics
        #: Optional CritPathCollector (repro.obs.critpath): each path
        #: feeds it the finished run's per-batch records through its
        #: own wrapper (_explain_des / _explain_fast) so the R9
        #: EXPLAIN_PARITY spec can diff the two feeds — the canary
        #: deletes the fast one and asserts R9 names the stream.
        self.critpath = critpath

    @staticmethod
    def _as_fn(value) -> Callable[[int], float]:
        if callable(value):
            return value
        return lambda _index: float(value)

    @classmethod
    def from_stage_times(
        cls,
        times: StageTimes,
        cycle_ns: float = 5.0,
        tracer=None,
        profiler=None,
        metrics=None,
        critpath=None,
    ) -> "PipelineSimulator":
        return cls(
            emb_ns=times.temb * cycle_ns,
            bot_ns=times.tbot * cycle_ns,
            top_ns=times.ttop * cycle_ns,
            tracer=tracer,
            profiler=profiler,
            metrics=metrics,
            critpath=critpath,
        )

    def run(
        self,
        batches: int,
        arrival_interval_ns: float = 0.0,
        arrival_times_ns: Optional[Sequence[float]] = None,
        fast: Optional[bool] = None,
    ) -> PipelineRunResult:
        """Stream ``batches`` through the pipeline.

        ``arrival_interval_ns = 0`` models the host pre-send keeping
        the device saturated; a positive value models a fixed-rate
        open loop; ``arrival_times_ns`` overrides with explicit
        (sorted) arrival instants — e.g. a Poisson process.

        ``fast=None`` follows ``RMSSD_FASTPATH`` (default on): the
        closed-form replay is bitwise-equal to the DES for index-pure
        stage-time callables (constants always qualify).  Pass
        ``fast=False`` for stage callables with cross-call state whose
        results depend on evaluation count rather than batch index.
        """
        if batches < 1:
            raise ValueError("need at least one batch")
        if arrival_times_ns is not None:
            if len(arrival_times_ns) != batches:
                raise ValueError("one arrival time per batch required")
            arrivals = list(arrival_times_ns)
            if len(arrivals) > 1 and bool(
                np.any(np.diff(np.asarray(arrivals, dtype=np.float64)) < 0)
            ):
                raise ValueError("arrival times must be sorted")
        else:
            arrivals = [i * arrival_interval_ns for i in range(batches)]
        if pipeline_fast.resolve_fast(fast):
            records, makespan, path = self._run_fast(arrivals)
        else:
            records, makespan, path = self._run_des(arrivals)
        if self.tracer.enabled:
            self._emit_spans(records)
        return PipelineRunResult(records=records, makespan_ns=makespan, path=path)

    def _observe_completions(self, records: Sequence[BatchRecord]) -> None:
        """Feed the serving metrics from a finished run's records.

        One latency + one queue-wait observation per batch, plus the
        batch counter, each stamped with the batch's *completion*
        instant — a windowed registry rolls them into the window the
        batch finished in.  Called once per path (DES and fast) on
        records whose timestamps are bitwise-equal, so windowed
        exports are byte-identical across paths.
        """
        metrics = self.metrics
        if metrics is None:
            return
        latency_histogram = metrics.histogram(names.METRIC_SERVING_LATENCY)
        queue_histogram = metrics.histogram(names.METRIC_SERVING_QUEUE)
        batch_counter = metrics.counter(names.METRIC_SERVING_BATCHES)
        for record in records:
            done = record.top_done_ns
            latency_histogram.observe(done - record.arrival_ns, t_ns=done)
            queue_histogram.observe(
                record.emb_start_ns - record.arrival_ns, t_ns=done
            )
            batch_counter.inc(1, t_ns=done)

    def _explain_des(self, records: Sequence[BatchRecord]) -> None:
        """DES-side per-request feed (R9 EXPLAIN_PARITY root).

        Kept as a separate method per path (rather than one shared
        helper) so the parity analysis — and its injected canary —
        can see each path's feed independently.
        """
        collector = self.critpath
        if collector is None:
            return
        collector.record_requests(names.CRITPATH_REQUESTS, records)

    def _explain_fast(self, records: Sequence[BatchRecord]) -> None:
        """Fast-side per-request feed (R9 EXPLAIN_PARITY root)."""
        collector = self.critpath
        if collector is None:
            return
        collector.record_requests(names.CRITPATH_REQUESTS, records)

    def _run_fast(self, arrivals: List[float]):
        """Closed-form replay; see :mod:`repro.core.pipeline_fast`."""
        timeline, makespan = pipeline_fast.replay_serving(
            self._emb_raw, self._bot_raw, self._top_raw, arrivals,
            profiler=self.profiler,
        )
        records = [
            BatchRecord(i, arrival, *stamps)
            for i, (arrival, stamps) in enumerate(zip(arrivals, timeline.tolist()))
        ]
        self._observe_completions(records)
        self._explain_fast(records)
        return records, makespan, "fast"

    def _run_des(self, arrivals: List[float]):
        """Event-driven reference: one flow process per batch."""
        sim = Simulator()
        sim.profiler = self.profiler
        emb_server = Server(sim, names.STAGE_EMB)
        bot_server = Server(sim, names.STAGE_BOT)
        top_server = Server(sim, names.STAGE_TOP)
        records = [
            BatchRecord(index=i, arrival_ns=arrival)
            for i, arrival in enumerate(arrivals)
        ]

        def flow(record: BatchRecord) -> Generator:
            if record.arrival_ns > sim.now:
                yield sim.timeout(record.arrival_ns - sim.now)

            def emb_stage() -> Generator:
                record.emb_start_ns = max(sim.now, emb_server.free_at)
                yield emb_server.serve(self._emb(record.index))
                record.emb_done_ns = sim.now

            def bot_stage() -> Generator:
                bot_time = self._bot(record.index)
                record.bot_start_ns = max(sim.now, bot_server.free_at)
                if bot_time > 0:
                    yield bot_server.serve(bot_time)
                else:
                    record.bot_start_ns = sim.now
                record.bot_done_ns = sim.now

            yield sim.all_of([sim.process(emb_stage()), sim.process(bot_stage())])
            top_time = self._top(record.index)
            record.top_start_ns = max(sim.now, top_server.free_at)
            if top_time > 0:
                yield top_server.serve(top_time)
            else:
                record.top_start_ns = sim.now
            record.top_done_ns = sim.now

        for record in records:
            sim.process(flow(record))
        sim.run()
        self._observe_completions(records)
        self._explain_des(records)
        return records, sim.now, "des"

    def _emit_spans(self, records: Sequence[BatchRecord]) -> None:
        """Span tree per batch: queue wait, then the three stages.

        Concurrent in-flight batches land on separate ``serve.req``
        lanes; the bottom-MLP stage overlaps the embedding stage, so
        it lives on its own ``serve.bot`` lane group.
        """
        tracer = self.tracer
        for record in records:
            track = tracer.lane_track(
                "serve.req", record.arrival_ns, record.top_done_ns
            )
            tracer.add_span(
                names.SPAN_BATCH,
                record.arrival_ns,
                record.top_done_ns,
                cat="serve",
                track=track,
                args={"index": record.index},
            )
            if record.emb_start_ns > record.arrival_ns:
                tracer.add_span(
                    names.SPAN_QUEUE,
                    record.arrival_ns,
                    record.emb_start_ns,
                    cat="serve",
                    track=track,
                )
            tracer.add_span(
                names.STAGE_EMB, record.emb_start_ns, record.emb_done_ns,
                cat="serve", track=track,
            )
            tracer.add_span(
                names.STAGE_TOP, record.top_start_ns, record.top_done_ns,
                cat="serve", track=track,
            )
            if record.bot_done_ns > record.bot_start_ns:
                bot_track = tracer.lane_track(
                    "serve.bot", record.bot_start_ns, record.bot_done_ns
                )
                tracer.add_span(
                    names.STAGE_BOT,
                    record.bot_start_ns,
                    record.bot_done_ns,
                    cat="serve",
                    track=bot_track,
                    args={"index": record.index},
                )
