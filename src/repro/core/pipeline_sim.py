"""Discrete-event validation of the Eq. 1 pipeline model.

The analytic stage-time model assumes perfect pipelining: steady-state
throughput of one batch per ``max(Temb', Tbot', Ttop')``.  This module
*simulates* the three-stage pipeline on the DES kernel — each engine
stage is a unit-capacity server, batches flow embedding∥bottom -> top —
so the assumption can be checked rather than trusted, including under
per-batch service-time jitter (real flash reads vary with striping
luck).

Used by ``benchmarks/bench_ext_pipeline_validation.py`` and the unit
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence

from repro.fpga.compose import StageTimes
from repro.sim import Server, Simulator


@dataclass
class BatchRecord:
    """Timeline of one batch through the pipeline (ns)."""

    index: int
    arrival_ns: float
    emb_done_ns: float = 0.0
    bot_done_ns: float = 0.0
    top_done_ns: float = 0.0

    @property
    def latency_ns(self) -> float:
        return self.top_done_ns - self.arrival_ns


@dataclass
class PipelineRunResult:
    """Outcome of streaming N batches through the simulated pipeline."""

    records: List[BatchRecord]
    makespan_ns: float

    @property
    def batches(self) -> int:
        return len(self.records)

    @property
    def steady_interval_ns(self) -> float:
        """Mean inter-completion gap once the pipeline is full."""
        completions = [r.top_done_ns for r in self.records]
        if len(completions) < 3:
            return self.makespan_ns / max(1, len(completions))
        # Skip the fill: measure from the second completion on.
        gaps = [b - a for a, b in zip(completions[1:], completions[2:])]
        return sum(gaps) / len(gaps)

    @property
    def mean_latency_ns(self) -> float:
        return sum(r.latency_ns for r in self.records) / len(self.records)


class PipelineSimulator:
    """Three-stage RM-SSD pipeline on the DES.

    ``emb_ns`` / ``bot_ns`` / ``top_ns`` give each batch's stage times;
    they may be constants or callables of the batch index (to inject
    jitter).  Embedding and bottom-MLP stages run concurrently for a
    batch; the top stage starts when both finish.  Each stage serves
    one batch at a time (the engines are single pipelines), which is
    exactly the structure behind Eq. 1.
    """

    def __init__(
        self,
        emb_ns,
        bot_ns,
        top_ns,
    ) -> None:
        self._emb = self._as_fn(emb_ns)
        self._bot = self._as_fn(bot_ns)
        self._top = self._as_fn(top_ns)

    @staticmethod
    def _as_fn(value) -> Callable[[int], float]:
        if callable(value):
            return value
        return lambda _index: float(value)

    @classmethod
    def from_stage_times(
        cls, times: StageTimes, cycle_ns: float = 5.0
    ) -> "PipelineSimulator":
        return cls(
            emb_ns=times.temb * cycle_ns,
            bot_ns=times.tbot * cycle_ns,
            top_ns=times.ttop * cycle_ns,
        )

    def run(
        self,
        batches: int,
        arrival_interval_ns: float = 0.0,
        arrival_times_ns: Optional[Sequence[float]] = None,
    ) -> PipelineRunResult:
        """Stream ``batches`` through the pipeline.

        ``arrival_interval_ns = 0`` models the host pre-send keeping
        the device saturated; a positive value models a fixed-rate
        open loop; ``arrival_times_ns`` overrides with explicit
        (sorted) arrival instants — e.g. a Poisson process.
        """
        if batches < 1:
            raise ValueError("need at least one batch")
        if arrival_times_ns is not None:
            if len(arrival_times_ns) != batches:
                raise ValueError("one arrival time per batch required")
            arrivals = list(arrival_times_ns)
            if arrivals != sorted(arrivals):
                raise ValueError("arrival times must be sorted")
        else:
            arrivals = [i * arrival_interval_ns for i in range(batches)]
        sim = Simulator()
        emb_server = Server(sim, "emb")
        bot_server = Server(sim, "bot")
        top_server = Server(sim, "top")
        records = [
            BatchRecord(index=i, arrival_ns=arrivals[i]) for i in range(batches)
        ]

        def flow(record: BatchRecord) -> Generator:
            if record.arrival_ns > sim.now:
                yield sim.timeout(record.arrival_ns - sim.now)

            def emb_stage() -> Generator:
                yield emb_server.serve(self._emb(record.index))
                record.emb_done_ns = sim.now

            def bot_stage() -> Generator:
                bot_time = self._bot(record.index)
                if bot_time > 0:
                    yield bot_server.serve(bot_time)
                record.bot_done_ns = sim.now

            yield sim.all_of([sim.process(emb_stage()), sim.process(bot_stage())])
            top_time = self._top(record.index)
            if top_time > 0:
                yield top_server.serve(top_time)
            record.top_done_ns = sim.now

        for record in records:
            sim.process(flow(record))
        sim.run()
        return PipelineRunResult(records=records, makespan_ns=sim.now)
