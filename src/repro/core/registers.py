"""RM Registers and the MMIO Manager (Section IV-A, Fig. 5).

The MMIO Manager is the inference-path front door of RM-SSD, separate
from the NVMe block path:

* **RM registers** exchange small control words (number of lookups,
  result-ready status) at MMIO latency — sub-microsecond per access;
* **DMA transfers** move bulk inputs (lookup indices, dense features)
  and outputs at PCIe bandwidth.

The paper measures the whole interface overhead at "less than tens of
microseconds (less than 1%) for each inference"; the defaults below
respect that bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

from repro.ssd.stats import IOStatistics


class DeviceStatus(Enum):
    """The result-status register the host polls before reading."""

    IDLE = 0
    BUSY = 1
    READY = 2


@dataclass
class RMRegisters:
    """The small control-register file exposed over MMIO."""

    num_lookups: int = 0
    nbatch: int = 0
    status: DeviceStatus = DeviceStatus.IDLE
    scratch: Dict[str, int] = field(default_factory=dict)

    def set_status(self, status: DeviceStatus) -> None:
        self.status = status

    def write(self, name: str, value: int) -> None:
        self.scratch[name] = value

    def read(self, name: str) -> int:
        return self.scratch[name]


@dataclass(frozen=True)
class MMIOCostModel:
    """Latency/bandwidth constants for the host<->device control path.

    * ``register_access_ns`` — one MMIO register read/write over PCIe
      (~0.7 us round trip).
    * ``dma_setup_ns`` — fixed DMA doorbell/descriptor cost.
    * ``dma_bytes_per_ns`` — PCIe gen3 x4-class effective bandwidth
      (~3.2 GB/s = 3.2 B/ns).
    """

    register_access_ns: float = 700.0
    dma_setup_ns: float = 2000.0
    dma_bytes_per_ns: float = 3.2

    def register_ns(self, accesses: int = 1) -> float:
        return accesses * self.register_access_ns

    def dma_ns(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0.0
        return self.dma_setup_ns + nbytes / self.dma_bytes_per_ns


class MMIOManager:
    """Models the host-visible MMIO/DMA interface with accounting."""

    def __init__(
        self,
        stats: IOStatistics,
        costs: MMIOCostModel = MMIOCostModel(),
    ) -> None:
        self.stats = stats
        self.costs = costs
        self.registers = RMRegisters()

    def write_register(self, name: str, value: int) -> float:
        """Host register write; returns elapsed host time in ns."""
        self.registers.write(name, value)
        self.stats.record_host_transfer(write_bytes=8)
        return self.costs.register_ns()

    def read_register(self, name: str) -> tuple:
        """Host register read; returns ``(value, elapsed_ns)``."""
        value = self.registers.read(name)
        self.stats.record_host_transfer(read_bytes=8)
        return value, self.costs.register_ns()

    def poll_status(self) -> float:
        """One status-register poll (host checks result readiness)."""
        self.stats.record_host_transfer(read_bytes=8)
        return self.costs.register_ns()

    def dma_to_device(self, nbytes: int) -> float:
        """Bulk input transfer (indices, dense features); elapsed ns."""
        self.stats.record_host_transfer(write_bytes=nbytes)
        return self.costs.dma_ns(nbytes)

    def dma_from_device(self, nbytes: int) -> float:
        """Bulk result transfer back to the host; elapsed ns."""
        self.stats.record_host_transfer(read_bytes=nbytes)
        return self.costs.dma_ns(nbytes)
