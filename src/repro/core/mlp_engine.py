"""MLP Acceleration Engine (Section IV-C) — runtime view.

Bridges the analytic FPGA models (:mod:`repro.fpga`) and the numeric
model zoo (:mod:`repro.models`):

* **numeric** — computes the actual fp32 outputs from the pooled
  embedding vectors delivered by the EV Sum unit, including a
  decomposed evaluation of the top MLP's first layer that demonstrates
  the intra-layer decomposition is mathematically exact;
* **timing** — evaluates the Eq. 1 stage times for any batch size with
  the kernels chosen by the kernel search.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.fpga.compose import StageTimes, pair_layers, stage_times
from repro.fpga.kernel import batch_cycles
from repro.fpga.search import KernelSearchResult
from repro.fpga.specs import FPGASettings
from repro.models.dlrm import DLRM


def forward_from_pooled(model, dense: Optional[np.ndarray], pooled: np.ndarray) -> np.ndarray:
    """Single-sample forward pass from pooled embeddings.

    ``pooled`` is the EV Sum output: per-table pooled vectors
    concatenated (``tables * dim``).  Works for every model in the zoo;
    for single-lookup models (NCF/WnD) the pooled vector per table *is*
    the raw embedding row, so no information is lost.
    """
    dim = model.tables.dim
    if pooled.shape != (len(model.tables) * dim,):
        raise ValueError(
            f"pooled width {pooled.shape} != {len(model.tables)} tables x dim {dim}"
        )
    kind = type(model).__name__
    if kind == "DLRM":
        bottom_out = model.bottom(np.asarray(dense, dtype=np.float32))
        return model.top(model.interact(bottom_out, pooled))
    if kind == "NCF":
        user_gmf, item_gmf, user_mlp, item_mlp = (
            pooled[i * dim : (i + 1) * dim] for i in range(4)
        )
        gmf_out = (user_gmf * item_gmf).astype(np.float32)
        mlp_out = model.mlp_tower(np.concatenate([user_mlp, item_mlp]))
        return model.predict(np.concatenate([gmf_out, mlp_out]))
    if kind == "WideAndDeep":
        dense = np.asarray(dense, dtype=np.float32)
        deep_in = np.concatenate([pooled, dense]).astype(np.float32)
        deep_logit = model.deep_head(model.deep(deep_in))
        wide_logit = model.wide(dense)
        return model._sigmoid.apply(deep_logit + wide_logit)
    raise TypeError(f"unsupported model type {kind}")


def dlrm_forward_decomposed(
    model: DLRM, dense: np.ndarray, pooled: np.ndarray
) -> np.ndarray:
    """DLRM forward with the top L0 evaluated as ``Lb + Le`` (Fig. 8).

    ``x @ W0`` over the concatenated input splits exactly into
    ``bottom_out @ W0[:Rb] + pooled @ W0[Rb:]`` — the identity the
    intra-layer decomposition exploits.  Kept separate from the normal
    forward so tests can prove the equivalence numerically.
    """
    bottom_out = model.bottom(np.asarray(dense, dtype=np.float32))
    layer0 = model.top.layers[0]
    rb = bottom_out.shape[-1]
    partial_b = bottom_out @ layer0.weight[:rb]  # the Lb unit
    partial_e = pooled @ layer0.weight[rb:]  # the Le unit
    hidden = layer0.activation.apply(
        (partial_b + partial_e + layer0.bias).astype(np.float32)
    )
    for layer in model.top.layers[1:]:
        hidden = layer(hidden)
    return hidden


class MLPAccelerationEngine:
    """Numeric + timing runtime for one kernel-searched model."""

    def __init__(self, model, search_result: KernelSearchResult) -> None:
        self.model = model
        self.search = search_result
        self.settings: FPGASettings = search_result.settings
        self._flash_rate = (
            search_result.model.vectors_per_inference
            / max(1, search_result.flash_cycles_batch1)
        )

    @property
    def supported_nbatch(self) -> int:
        """The device batch chosen by Rule Three."""
        return self.search.nbatch

    # ------------------------------------------------------------------
    # Numeric path
    # ------------------------------------------------------------------
    def forward_batch(
        self, dense_batch: Optional[np.ndarray], pooled_batch: np.ndarray
    ) -> np.ndarray:
        outputs = []
        for sample in range(len(pooled_batch)):
            dense = None if dense_batch is None else dense_batch[sample]
            outputs.append(forward_from_pooled(self.model, dense, pooled_batch[sample]))
        return np.stack(outputs)

    # ------------------------------------------------------------------
    # Timing path
    # ------------------------------------------------------------------
    def stage_times_for(self, nbatch: int) -> StageTimes:
        """Eq. 1 stage times at an arbitrary (device) batch size."""
        return stage_times(
            self.search.model, nbatch, self._flash_rate, self.settings
        )

    def interval_ns(self, nbatch: int) -> float:
        return self.settings.cycles_to_ns(self.stage_times_for(nbatch).interval)

    def latency_ns(self, nbatch: int) -> float:
        return self.settings.cycles_to_ns(self.stage_times_for(nbatch).latency)

    def layer_intervals(
        self, chain: str, nbatch: int
    ) -> List[List[Tuple[str, float]]]:
        """Composed per-FC-layer times of one chain (``"bottom"``/``"top"``).

        Returns the chain's composition pairs in order; each pair is a
        list of ``(layer_name, duration_ns)`` members.  A pair occupies
        the max of its members (Eq. 1b/1c), so summing the pair maxima
        reproduces the chain stage time — the span emitter in
        :mod:`repro.core.device` lays pairs end to end and overlays the
        members, making the scan-direction composition visible in the
        trace.
        """
        if chain not in ("bottom", "top"):
            raise ValueError(f"unknown FC chain {chain!r}")
        layers = getattr(self.search.model, chain)
        return [
            [
                (
                    layer.name,
                    self.settings.cycles_to_ns(
                        batch_cycles(
                            layer.rows,
                            layer.cols,
                            layer.kernel,
                            nbatch,
                            self.settings,
                        )
                    ),
                )
                for layer in pair
            ]
            for pair in pair_layers(layers)
        ]
