"""RM-SSD core: the paper's contribution, end to end.

Combines the Embedding Lookup Engine (Section IV-B), the MLP
Acceleration Engine (Section IV-C), the MMIO/RM-register interface
(Section IV-A) and the host software integration (Section IV-D) into a
single simulated device with both numeric and timing fidelity.
"""

from repro.core.device import DeviceTiming, RMSSD
from repro.core.interfaces import RMRuntime
from repro.core.lookup_engine import (
    EmbeddingLookupEngine,
    effective_vector_bandwidth,
    flash_read_cycles,
)
from repro.core.mlp_engine import MLPAccelerationEngine
from repro.core.page_lookup import PageLookupEngine
from repro.core.pipeline_sim import PipelineSimulator
from repro.core.registers import MMIOManager, RMRegisters

__all__ = [
    "DeviceTiming",
    "EmbeddingLookupEngine",
    "MLPAccelerationEngine",
    "MMIOManager",
    "PageLookupEngine",
    "PipelineSimulator",
    "RMRegisters",
    "RMRuntime",
    "RMSSD",
    "effective_vector_bandwidth",
    "flash_read_cycles",
]
