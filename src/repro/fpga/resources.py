"""Analytic FPGA resource model (Table VI).

We cannot run Vivado synthesis, so resources are estimated from an
analytic per-unit model calibrated against Table VI's published counts.
The unit of account is one *MAC unit* — an fp32 multiplier plus an fp32
adder.  With the kernel-reuse pipeline of Section IV-C1, a ``kr x kc``
kernel instantiates ``ceil(kr*kc / II)`` MAC units (the paper's
``krkc/II * (Nfmul + Nfadd)``).

The model reproduces Table VI's *relative* structure — the optimized
engine is an order of magnitude cheaper than the default/naive designs
for RMC1/2, and the RMC3 default design does not fit an XC7A200T while
the optimized one does — rather than exact synthesis counts, which
depend on Vivado versions and URAM inference.  Constants are documented
against the Table VI rows they were calibrated to.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Sequence

from repro.fpga.decompose import PLACEMENT_DRAM, DecomposedModel, LayerAssignment
from repro.fpga.specs import DEFAULT_SETTINGS, FPGASettings

#: Usable bytes per BRAM36 tile (36 Kbit).
BRAM36_BYTES = 4608


@dataclass(frozen=True)
class ResourceVector:
    """LUT / FF / BRAM36 / DSP usage of a design."""

    lut: int = 0
    ff: int = 0
    bram: float = 0.0
    dsp: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
        )

    def dominates(self, other: "ResourceVector") -> bool:
        """True when this usage is >= ``other`` in every resource."""
        return (
            self.lut >= other.lut
            and self.ff >= other.ff
            and self.bram >= other.bram
            and self.dsp >= other.dsp
        )

    def as_dict(self) -> dict:
        return {"lut": self.lut, "ff": self.ff, "bram": self.bram, "dsp": self.dsp}


@dataclass(frozen=True)
class ResourceModelConstants:
    """Per-unit and per-layer costs, calibrated against Table VI.

    * ``unit_*`` — one fp32 MAC unit (fmul + fadd).  ~740 LUT tracks
      the RMC1 "MLP" row: 192 units -> ~159 K LUT.
    * ``layer_*`` — per-layer control logic, stream FIFOs, and address
      generators (the MLP-op RMC1 row: 6 layers + 6 units -> ~19 K
      LUT, 41 DSP).
    * ``dram_layer_*`` — extra fetch/DMA logic and double buffers for a
      DRAM-resident layer (Rule Two).
    """

    unit_lut: int = 740
    unit_ff: int = 290
    unit_dsp: int = 3
    layer_lut: int = 2400
    layer_ff: int = 950
    layer_dsp: int = 2
    layer_bram: float = 2.0
    dram_layer_lut: int = 3000
    dram_layer_ff: int = 1200
    dram_layer_bram: float = 16.0


DEFAULT_CONSTANTS = ResourceModelConstants()


def mac_units(layer: LayerAssignment, settings: FPGASettings = DEFAULT_SETTINGS) -> int:
    """MAC units instantiated for a layer: ``ceil(kr*kc / II)``."""
    if layer.kernel is None:
        raise ValueError(f"layer {layer.name} has no kernel assigned")
    return ceil(layer.kernel.area / settings.ii)


def weight_bram_tiles(weight_bytes: int) -> int:
    """BRAM36 tiles to hold a layer's fp32 weights."""
    return ceil(weight_bytes / BRAM36_BYTES)


def layer_resources(
    layer: LayerAssignment,
    settings: FPGASettings = DEFAULT_SETTINGS,
    constants: ResourceModelConstants = DEFAULT_CONSTANTS,
) -> ResourceVector:
    """Resource usage of one kernel-assigned layer."""
    units = mac_units(layer, settings)
    lut = units * constants.unit_lut + constants.layer_lut
    ff = units * constants.unit_ff + constants.layer_ff
    dsp = units * constants.unit_dsp + constants.layer_dsp
    if layer.placement == PLACEMENT_DRAM:
        # Weights stream from DDR4: no weight BRAM, but double buffers
        # and fetch logic instead.
        lut += constants.dram_layer_lut
        ff += constants.dram_layer_ff
        bram = constants.dram_layer_bram + constants.layer_bram
    else:
        # Weights banked on chip; at least one bank per MAC unit so the
        # units can read in parallel.
        bram = max(weight_bram_tiles(layer.weight_bytes), units) + constants.layer_bram
    return ResourceVector(lut=lut, ff=ff, bram=bram, dsp=dsp)


def engine_resources(
    model: DecomposedModel,
    settings: FPGASettings = DEFAULT_SETTINGS,
    constants: ResourceModelConstants = DEFAULT_CONSTANTS,
) -> ResourceVector:
    """Total MLP Acceleration Engine usage for a decomposed model."""
    total = ResourceVector()
    for layer in model.all_layers():
        total = total + layer_resources(layer, settings, constants)
    return total


@dataclass(frozen=True)
class NaiveGemmConstants:
    """The conventional layer-by-layer GEMM design (MLP-naive).

    A fixed systolic array processes layers sequentially (the Centaur-
    style design Section VI-D compares against).  Calibrated to the
    RMC1/RMC3 MLP-naive rows: PE costs set the ~155 K LUT / 612 DSP
    base, the input-width terms the RMC3 growth to ~220 K LUT.
    """

    array_dim: int = 16
    pe_lut: int = 580
    pe_ff: int = 205
    pe_dsp: int = 2
    control_lut: int = 7000
    control_ff: int = 2000
    control_dsp: int = 100
    lut_per_input: int = 25
    ff_per_input: int = 9
    buffer_bram: float = 128.0


def naive_gemm_resources(
    shapes: Sequence[tuple],
    bram_capacity: float = 512.0,
    constants: NaiveGemmConstants = NaiveGemmConstants(),
) -> ResourceVector:
    """Resource usage of the MLP-naive design for a set of FC shapes.

    ``bram_capacity`` bounds on-chip weight storage; models whose
    weights exceed it stream from DRAM with fixed staging buffers
    (which is why RMC3's naive BRAM count is close to RMC1's despite a
    30x larger model).
    """
    if not shapes:
        raise ValueError("no FC layers given")
    pes = constants.array_dim * constants.array_dim
    max_input = max(rows for rows, _ in shapes)
    weight_bytes = sum(rows * cols * 4 for rows, cols in shapes)
    weight_tiles = weight_bram_tiles(weight_bytes)
    if weight_tiles <= bram_capacity:
        bram = weight_tiles + constants.buffer_bram
    else:
        bram = 160.0 + constants.buffer_bram / 2  # DRAM streaming buffers
    return ResourceVector(
        lut=pes * constants.pe_lut
        + constants.control_lut
        + max_input * constants.lut_per_input,
        ff=pes * constants.pe_ff
        + constants.control_ff
        + max_input * constants.ff_per_input,
        bram=bram,
        dsp=pes * constants.pe_dsp + constants.control_dsp,
    )
