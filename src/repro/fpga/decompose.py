"""Intra-layer decomposition (Section IV-C2, Fig. 8).

The first top-MLP layer ``L0`` consumes the concatenation of the
bottom-MLP output (width ``Rb``) and the pooled embeddings (width
``Re``).  Because concatenation fixes which weight rows belong to which
source, ``RC`` decomposes into ``Rb*C + Re*C``:

* ``Lb`` (``Rb x C``) is appended to the bottom chain — the paper's
  *new bottom MLP*;
* ``Le`` (``Re x C``) becomes the tail of the *new embedding layer*;
* the partial sums of ``Lb`` and ``Le`` are added elementwise before
  ``L1``, so neither source blocks the other.

The remaining top layers ``L1..`` form the *new top MLP* (indices start
at 1, matching Table V's ``Lt1``, ``Lt2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.fpga.kernel import KernelSize

#: Layer placements (Rule One / Rule Two).
PLACEMENT_BRAM = "bram"
PLACEMENT_DRAM = "dram"


@dataclass
class LayerAssignment:
    """One FC layer in the remapped topology."""

    name: str
    rows: int  # R
    cols: int  # C
    placement: str = PLACEMENT_BRAM
    kernel: Optional[KernelSize] = None

    @property
    def weight_bytes(self) -> int:
        return self.rows * self.cols * 4

    @property
    def macs(self) -> int:
        return self.rows * self.cols

    def __repr__(self) -> str:
        kernel = str(self.kernel) if self.kernel else "?"
        return (
            f"LayerAssignment({self.name}: {self.rows}x{self.cols}, "
            f"{self.placement}, kernel={kernel})"
        )


@dataclass
class DecomposedModel:
    """The remapped ISC-RS topology of Fig. 8 (right side).

    ``bottom`` is the extended bottom chain (``Lb0.. + Lb``), ``emb``
    the embedding-side FC tail ``Le`` (``None`` for a model with no top
    MLP at all), ``top`` the shortened top chain (``Lt1..``).
    """

    name: str
    bottom: List[LayerAssignment]
    emb: Optional[LayerAssignment]
    top: List[LayerAssignment]
    num_tables: int
    lookups_per_table: int
    ev_size: int

    def all_layers(self) -> List[LayerAssignment]:
        layers = list(self.bottom)
        if self.emb is not None:
            layers.append(self.emb)
        layers.extend(self.top)
        return layers

    @property
    def vectors_per_inference(self) -> int:
        """``M * N``: flash vector reads per inference."""
        return self.num_tables * self.lookups_per_table

    @property
    def total_weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.all_layers())

    def layer_by_name(self, name: str) -> LayerAssignment:
        for layer in self.all_layers():
            if layer.name == name:
                return layer
        raise KeyError(name)


def decompose(
    name: str,
    bottom_shapes: Sequence[Tuple[int, int]],
    top_shapes: Sequence[Tuple[int, int]],
    embedding_out_dim: int,
    num_tables: int,
    lookups_per_table: int,
    ev_size: int,
) -> DecomposedModel:
    """Apply intra-layer decomposition to a model's FC shapes.

    ``bottom_shapes`` may be empty (NCF/WnD); then ``L0``'s non-
    embedding input width (dense pass-through or tower quirks) becomes
    the sole ``Lb`` layer, or is dropped entirely when zero.
    """
    if not top_shapes:
        raise ValueError("a recommendation model needs a top MLP")
    top0_rows, top0_cols = top_shapes[0]
    if embedding_out_dim > top0_rows:
        raise ValueError(
            f"embedding width {embedding_out_dim} exceeds top L0 input {top0_rows}"
        )
    rb = top0_rows - embedding_out_dim  # bottom-sourced rows of L0
    re = embedding_out_dim

    bottom_layers = [
        LayerAssignment(f"Lb{i}", rows, cols)
        for i, (rows, cols) in enumerate(bottom_shapes)
    ]
    if rb > 0:
        bottom_layers.append(LayerAssignment("Lb", rb, top0_cols))
    emb_layer = LayerAssignment("Le", re, top0_cols) if re > 0 else None
    top_layers = [
        LayerAssignment(f"Lt{j}", rows, cols)
        for j, (rows, cols) in enumerate(top_shapes[1:], start=1)
    ]
    return DecomposedModel(
        name=name,
        bottom=bottom_layers,
        emb=emb_layer,
        top=top_layers,
        num_tables=num_tables,
        lookups_per_table=lookups_per_table,
        ev_size=ev_size,
    )


def decompose_model(model, lookups_per_table: int) -> DecomposedModel:
    """Decompose any model exposing the ISC-mapping introspection API
    (``fc_shapes_bottom`` / ``fc_shapes_top`` / ``embedding_out_dim``).

    Models whose first FC layer consumes only part of the pooled
    embeddings (NCF's MLP tower sees two of the four tables) expose
    ``isc_embedding_width`` to override the decomposition split.
    """
    top_shapes = model.fc_shapes_top()
    emb_width = getattr(model, "isc_embedding_width", model.embedding_out_dim)
    emb_width = min(emb_width, top_shapes[0][0]) if top_shapes else emb_width
    return decompose(
        name=model.name,
        bottom_shapes=model.fc_shapes_bottom(),
        top_shapes=top_shapes,
        embedding_out_dim=emb_width,
        num_tables=len(model.tables),
        lookups_per_table=lookups_per_table,
        ev_size=model.tables.ev_size,
    )
