"""FPGA part capacities and engine-wide settings.

Capacities are the totals the paper's Table VI compares against:

* **XCVU9P** — the Virtex UltraScale+ part on the AWS F1 card used for
  emulation (1.18M LUT, 2.36M FF, 2160 BRAM, 6840 DSP).
* **XC7A200T** — the low-end Artix-7 class part representative of what
  an enterprise SSD could actually embed (215K LUT, 269K FF, 365 BRAM,
  740 DSP).  RM-SSD targets this class; designs that do not fit it are
  not deployable in-storage.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FPGAPart:
    """Resource capacity of one FPGA device (Table VI footer)."""

    name: str
    luts: int
    ffs: int
    brams: int  # BRAM36-equivalent tiles
    dsps: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("part name must be non-empty")
        for field in ("luts", "ffs", "brams", "dsps"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be positive")

    def fits(self, usage: "ResourceVector") -> bool:  # noqa: F821
        """Whether a design's resource vector fits this part."""
        return (
            usage.lut <= self.luts
            and usage.ff <= self.ffs
            and usage.bram <= self.brams
            and usage.dsp <= self.dsps
        )

    def utilization(self, usage: "ResourceVector") -> dict:  # noqa: F821
        return {
            "lut": usage.lut / self.luts,
            "ff": usage.ff / self.ffs,
            "bram": usage.bram / self.brams,
            "dsp": usage.dsp / self.dsps,
        }


XCVU9P = FPGAPart("XCVU9P", luts=1_181_768, ffs=2_363_536, brams=2160, dsps=6840)
XC7A200T = FPGAPart("XC7A200T", luts=215_360, ffs=269_200, brams=365, dsps=740)


@dataclass(frozen=True)
class FPGASettings:
    """Engine-wide constants of Section V.

    * ``clock_hz`` — the controller/engine clock (200 MHz).
    * ``ii`` — initiation interval of the FC kernel pipeline
      (Section VI-D: "The II for kernel computing is 8").
    * ``dram_width_bytes`` — off-chip DDR4 data width (64 B), which is
      Rule Two's ``Dwidth``.
    * ``kmax_log2`` — kernels are powers of two up to ``2^kmax_log2``
      per side (Rule Three's ``Kmax``); 16x16 is the largest default
      kernel the paper uses.
    * ``mmio_width_bytes`` — host MMIO data width (Section VI-C: the
      64 B returned per batch-1 inference).
    """

    clock_hz: float = 200e6
    ii: int = 8
    dram_width_bytes: int = 64
    kmax_log2: int = 4
    mmio_width_bytes: int = 64

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.ii < 1:
            raise ValueError("ii must be >= 1")
        if self.dram_width_bytes < 4 or self.dram_width_bytes % 4:
            raise ValueError("dram_width_bytes must be a positive multiple of 4")
        if self.kmax_log2 < 0:
            raise ValueError("kmax_log2 must be non-negative")
        if self.mmio_width_bytes < 1:
            raise ValueError("mmio_width_bytes must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1e9 / self.clock_hz

    @property
    def dram_words_per_cycle(self) -> int:
        """fp32 weights deliverable per cycle from DDR4 (64 B -> 16)."""
        return self.dram_width_bytes // 4

    @property
    def kmax(self) -> int:
        return 1 << self.kmax_log2

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns


DEFAULT_SETTINGS = FPGASettings()
