"""FC kernel timing model (Section IV-C1).

An FC layer with ``R`` inputs and ``C`` outputs is computed by a
``kr x kc`` kernel: ``kr`` is the adder-tree width along the input
dimension, ``kc`` the number of parallel output columns.  With the
adder tree the time cost is ``(R*C) / (kr*kc) * II`` cycles (the paper
approximates ``RC/kr * II + log2(kr) * II`` by its dominant term); we
use exact ceilings so non-divisible shapes are handled.

Batching: the ``II``-deep kernel pipeline accepts a new input sample
each cycle, so up to ``II`` batch samples ride the pipeline for free —
``batch_cycles = layer_cycles * ceil(Nbatch / II)``.  This is what
makes Rule Three's batch-size escalation effective: embedding time
grows linearly in ``Nbatch`` while MLP stage time is flat until
``Nbatch > II``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.fpga.specs import DEFAULT_SETTINGS, FPGASettings


@dataclass(frozen=True)
class KernelSize:
    """A ``kr x kc`` kernel (Table V entries)."""

    kr: int
    kc: int

    def __post_init__(self) -> None:
        if self.kr < 1 or self.kc < 1:
            raise ValueError("kernel sides must be positive")
        for side in (self.kr, self.kc):
            if side & (side - 1):
                raise ValueError(f"kernel sides must be powers of two, got {side}")

    @property
    def area(self) -> int:
        return self.kr * self.kc

    def __str__(self) -> str:
        return f"{self.kr}x{self.kc}"


def layer_cycles(
    rows: int,
    cols: int,
    kernel: KernelSize,
    settings: FPGASettings = DEFAULT_SETTINGS,
) -> int:
    """Single-sample cycles for an ``R x C`` layer under ``kernel``."""
    if rows < 1 or cols < 1:
        raise ValueError("layer dimensions must be positive")
    return ceil(rows / kernel.kr) * ceil(cols / kernel.kc) * settings.ii


def batch_cycles(
    rows: int,
    cols: int,
    kernel: KernelSize,
    nbatch: int,
    settings: FPGASettings = DEFAULT_SETTINGS,
) -> int:
    """Cycles to push ``nbatch`` samples through the layer.

    Samples pipeline through the ``II`` reuse slots, so the cost steps
    up only every ``II`` samples.
    """
    if nbatch < 1:
        raise ValueError("batch size must be positive")
    return layer_cycles(rows, cols, kernel, settings) * ceil(nbatch / settings.ii)


def dram_layer_kernel(settings: FPGASettings = DEFAULT_SETTINGS) -> KernelSize:
    """Rule Two's fixed kernel for DRAM-resident layers.

    ``kr = Dwidth`` (in fp32 words: 16 for a 64 B DDR4 bus) and
    ``kc = II``, so the layer time equals the weight-streaming time
    ``R*C / Dwidth`` and double buffering hides the fetch.
    """
    return KernelSize(kr=settings.dram_words_per_cycle, kc=settings.ii)


def adder_tree_depth(kr: int) -> int:
    """Pipeline depth of the kr-input adder tree (log2 kr stages)."""
    if kr < 1:
        raise ValueError("kr must be positive")
    return max(1, ceil(log2(kr))) if kr > 1 else 0
