"""Kernel search algorithm (Section IV-C4, Rules One-Four).

Picks a kernel size ``(kr, kc)`` for every FC layer so that the MLP
stages are never the pipeline bottleneck (``Tbot' <= Temb'`` and
``Ttop' <= Temb'``, Eq. 2) at minimum total kernel area — which is the
resource bill (Eq. 2's argmin).

Implementation of the paper's rules:

* **Rule One** — if the summed weight footprint exceeds the BRAM
  budget, the largest layers spill to off-chip DRAM.
* **Rule Two** — a DRAM-resident layer's kernel is pinned to
  ``Dwidth x II`` (16x8 for a 64-byte DDR4 bus), making its time the
  weight-streaming time ``R*C/Dwidth``.
* **Rule Three** — if even maximal kernels cannot keep the MLP stages
  under ``Temb'`` at ``Nbatch = 1``, the supported device batch doubles
  until they fit (embedding time grows linearly in ``Nbatch``; MLP
  stage time is flat while ``Nbatch <= II``).
* **Rule Four** — greedy area assignment: every non-final layer starts
  at the minimum area ``II`` required by the kernel-reuse pipeline
  (Eq. 4 exempts the last layer); areas double where the timing
  constraint or the pair-balance constraint (Eq. 5, against a pinned
  DRAM partner) demands; scan shapes alternate so that
  ``kc_i >= kr_{i+1}`` and ``kce == kcb`` (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2, sqrt
from typing import Dict, List, Optional

from repro.fpga.compose import StageTimes, chain_cycles, stage_times
from repro.fpga.decompose import (
    PLACEMENT_BRAM,
    PLACEMENT_DRAM,
    DecomposedModel,
    LayerAssignment,
)
from repro.fpga.kernel import KernelSize, batch_cycles, dram_layer_kernel
from repro.fpga.resources import (
    ResourceVector,
    engine_resources,
    weight_bram_tiles,
)
from repro.fpga.specs import DEFAULT_SETTINGS, FPGASettings

#: Default on-chip budget for MLP weights, in BRAM36 tiles.  The
#: prototype's XCVU9P backs large layers with URAM, so the practical
#: budget exceeds the low-end part's BRAM count; 1024 tiles (~4.5 MB)
#: keeps RMC1/2 fully on-chip and spills only RMC3's 10 MB first layer,
#: matching Table V.
DEFAULT_BRAM_BUDGET_TILES = 1024


def _pow2_floor(value: int) -> int:
    return 1 << (value.bit_length() - 1) if value >= 1 else 1


def _pow2_ceil(value: int) -> int:
    return 1 << max(0, (value - 1).bit_length())


@dataclass
class KernelSearchResult:
    """Outcome of the search: kernels in place plus derived numbers."""

    model: DecomposedModel
    nbatch: int
    times: StageTimes
    resources: ResourceVector
    feasible: bool
    settings: FPGASettings
    flash_cycles_batch1: int = 1

    @property
    def kernels(self) -> Dict[str, KernelSize]:
        return {layer.name: layer.kernel for layer in self.model.all_layers()}

    @property
    def total_kernel_area(self) -> int:
        return sum(layer.kernel.area for layer in self.model.all_layers())

    def summary(self) -> str:
        kernel_text = ", ".join(
            f"{name}={kernel}" for name, kernel in self.kernels.items()
        )
        return (
            f"{self.model.name}: Nbatch={self.nbatch}, "
            f"interval={self.times.interval} cyc, {kernel_text}"
        )


class _Searcher:
    """Stateful implementation of Rules One-Four for one model."""

    def __init__(
        self,
        model: DecomposedModel,
        flash_cycles_batch1: int,
        settings: FPGASettings,
        bram_budget_tiles: int,
        max_nbatch: int,
    ) -> None:
        self.model = model
        self.flash_cycles_batch1 = max(1, flash_cycles_batch1)
        self.settings = settings
        self.bram_budget_tiles = bram_budget_tiles
        self.max_nbatch = max_nbatch
        self.nbatch = 1
        self.feasible = True
        self._areas: Dict[str, int] = {}

    # -- Rule One -------------------------------------------------------
    def assign_placements(self) -> None:
        layers = self.model.all_layers()
        tiles = {layer.name: weight_bram_tiles(layer.weight_bytes) for layer in layers}
        total = sum(tiles.values())
        by_size = sorted(layers, key=lambda l: tiles[l.name], reverse=True)
        for layer in layers:
            layer.placement = PLACEMENT_BRAM
        for layer in by_size:
            if total <= self.bram_budget_tiles:
                break
            layer.placement = PLACEMENT_DRAM
            total -= tiles[layer.name]

    # -- Rule Two -------------------------------------------------------
    def pin_dram_kernels(self) -> None:
        for layer in self.model.all_layers():
            if layer.placement == PLACEMENT_DRAM:
                layer.kernel = dram_layer_kernel(self.settings)
                self._areas[layer.name] = layer.kernel.area

    # -- Helpers --------------------------------------------------------
    def _bram_layers(self, layers: List[LayerAssignment]) -> List[LayerAssignment]:
        return [l for l in layers if l.placement == PLACEMENT_BRAM]

    def _last_layer(self) -> Optional[LayerAssignment]:
        if self.model.top:
            return self.model.top[-1]
        if self.model.bottom:
            return self.model.bottom[-1]
        return None

    def _min_area(self, layer: LayerAssignment) -> int:
        last = self._last_layer()
        if last is not None and layer.name == last.name:
            # Eq. 4 exempts the final layer from the II-reuse minimum.
            return max(1, self.settings.ii // 2)
        return self.settings.ii

    def _max_area(self) -> int:
        return self.settings.kmax * self.settings.kmax

    def _apply_area(self, layer: LayerAssignment, area: int) -> None:
        """Give the layer a provisional square-ish kernel of ``area``."""
        self._areas[layer.name] = area
        kr = _pow2_ceil(int(sqrt(area)))
        kr = min(kr, area)
        layer.kernel = KernelSize(kr=kr, kc=area // kr)

    def _temb(self) -> int:
        flash = self.nbatch * self.flash_cycles_batch1
        if self.model.emb is None:
            return flash
        emb = self.model.emb
        return max(
            flash,
            batch_cycles(emb.rows, emb.cols, emb.kernel, self.nbatch, self.settings),
        )

    def _chain_time(self, layers: List[LayerAssignment]) -> int:
        if not layers:
            return 0
        return chain_cycles(layers, self.nbatch, self.settings)

    def _flash_time(self) -> int:
        """The embedding-read component of Temb' at the current batch."""
        return self.nbatch * self.flash_cycles_batch1

    def _emb_fc_time(self) -> int:
        """Current cycles of the Le tail (0 if the model has none)."""
        if self.model.emb is None:
            return 0
        emb = self.model.emb
        return batch_cycles(emb.rows, emb.cols, emb.kernel, self.nbatch, self.settings)

    # -- Rule Three -----------------------------------------------------
    def _interval_per_sample(self) -> float:
        """Per-sample pipeline interval at the current batch/kernels."""
        interval = max(
            self._flash_time(),
            self._emb_fc_time(),
            self._chain_time(self.model.bottom),
            self._chain_time(self.model.top),
            1,
        )
        return interval / self.nbatch

    def choose_nbatch(self) -> None:
        """Escalate the device batch until every FC stage — bottom, top,
        and the Le tail itself — hides under the flash-read time.

        The flash term of Temb' grows linearly in Nbatch while FC stage
        times are flat up to ``II`` samples, so batching converts an
        MLP-bound pipeline into an embedding-bound one (the Fig. 12c
        crossover).  A model whose weights must stream from DRAM every
        batch (WnD's huge first layer) can stay FC-bound at any batch;
        escalation then stops once batching no longer improves the
        per-sample interval.
        """
        max_area = self._max_area()
        for layer in self.model.all_layers():
            if layer.placement == PLACEMENT_BRAM:
                self._apply_area(layer, max_area)
        self.nbatch = 1
        while self.nbatch < self.max_nbatch:
            flash = self._flash_time()
            if (
                self._chain_time(self.model.bottom) <= flash
                and self._chain_time(self.model.top) <= flash
                and self._emb_fc_time() <= flash
            ):
                return
            current = self._interval_per_sample()
            self.nbatch *= 2
            if self._interval_per_sample() >= current * 0.999:
                self.nbatch //= 2  # no further gain: streaming-bound
                return

    # -- Rule Four ------------------------------------------------------
    def assign_areas(self) -> None:
        for layer in self.model.all_layers():
            if layer.placement == PLACEMENT_BRAM:
                self._apply_area(layer, self._min_area(layer))
        # Grow the embedding-side FC until it hides under the flash time.
        self._grow_emb_layer()
        # Grow chain layers until both MLP stages fit under Temb'.
        for chain in (self.model.bottom, self.model.top):
            self._grow_chain(chain)
        # Eq. 5 against pinned DRAM partners.
        self._balance_pairs()

    def _grow_emb_layer(self) -> None:
        emb = self.model.emb
        if emb is None or emb.placement == PLACEMENT_DRAM:
            return
        while (
            self._emb_fc_time() > self._flash_time()
            and self._areas[emb.name] < self._max_area()
        ):
            self._apply_area(emb, self._areas[emb.name] * 2)

    def _grow_chain(self, chain: List[LayerAssignment]) -> None:
        while self._chain_time(chain) > self._temb():
            growable = [
                layer
                for layer in self._bram_layers(chain)
                if self._areas[layer.name] < self._max_area()
            ]
            if not growable:
                self.feasible = False
                return
            # Prefer the doubling that shrinks the chain most; when a
            # composed pair is balanced, no single doubling helps, so
            # fall back to the slowest growable layer to break the tie.
            best_layer = None
            best_delta = 0
            current = self._chain_time(chain)
            for layer in growable:
                area = self._areas[layer.name]
                self._apply_area(layer, area * 2)
                delta = current - self._chain_time(chain)
                self._apply_area(layer, area)
                if delta > best_delta:
                    best_delta = delta
                    best_layer = layer
            if best_layer is None:
                best_layer = max(
                    growable,
                    key=lambda l: batch_cycles(
                        l.rows, l.cols, l.kernel, self.nbatch, self.settings
                    ),
                )
            self._apply_area(best_layer, self._areas[best_layer.name] * 2)

    def _balance_pairs(self) -> None:
        """Eq. 5: a BRAM layer paired with a pinned DRAM layer should
        not run slower than that fixed partner."""
        for chain in (self.model.bottom, self.model.top):
            for first in range(0, len(chain), 2):
                pair = chain[first : first + 2]
                if len(pair) < 2:
                    continue
                dram = [l for l in pair if l.placement == PLACEMENT_DRAM]
                bram = [l for l in pair if l.placement == PLACEMENT_BRAM]
                if len(dram) != 1 or len(bram) != 1:
                    continue
                target = batch_cycles(
                    dram[0].rows, dram[0].cols, dram[0].kernel, self.nbatch, self.settings
                )
                layer = bram[0]
                while (
                    batch_cycles(
                        layer.rows, layer.cols, layer.kernel, self.nbatch, self.settings
                    )
                    > target
                    and self._areas[layer.name] < self._max_area()
                ):
                    self._apply_area(layer, self._areas[layer.name] * 2)

    # -- Shape assignment (Eq. 3) ----------------------------------------
    def assign_shapes(self) -> None:
        kc_bottom_tail = self._assign_chain_shapes(self.model.bottom, kc_prev=None)
        kc_emb = self._assign_emb_shape(kc_bottom_tail)
        # The top chain is fed by both Le and Lb at kce == kcb.
        feed = kc_emb if kc_emb is not None else kc_bottom_tail
        self._assign_chain_shapes(self.model.top, kc_prev=feed)

    def _assign_chain_shapes(
        self, chain: List[LayerAssignment], kc_prev: Optional[int]
    ) -> Optional[int]:
        for layer in chain:
            if layer.placement == PLACEMENT_DRAM:
                kc_prev = layer.kernel.kc  # pinned by Rule Two
                continue
            kc_prev = self._shape_one(layer, kc_prev)
        return kc_prev

    def _assign_emb_shape(self, kc_bottom_tail: Optional[int]) -> Optional[int]:
        emb = self.model.emb
        if emb is None:
            return None
        if emb.placement == PLACEMENT_DRAM:
            return emb.kernel.kc
        if kc_bottom_tail is not None:
            # kce == kcb (Eq. 3): give Le the same output rate as Lb.
            area = self._areas[emb.name]
            kc = min(kc_bottom_tail, area)
            kr = min(area // kc, self.settings.kmax)
            emb.kernel = KernelSize(kr=kr, kc=kc)
            return kc
        return self._shape_one(emb, kc_prev=None)

    def _shape_one(self, layer: LayerAssignment, kc_prev: Optional[int]) -> int:
        """Pick ``(kr, kc)`` for ``area``; returns the layer's kc.

        First layer of a chain: near-square with ``kr >= kc`` (the
        Table V pattern).  Later layers: ``kr = min(kc_prev, area)`` so
        that ``kc_prev >= kr`` (Eq. 3) holds by construction.
        """
        area = self._areas[layer.name]
        kmax = self.settings.kmax
        if kc_prev is None:
            kr = min(_pow2_ceil(int(ceil(sqrt(area)))), area)
        else:
            kr = min(kc_prev, area)
        kr = min(kr, kmax)
        kc = area // kr
        if kc > kmax:
            # A tiny upstream kc would force kc past the kernel-side
            # cap; lift kr instead (a small inter-layer buffer absorbs
            # the rate mismatch).
            kc = kmax
            kr = min(kmax, area // kc)
        # Do not provision more columns than the layer has outputs.
        cols_cap = _pow2_ceil(layer.cols)
        if kc > cols_cap:
            kc = cols_cap
        layer.kernel = KernelSize(kr=kr, kc=kc)
        return kc

    # -- Driver ----------------------------------------------------------
    def run(self) -> KernelSearchResult:
        self.assign_placements()
        self.pin_dram_kernels()
        self.choose_nbatch()
        self.assign_areas()
        self.assign_shapes()
        flash_rate = self.model.vectors_per_inference / self.flash_cycles_batch1
        times = stage_times(self.model, self.nbatch, flash_rate, self.settings)
        # Eq. 2 feasibility: the MLP chains hide under the embedding
        # stage (flash reads plus the Le tail).
        if times.tbot > times.temb or times.ttop > times.temb:
            self.feasible = False
        return KernelSearchResult(
            model=self.model,
            nbatch=self.nbatch,
            times=times,
            resources=engine_resources(self.model, self.settings),
            feasible=self.feasible,
            settings=self.settings,
            flash_cycles_batch1=self.flash_cycles_batch1,
        )


def kernel_search(
    model: DecomposedModel,
    flash_cycles_batch1: int,
    settings: FPGASettings = DEFAULT_SETTINGS,
    bram_budget_tiles: int = DEFAULT_BRAM_BUDGET_TILES,
    max_nbatch: int = 256,
) -> KernelSearchResult:
    """Run the full kernel search for one decomposed model.

    ``flash_cycles_batch1`` is the embedding-read time ``M*N / bEV`` at
    batch 1 in engine cycles (obtainable from
    :func:`repro.core.lookup_engine.flash_read_cycles`).
    """
    searcher = _Searcher(
        model, flash_cycles_batch1, settings, bram_budget_tiles, max_nbatch
    )
    return searcher.run()


def default_kernels(
    model: DecomposedModel,
    settings: FPGASettings = DEFAULT_SETTINGS,
    bram_budget_tiles: int = DEFAULT_BRAM_BUDGET_TILES,
    kernel_area_log2: int = 8,
    first_bottom_kernel: Optional[KernelSize] = None,
) -> DecomposedModel:
    """Assign the *default* (unsearched) kernels of Section VI-D.

    RMC1/2 default to 16x16 everywhere; RMC3 to 8x8 with a 16x8 first
    bottom layer.  Used by the Table VI "MLP" design point.
    """
    searcher = _Searcher(model, 1, settings, bram_budget_tiles, 1)
    searcher.assign_placements()
    searcher.pin_dram_kernels()
    side = 1 << (kernel_area_log2 // 2)
    for position, layer in enumerate(model.all_layers()):
        if layer.placement == PLACEMENT_DRAM:
            continue
        if position == 0 and first_bottom_kernel is not None:
            layer.kernel = first_bottom_kernel
        else:
            layer.kernel = KernelSize(side, side)
    return model
