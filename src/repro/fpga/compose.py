"""Inter-layer composition and pipeline stage times (Eq. 1a-1c).

Adjacent FC layers are *composed into pairs* by alternating the kernel
scan direction (Fig. 9b): while layer ``Li`` scans columns, ``Li+1``
scans rows, so a pair advances in the time of its slower member rather
than the sum.  The resulting stage times:

* ``Temb' = max(Nbatch * M*N / bEV,  cycles(Le))``        (Eq. 1a)
* ``Tbot' = sum over pairs (i, i+1) of max(cycles)``      (Eq. 1b)
* ``Ttop' = sum over pairs (j, j+1), j from 1, of max``   (Eq. 1c)

A pipelined RM-SSD issues one small batch per ``max`` of the three
stage times (throughput) and completes a batch after the embedding and
top stages have both run (latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Sequence

from repro.fpga.decompose import DecomposedModel, LayerAssignment
from repro.fpga.kernel import batch_cycles
from repro.fpga.specs import DEFAULT_SETTINGS, FPGASettings


def pair_layers(layers: Sequence[LayerAssignment]) -> List[tuple]:
    """Group a chain into composition pairs ((0,1), (2,3), ...)."""
    pairs = []
    for first in range(0, len(layers), 2):
        pairs.append(tuple(layers[first : first + 2]))
    return pairs


def chain_cycles(
    layers: Sequence[LayerAssignment],
    nbatch: int,
    settings: FPGASettings = DEFAULT_SETTINGS,
) -> int:
    """Composed chain time: sum of per-pair maxima (Eq. 1b/1c)."""
    total = 0
    for pair in pair_layers(layers):
        total += max(
            batch_cycles(layer.rows, layer.cols, layer.kernel, nbatch, settings)
            for layer in pair
        )
    return total


@dataclass(frozen=True)
class StageTimes:
    """Pipeline stage times for one small batch, in cycles."""

    temb: int
    tbot: int
    ttop: int
    nbatch: int
    flash_cycles: int  # the flash-read component of temb

    @property
    def interval(self) -> int:
        """Cycles between successive batch completions (pipelined)."""
        return max(self.temb, self.tbot, self.ttop, 1)

    @property
    def latency(self) -> int:
        """Fill latency of one batch through the pipeline.

        The bottom chain overlaps the embedding stage (that is the
        point of the intra-layer decomposition), so latency is the
        slower of the two front stages plus the top chain.
        """
        return max(self.temb, self.tbot) + self.ttop

    def throughput_qps(self, clock_hz: float) -> float:
        """Steady-state inferences per second."""
        return self.nbatch * clock_hz / self.interval

    def latency_s(self, clock_hz: float) -> float:
        return self.latency / clock_hz


def embedding_flash_cycles(
    vectors: int,
    ev_size: int,
    read_bandwidth_vectors_per_cycle: float,
) -> int:
    """``M*N / bEV`` — flash-side embedding read time in cycles."""
    if read_bandwidth_vectors_per_cycle <= 0:
        raise ValueError("read bandwidth must be positive")
    return ceil(vectors / read_bandwidth_vectors_per_cycle)


def stage_times(
    model: DecomposedModel,
    nbatch: int,
    read_bandwidth_vectors_per_cycle: float,
    settings: FPGASettings = DEFAULT_SETTINGS,
) -> StageTimes:
    """Evaluate Eq. 1 for a kernel-assigned decomposed model."""
    for layer in model.all_layers():
        if layer.kernel is None:
            raise ValueError(f"layer {layer.name} has no kernel assigned")
    flash = nbatch * embedding_flash_cycles(
        model.vectors_per_inference, model.ev_size, read_bandwidth_vectors_per_cycle
    )
    temb = flash
    if model.emb is not None:
        temb = max(
            flash,
            batch_cycles(
                model.emb.rows, model.emb.cols, model.emb.kernel, nbatch, settings
            ),
        )
    tbot = chain_cycles(model.bottom, nbatch, settings) if model.bottom else 0
    ttop = chain_cycles(model.top, nbatch, settings) if model.top else 0
    return StageTimes(
        temb=temb, tbot=tbot, ttop=ttop, nbatch=nbatch, flash_cycles=flash
    )


def uncomposed_chain_cycles(
    layers: Sequence[LayerAssignment],
    nbatch: int,
    settings: FPGASettings = DEFAULT_SETTINGS,
) -> int:
    """Chain time *without* inter-layer composition (Fig. 9a).

    Every layer must drain before the next starts, so the chain costs
    the sum of all layer times — the baseline the composed design is
    compared against ("the time consumption of MLP can be reduced by
    half").
    """
    return sum(
        batch_cycles(layer.rows, layer.cols, layer.kernel, nbatch, settings)
        for layer in layers
    )
