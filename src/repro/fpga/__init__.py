"""FPGA engine models for the MLP Acceleration Engine.

Analytic models of Section IV-C: the FC kernel time/resource model,
intra-layer decomposition (Fig. 8), inter-layer composition (Fig. 9 and
Eq. 1), the kernel search algorithm (Rules 1-4, Eq. 2-5), and the
resource accounting behind Table VI.
"""

from repro.fpga.compose import StageTimes, stage_times
from repro.fpga.decompose import DecomposedModel, LayerAssignment, decompose
from repro.fpga.kernel import KernelSize, batch_cycles, layer_cycles
from repro.fpga.resources import ResourceVector, engine_resources, naive_gemm_resources
from repro.fpga.search import KernelSearchResult, kernel_search
from repro.fpga.specs import XC7A200T, XCVU9P, FPGAPart, FPGASettings

__all__ = [
    "DecomposedModel",
    "FPGAPart",
    "FPGASettings",
    "KernelSearchResult",
    "KernelSize",
    "LayerAssignment",
    "ResourceVector",
    "StageTimes",
    "XC7A200T",
    "XCVU9P",
    "batch_cycles",
    "decompose",
    "engine_resources",
    "kernel_search",
    "layer_cycles",
    "naive_gemm_resources",
    "stage_times",
]
