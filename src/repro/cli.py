"""Command-line interface.

Entry point ``rmssd-repro`` (or ``python -m repro``) exposes the main
experiment flows without writing code:

* ``models`` — list the evaluated model configurations (Table III).
* ``search MODEL`` — run the kernel search and print the Table V-style
  assignment, stage times, and resource bill.
* ``run MODEL`` — serve a request stream on one backend and report
  throughput/latency/traffic.
* ``sweep MODEL`` — batch-size sweep across backends (Fig. 12-style).
* ``trace-stats`` — generate a trace and print its Fig. 4 statistics.
* ``explain MODEL`` — per-request critical-path attribution with tail
  exemplars; ``explain --diff A B`` attributes a cross-run regression.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import Table, format_si, stage_breakdown_table
from repro.models import MODEL_CONFIGS, build_model, get_config
from repro.workloads.inputs import RequestGenerator

BACKEND_CHOICES = (
    "ssd-s",
    "ssd-m",
    "emb-mmio",
    "emb-pagesum",
    "emb-vectorsum",
    "recssd",
    "rm-ssd",
    "rm-ssd-naive",
    "dram",
)


def _build_backend(name: str, model, config, tracer=None, metrics=None,
                   vcache=None):
    from repro.baselines import (
        DRAMBackend,
        EMBMMIOBackend,
        EMBPageSumBackend,
        EMBVectorSumBackend,
        NaiveSSDBackend,
        RMSSDBackend,
        RecSSDBackend,
    )

    if name == "ssd-s":
        return NaiveSSDBackend(model, 0.25)
    if name == "ssd-m":
        return NaiveSSDBackend(model, 0.5)
    if name == "emb-mmio":
        return EMBMMIOBackend(model)
    if name == "emb-pagesum":
        return EMBPageSumBackend(model)
    if name == "emb-vectorsum":
        return EMBVectorSumBackend(model)
    if name == "recssd":
        return RecSSDBackend(model)
    if name == "rm-ssd":
        return RMSSDBackend(
            model, config.lookups_per_table, use_des=False,
            tracer=tracer, metrics=metrics, vcache=vcache,
        )
    if name == "rm-ssd-naive":
        return RMSSDBackend(
            model, config.lookups_per_table, mlp_design="naive", use_des=False,
            tracer=tracer, metrics=metrics, vcache=vcache,
        )
    if name == "dram":
        return DRAMBackend(model)
    raise ValueError(f"unknown backend {name!r}")


def cmd_models(_args) -> int:
    table = Table(
        "Evaluated models (Table III)",
        ["key", "name", "bottom MLP", "top MLP", "dim", "tables", "lookups"],
    )
    for key, config in MODEL_CONFIGS.items():
        table.add_row(
            key,
            config.name,
            "-".join(map(str, config.bottom_widths)) or "(none)",
            "-".join(map(str, config.top_widths)),
            config.dim,
            config.num_tables,
            config.lookups_per_table,
        )
    table.print()
    return 0


def cmd_search(args) -> int:
    from repro.core.lookup_engine import flash_read_cycles
    from repro.fpga.decompose import decompose_model
    from repro.fpga.search import kernel_search
    from repro.fpga.specs import XC7A200T, XCVU9P
    from repro.ssd.geometry import SSDGeometry
    from repro.ssd.timing import SSDTimingModel

    config = get_config(args.model)
    model = build_model(config, rows_per_table=64)
    decomposed = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        decomposed.vectors_per_inference,
        SSDGeometry(),
        SSDTimingModel(),
        config.ev_size,
    )
    result = kernel_search(
        decomposed, flash, bram_budget_tiles=args.bram_budget
    )
    print(result.summary())
    table = Table(
        f"{config.name}: kernel assignment",
        ["layer", "shape", "placement", "kernel"],
    )
    for layer in result.model.all_layers():
        table.add_row(
            layer.name, f"{layer.rows}x{layer.cols}", layer.placement,
            str(layer.kernel),
        )
    table.print()
    times = result.times
    print(f"stage times: Temb'={times.temb} Tbot'={times.tbot} "
          f"Ttop'={times.ttop} cycles; "
          f"throughput {times.throughput_qps(200e6):.0f} QPS")
    usage = result.resources
    print(f"resources: {usage.lut} LUT / {usage.ff} FF / "
          f"{usage.bram:.0f} BRAM / {usage.dsp} DSP")
    for part in (XCVU9P, XC7A200T):
        print(f"  {part.name}: {'fits' if part.fits(usage) else 'DOES NOT FIT'}")
    return 0


def cmd_run(args) -> int:
    config = get_config(args.model)
    model = build_model(config, rows_per_table=args.rows)
    tracer = metrics = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    if args.metrics_out or args.timeseries_out or args.prom_out:
        from repro.obs import MetricsRegistry, names

        metrics = MetricsRegistry(
            window_ns=args.window_ms * 1e6 if args.timeseries_out else None
        )
    if (tracer or metrics) and args.backend not in ("rm-ssd", "rm-ssd-naive"):
        print(f"note: backend {args.backend!r} is not instrumented; "
              "trace/metrics cover the I/O statistics only")
    vcache = None
    if args.vcache_vectors > 0:
        if args.backend in ("rm-ssd", "rm-ssd-naive"):
            from repro.ssd.vcache import VectorCache

            vcache = VectorCache(
                args.vcache_vectors, policy=args.vcache_policy
            )
        else:
            print(f"note: backend {args.backend!r} has no controller DRAM; "
                  "--vcache-vectors ignored")
    backend = _build_backend(
        args.backend, model, config, tracer=tracer, metrics=metrics,
        vcache=vcache,
    )
    generator = RequestGenerator(
        config, args.rows, hot_access_fraction=args.locality, seed=args.seed
    )
    requests = generator.requests(args.requests, batch_size=args.batch)
    result = backend.run(requests, compute=not args.no_compute)
    print(f"system:         {result.system}")
    print(f"inferences:     {result.inferences} "
          f"({result.requests} requests x batch {args.batch})")
    print(f"simulated time: {result.total_ns / 1e6:.3f} ms")
    print(f"throughput:     {result.qps:.0f} QPS")
    print(f"per-request:    {result.latency_per_request_ns / 1e6:.3f} ms")
    if result.breakdown:
        stage_breakdown_table(
            f"{result.system}: stage breakdown (Fig. 11)",
            result.breakdown,
            per_inference=result.inferences,
        ).print()
    print(f"host traffic:   read {format_si(result.stats.host_read_bytes)}B / "
          f"write {format_si(result.stats.host_write_bytes)}B")
    if result.stats.read_amplification:
        print(f"read amp:       {result.stats.read_amplification:.1f}x")
    if vcache is not None:
        print(f"vcache:         {vcache.policy} x{vcache.capacity_vectors} "
              f"vectors; hit ratio {vcache.hit_ratio:.1%} "
              f"({vcache.hits} hits / {vcache.misses} misses / "
              f"{vcache.evictions} evictions)")
    if tracer is not None:
        path = tracer.export_chrome(args.trace_out)
        print(f"trace:          {path} ({len(tracer)} spans; "
              "open in ui.perfetto.dev)")
    if metrics is not None:
        metrics.gauge(names.METRIC_RUN_QPS).set(result.qps)
        metrics.counter(names.METRIC_RUN_INFERENCES).inc(result.inferences)
        metrics.absorb_io(result.stats)
        if args.metrics_out:
            path = metrics.export_json(args.metrics_out)
            print(f"metrics:        {path}")
        if args.timeseries_out:
            path = metrics.export_timeseries(args.timeseries_out)
            print(f"timeseries:     {path} (window {args.window_ms} ms)")
        if args.prom_out:
            path = metrics.export_prometheus(args.prom_out)
            print(f"prometheus:     {path}")
    return 0


def cmd_profile(args) -> int:
    """Profiled DES run: per-resource utilization + bottleneck report."""
    from repro.baselines import RMSSDBackend
    from repro.obs import Profiler

    config = get_config(args.model)
    model = build_model(config, rows_per_table=args.rows)
    profiler = Profiler()
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    vcache = None
    if args.vcache_vectors > 0:
        from repro.ssd.vcache import VectorCache

        vcache = VectorCache(args.vcache_vectors, policy=args.vcache_policy)
    backend = RMSSDBackend(
        model,
        config.lookups_per_table,
        mlp_design="naive" if args.backend == "rm-ssd-naive" else "optimized",
        use_des=True,
        fastpath=False if args.no_fastpath else None,
        tracer=tracer,
        vcache=vcache,
        profiler=profiler,
    )
    generator = RequestGenerator(
        config, args.rows, hot_access_fraction=args.locality, seed=args.seed
    )
    requests = generator.requests(args.requests, batch_size=args.batch)
    result = backend.run(requests, compute=False)
    profiler.set_meta(
        model=args.model,
        backend=args.backend,
        requests=args.requests,
        batch=args.batch,
        rows=args.rows,
        locality=args.locality,
        seed=args.seed,
    )

    bottleneck = profiler.bottleneck_report()
    stage_labels = {
        "emb": "embedding (flash)",
        "bot": "bottom MLP",
        "top": "top MLP",
        "io": "host I/O",
    }
    print(f"system:         {result.system}")
    print(f"inferences:     {result.inferences} over {bottleneck['batches']} "
          "device batches")
    print(f"bottleneck:     {stage_labels[bottleneck['bottleneck_stage']]}")
    invariant = bottleneck["invariant"]
    status = "holds" if invariant["holds"] else "VIOLATED"
    print(f"invariant:      {invariant['name']} {status}")
    for warning in bottleneck["warnings"]:
        print(f"warning:        {warning['type']}: "
              f"{stage_labels[warning['stage']]} runs "
              f"{warning['ratio']:.2f}x the embedding stage")
    means = bottleneck["stage_means_ns"]
    slack = bottleneck["slack_ns"]
    table = Table(
        "Stage attribution (mean per device batch)",
        ["stage", "mean ms", "slack ms"],
    )
    for key in ("emb", "bot", "top", "io"):
        table.add_row(
            stage_labels[key],
            f"{means[key] / 1e6:.4f}",
            f"{slack[key] / 1e6:.4f}",
        )
    table.print()

    elapsed = profiler.elapsed_ns()
    utilizations = profiler.utilizations(elapsed)
    table = Table(
        f"Busiest resources (elapsed {elapsed / 1e6:.3f} ms)",
        ["resource", "kind", "utilization"],
    )
    report = profiler.resource_report(elapsed)
    ranked = sorted(utilizations, key=lambda n: (-utilizations[n], n))
    for name in ranked[: args.top]:
        table.add_row(name, report[name]["kind"], f"{utilizations[name]:.1%}")
    table.print()
    channels = profiler.channel_report(elapsed)
    if channels:
        busiest = max(channels.values(), key=lambda c: c["utilization"])
        idlest = min(channels.values(), key=lambda c: c["utilization"])
        print(f"EV-FMC channels: {len(channels)}; utilization "
              f"{idlest['utilization']:.1%} .. {busiest['utilization']:.1%}")

    path = profiler.export_json(args.profile_out)
    print(f"profile:        {path}")
    if tracer is not None:
        path = tracer.export_chrome(args.trace_out)
        print(f"trace:          {path} ({len(tracer)} spans)")
    return 0


def cmd_sweep(args) -> int:
    config = get_config(args.model)
    model = build_model(config, rows_per_table=args.rows)
    batches = [int(b) for b in args.batches.split(",")]
    backends = [
        _build_backend(name, model, config) for name in args.backends.split(",")
    ]
    table = Table(
        f"{config.name}: QPS vs batch",
        ["system", *[str(b) for b in batches]],
    )
    generator = RequestGenerator(
        config, args.rows, hot_access_fraction=args.locality, seed=args.seed
    )
    for backend in backends:
        row = []
        for batch in batches:
            requests = generator.requests(args.requests, batch_size=batch)
            result = backend.run(requests, compute=False)
            row.append(f"{result.qps:.0f}")
        table.add_row(backend.name, *row)
    table.print()
    return 0


def cmd_selfcheck(_args) -> int:
    from repro.analysis.selfcheck import run_selfcheck

    results = run_selfcheck(verbose=True)
    return 0 if all(r.passed for r in results) else 1


def cmd_advise(args) -> int:
    from repro.analysis.advisor import advise

    advice = advise(get_config(args.model))
    print(advice.render())
    return 0


def _cluster_trace(kind: str, qps: float, duration_ns: float, seed: int):
    """Build the requested arrival trace for the cluster CLI modes."""
    from repro.workloads.arrivals import (
        diurnal_trace,
        flash_crowd_trace,
        poisson_trace,
    )

    if kind == "poisson":
        queries = max(1, int(qps * duration_ns / 1e9))
        return poisson_trace(qps, queries, seed=seed)
    if kind == "diurnal":
        return diurnal_trace(
            qps, duration_ns, period_ns=duration_ns / 2, seed=seed
        )
    return flash_crowd_trace(
        qps,
        duration_ns,
        burst_start_ns=0.3 * duration_ns,
        burst_duration_ns=0.4 * duration_ns,
        burst_factor=4.0,
        seed=seed,
    )


def _print_scaling_events(events) -> None:
    if not events:
        print("scaling events: none")
        return
    print("scaling events:")
    for event in events:
        print(
            f"  t={event.t_ns / 1e6:8.1f} ms  [{event.action}] "
            f"{event.from_replicas} -> {event.to_replicas} replicas "
            f"({event.reason}; util {event.utilization:.0%}; "
            f"bottleneck {event.bottleneck_stage} "
            f"@ replica {event.bottleneck_replica})"
        )


def _print_explain_summary(document: dict) -> None:
    """Tail-attribution digest of an ``rmssd-explain/v1`` document."""
    totals = document["totals"]
    print(f"requests:       {totals['count']} "
          f"(mean latency {totals['mean_latency_ns'] / 1e6:.2f} ms)")
    for entry in document["quantiles"]:
        blame = entry["tail"]["blame"]
        parts = " / ".join(
            f"{component[:-3]} {blame[component]:.0%}"
            for component in document["components"]
            if blame[component] > 0
        )
        print(f"p{entry['q']:g} {entry['latency_ns'] / 1e6:.2f} ms — "
              f"tail of {entry['tail']['count']}; blame: {parts or 'none'}")
        for exemplar in entry["exemplars"]:
            print(
                f"  batch {exemplar['batch']} "
                f"(replica {exemplar['replica']}, "
                f"t={exemplar['arrival_ns'] / 1e6:.2f} ms): "
                f"{exemplar['latency_ns'] / 1e6:.3f} ms = "
                f"queue {exemplar['queue_ns'] / 1e6:.3f} + "
                f"emb {exemplar['emb_ns'] / 1e6:.3f} + "
                f"bot {exemplar['bot_ns'] / 1e6:.3f} + "
                f"top {exemplar['top_ns'] / 1e6:.3f}"
            )


def _export_explain(document: dict, path: str) -> None:
    from repro.obs import export_explain_document

    out = export_explain_document(document, path)
    print(f"explain: {out} (schema {document['schema']})")


def cmd_explain(args) -> int:
    """Per-request critical-path attribution, or a cross-run diff."""
    import json

    if args.diff:
        from repro.obs.explain import diff_documents, render_diff

        with open(args.diff[0]) as handle:
            baseline = json.load(handle)
        with open(args.diff[1]) as handle:
            fresh = json.load(handle)
        print(f"regression explainer: {args.diff[0]} -> {args.diff[1]}")
        for line in render_diff(diff_documents(baseline, fresh)):
            print(f"  {line}")
        return 0
    if args.model is None:
        print("explain: a model is required unless --diff is given",
              file=sys.stderr)
        return 2
    from repro.core.lookup_engine import flash_read_cycles
    from repro.fpga.decompose import decompose_model
    from repro.fpga.search import kernel_search
    from repro.obs import CritPathCollector, build_explain_document
    from repro.ssd import fastpath
    from repro.ssd.geometry import SSDGeometry
    from repro.ssd.timing import SSDTimingModel

    config = get_config(args.model)
    model = build_model(config, rows_per_table=args.rows)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
        config.ev_size,
    )
    result = kernel_search(dec, flash)
    collector = CritPathCollector()
    fast = False if args.no_fastpath else None
    path = "fast" if (fast is None and fastpath.enabled()) else "des"
    if args.cluster:
        from repro.host.autoscale import Autoscaler
        from repro.host.cluster_serving import ClusterServingSimulator

        replica_qps = result.times.throughput_qps(1e9 / 5.0)
        base_qps = args.qps or 0.6 * replica_qps * args.replicas
        duration_ns = args.duration_ms * 1e6
        trace = _cluster_trace(args.arrivals, base_qps, duration_ns, args.seed)
        scaler = None
        if args.autoscale:
            scaler = Autoscaler(
                sla_ns=args.sla_ms * 1e6,
                quantile=args.quantile,
                window_ns=args.window_ms * 1e6,
                min_replicas=args.min_replicas,
                max_replicas=args.max_replicas,
            )
        sim = ClusterServingSimulator(
            result.times, nbatch=result.nbatch, replicas=args.replicas,
            balancer=args.balancer, autoscaler=scaler, critpath=collector,
        )
        point = sim.serve_trace(trace, fast=fast)
        print(f"critical paths: {config.name}, {args.arrivals} arrivals "
              f"({trace.count} queries), balancer {args.balancer}, "
              f"replicas {point.initial_replicas}->{point.final_replicas}, "
              f"pipeline path: {path}")
        # Meta is path-independent on purpose: the exported document
        # must stay byte-identical between the DES and fast replays.
        meta = {
            "model": args.model, "mode": "cluster",
            "arrivals": args.arrivals, "balancer": args.balancer,
            "replicas": args.replicas, "queries": trace.count,
            "seed": args.seed,
        }
    else:
        from repro.host.serving import ServingSimulator

        tracer = None
        if args.trace_out:
            from repro.obs import Tracer

            tracer = Tracer()
        serving = ServingSimulator(
            result.times, nbatch=result.nbatch, seed=args.seed,
            critpath=collector, tracer=tracer,
        )
        qps = serving.saturation_qps * args.load
        serving.offered_load(qps, queries=args.queries, fast=fast)
        print(f"critical paths: {config.name} at {qps:.0f} QPS "
              f"({args.load:.0%} of saturation; pipeline path: {path})")
        if tracer is not None:
            out = tracer.export_chrome(args.trace_out)
            print(f"trace:          {out} ({len(tracer)} spans)")
        meta = {
            "model": args.model, "mode": "device", "load": args.load,
            "queries": args.queries, "seed": args.seed,
        }
    document = build_explain_document(
        collector.requests, top_k=args.top_k, meta=meta
    )
    _print_explain_summary(document)
    if args.explain_out:
        _export_explain(document, args.explain_out)
    return 0


def _cmd_sla_cluster(args, config, result) -> int:
    """``sla --cluster``: open-loop traffic against a replica fleet."""
    from repro.host.autoscale import Autoscaler
    from repro.host.cluster_serving import ClusterServingSimulator
    from repro.obs import MetricsRegistry, names
    from repro.ssd import fastpath

    window_ns = args.window_ms * 1e6
    sla_ns = args.sla_ms * 1e6
    fast = False if args.no_fastpath else None
    path = "fast" if (fast is None and fastpath.enabled()) else "des"
    replica_qps = result.times.throughput_qps(1e9 / 5.0)
    base_qps = args.qps or 0.6 * replica_qps * args.replicas
    duration_ns = args.duration_ms * 1e6
    trace = _cluster_trace(args.arrivals, base_qps, duration_ns, args.seed)
    print(f"cluster SLA study: {config.name}, {args.arrivals} arrivals "
          f"({trace.count} queries, {trace.mean_qps:.0f} QPS mean), "
          f"{args.replicas} replica(s) @ {replica_qps:.0f} QPS each, "
          f"balancer {args.balancer}, pipeline path: {path}")

    def run(autoscale: bool):
        scaler = None
        if autoscale:
            scaler = Autoscaler(
                sla_ns=sla_ns,
                quantile=args.quantile,
                window_ns=window_ns,
                min_replicas=args.min_replicas,
                max_replicas=args.max_replicas,
            )
        metrics = MetricsRegistry(window_ns=window_ns)
        sim = ClusterServingSimulator(
            result.times,
            nbatch=result.nbatch,
            replicas=args.replicas,
            balancer=args.balancer,
            autoscaler=scaler,
            metrics=metrics,
        )
        return sim, sim.serve_trace(trace, fast=fast)

    table = Table(
        f"p{args.quantile:g} <= {args.sla_ms} ms?",
        ["fleet", "p50 ms", "p99 ms", "achieved QPS", "replicas", "SLA"],
    )

    def add_row(label, point):
        table.add_row(
            label,
            f"{point.p50_ns / 1e6:.2f}",
            f"{point.p99_ns / 1e6:.2f}",
            f"{point.achieved_qps:.0f}",
            f"{point.initial_replicas}->{point.final_replicas}",
            "ok" if point.meets_sla(sla_ns, args.quantile) else "VIOLATED",
        )

    sim, fixed = run(autoscale=False)
    add_row("fixed", fixed)
    point = fixed
    if args.autoscale:
        sim, point = run(autoscale=True)
        add_row("autoscaled", point)
    table.print()
    _print_scaling_events(point.scale_events)
    if args.timeseries_out:
        from repro.obs.timeseries import export_document

        out = export_document(sim.timeseries_document(), args.timeseries_out)
        print(f"timeseries: {out} (window {args.window_ms} ms; "
              f"cluster section: {names.METRIC_CLUSTER_REPLICAS} gauge + "
              f"scaling events)")
    return 0


def cmd_sla(args) -> int:
    from repro.core.lookup_engine import flash_read_cycles
    from repro.fpga.decompose import decompose_model
    from repro.fpga.search import kernel_search
    from repro.host.serving import ServingSimulator
    from repro.ssd import fastpath
    from repro.ssd.geometry import SSDGeometry
    from repro.ssd.timing import SSDTimingModel

    config = get_config(args.model)
    model = build_model(config, rows_per_table=args.rows)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    if args.cluster:
        return _cmd_sla_cluster(args, config, result)
    window_ns = args.window_ms * 1e6
    metrics = None
    if args.timeseries_out:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(window_ns=window_ns)
    serving = ServingSimulator(
        result.times, nbatch=result.nbatch, seed=args.seed,
        metrics=metrics, window_ns=window_ns,
    )
    fast = False if args.no_fastpath else None
    path = "fast" if (fast is None and fastpath.enabled()) else "des"
    print(f"saturation throughput: {serving.saturation_qps:.0f} QPS "
          f"(pipeline path: {path})")
    table = Table(
        f"{config.name}: latency vs offered load",
        ["offered QPS", "p50 ms", "p95 ms", "p99 ms"],
    )
    for point in serving.load_sweep(queries=args.queries, fast=fast):
        table.add_row(
            f"{point.offered_qps:.0f}",
            f"{point.p50_ns / 1e6:.2f}",
            f"{point.p95_ns / 1e6:.2f}",
            f"{point.p99_ns / 1e6:.2f}",
        )
    table.print()
    search = serving.sla_search(
        sla_ns=args.sla_ms * 1e6, queries=args.queries, fast=fast
    )
    print(f"max load with p99 <= {args.sla_ms} ms: {search.max_qps:.0f} QPS "
          f"({search.max_qps / serving.saturation_qps:.0%} of saturation; "
          f"{len(search.points)} probes)")
    trajectory = " -> ".join(
        f"{point.offered_qps:.0f}" for point in search.points
    )
    print(f"bisection trajectory (offered QPS): {trajectory}")
    # Worst window at the highest passing load: the run aggregate can
    # meet the SLA while one window blows through it.
    passing = [
        point for point in search.points
        if point.offered_qps <= search.max_qps and point.windows
    ]
    if passing:
        critical = max(passing, key=lambda point: point.offered_qps)
        worst = critical.worst_window(99.0)
        if worst is not None:
            print(
                f"worst window at {critical.offered_qps:.0f} QPS: "
                f"window {worst.index} "
                f"(t={worst.start_ns / 1e6:.1f} ms, {worst.count} batches) "
                f"p99 {worst.percentile(99.0) / 1e6:.2f} ms"
            )
    if metrics is not None:
        out = metrics.export_timeseries(args.timeseries_out)
        print(f"timeseries: {out} (window {args.window_ms} ms)")
    return 0


def _cmd_report_cluster(args, config, result) -> int:
    """``report --cluster``: per-window fleet dashboard with scaling log."""
    from repro.host.autoscale import Autoscaler
    from repro.host.cluster_serving import ClusterServingSimulator
    from repro.obs import MetricsRegistry, Profiler, SLOEngine, names
    from repro.obs.timeseries import export_document
    from repro.ssd import fastpath

    window_ns = args.window_ms * 1e6
    sla_ns = args.sla_ms * 1e6
    fast = False if args.no_fastpath else None
    path = "fast" if (fast is None and fastpath.enabled()) else "des"
    replica_qps = result.times.throughput_qps(1e9 / 5.0)
    base_qps = args.qps or 0.6 * replica_qps * args.replicas
    duration_ns = args.duration_ms * 1e6
    trace = _cluster_trace(args.arrivals, base_qps, duration_ns, args.seed)
    scaler = None
    if args.autoscale:
        scaler = Autoscaler(
            sla_ns=sla_ns,
            quantile=args.quantile,
            window_ns=window_ns,
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
        )
    metrics = MetricsRegistry(window_ns=window_ns, sketch_k=args.sketch_k)
    profiler = Profiler()
    critpath = None
    if args.explain or args.explain_out:
        from repro.obs import CritPathCollector

        critpath = CritPathCollector()
    sim = ClusterServingSimulator(
        result.times, nbatch=result.nbatch, replicas=args.replicas,
        balancer=args.balancer, autoscaler=scaler,
        metrics=metrics, profiler=profiler, critpath=critpath,
    )
    slo = SLOEngine(window_ns)
    slo.objective(
        names.SLO_SERVING_TAIL,
        names.METRIC_SERVING_LATENCY,
        quantile=args.quantile,
        threshold_ns=sla_ns,
    )
    point = sim.serve_trace(trace, fast=fast)
    print(f"cluster report: {config.name}, {args.arrivals} arrivals "
          f"({trace.count} queries, {trace.mean_qps:.0f} QPS mean), "
          f"balancer {args.balancer}, pipeline path: {path}")
    print(f"run aggregate:  p50 {point.p50_ns / 1e6:.2f} ms / "
          f"p99 {point.p99_ns / 1e6:.2f} ms / achieved "
          f"{point.achieved_qps:.0f} QPS / replicas "
          f"{point.initial_replicas}->{point.final_replicas}")

    alerts = slo.alerts(metrics)
    alert_windows = {}
    for alert in alerts:
        alert_windows.setdefault(alert["window"], []).append(alert)
    series = metrics.series(names.METRIC_SERVING_LATENCY)
    table = Table(
        f"{config.name}: per-window cluster dashboard "
        f"(window {args.window_ms} ms, SLA p{args.quantile:g} <= "
        f"{args.sla_ms} ms)",
        ["win", "t0 ms", "batches", "p50 ms", f"p{args.quantile:g} ms",
         "replicas", "alerts"],
    )
    for index in series.window_indices() if series is not None else ():
        t0_ns = index * window_ns
        replicas = point.initial_replicas
        for event in point.scale_events:
            if event.t_ns <= t0_ns:
                replicas = event.to_replicas
        fired = ",".join(
            a["severity"] for a in alert_windows.get(index, ())
        )
        table.add_row(
            index,
            f"{t0_ns / 1e6:.1f}",
            series.window_count(index),
            f"{series.window_percentile(index, 50.0) / 1e6:.2f}",
            f"{series.window_percentile(index, args.quantile) / 1e6:.2f}",
            replicas,
            fired or "-",
        )
    table.print()
    _print_scaling_events(point.scale_events)
    if critpath is not None:
        from repro.obs import build_explain_document

        document = build_explain_document(
            critpath.requests,
            meta={
                "model": args.model, "mode": "cluster",
                "arrivals": args.arrivals, "balancer": args.balancer,
                "replicas": args.replicas, "queries": trace.count,
                "seed": args.seed,
            },
        )
        _print_explain_summary(document)
        if args.explain_out:
            _export_explain(document, args.explain_out)
    if args.timeseries_out:
        out = export_document(
            sim.timeseries_document(slo=slo), args.timeseries_out
        )
        print(f"timeseries: {out}")
    if args.metrics_out:
        out = metrics.export_json(args.metrics_out)
        print(f"metrics: {out}")
    if args.prom_out:
        out = metrics.export_prometheus(args.prom_out)
        print(f"prometheus: {out}")
    return 0


def cmd_report(args) -> int:
    """Per-window serving dashboard: tails, utilization, SLO alerts."""
    from repro.core.lookup_engine import flash_read_cycles
    from repro.fpga.decompose import decompose_model
    from repro.fpga.search import kernel_search
    from repro.host.serving import ServingSimulator
    from repro.obs import (
        MetricsRegistry,
        Profiler,
        SLOEngine,
        names,
        utilization_series,
    )
    from repro.ssd import fastpath
    from repro.ssd.geometry import SSDGeometry
    from repro.ssd.timing import SSDTimingModel

    config = get_config(args.model)
    model = build_model(config, rows_per_table=args.rows)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    if args.cluster:
        return _cmd_report_cluster(args, config, result)
    window_ns = args.window_ms * 1e6
    metrics = MetricsRegistry(window_ns=window_ns, sketch_k=args.sketch_k)
    profiler = Profiler()
    critpath = None
    if args.explain or args.explain_out:
        from repro.obs import CritPathCollector

        critpath = CritPathCollector()
    serving = ServingSimulator(
        result.times, nbatch=result.nbatch, seed=args.seed,
        metrics=metrics, profiler=profiler, window_ns=window_ns,
        critpath=critpath,
    )
    slo = SLOEngine(window_ns)
    slo.objective(
        names.SLO_SERVING_TAIL,
        names.METRIC_SERVING_LATENCY,
        quantile=args.quantile,
        threshold_ns=args.sla_ms * 1e6,
    )
    fast = False if args.no_fastpath else None
    path = "fast" if (fast is None and fastpath.enabled()) else "des"
    qps = serving.saturation_qps * args.load
    point = serving.offered_load(qps, queries=args.queries, fast=fast)
    print(f"offered load:   {qps:.0f} QPS "
          f"({args.load:.0%} of saturation; pipeline path: {path})")
    print(f"run aggregate:  p50 {point.p50_ns / 1e6:.2f} ms / "
          f"p99 {point.p99_ns / 1e6:.2f} ms / mean queue "
          f"{point.mean_queue_ns / 1e6:.2f} ms")

    alerts = slo.alerts(metrics)
    alert_windows = {}
    for alert in alerts:
        alert_windows.setdefault(alert["window"], []).append(alert)
    utilization = utilization_series(profiler, window_ns)
    emb_windows = {
        w["index"]: w["utilization"]
        for w in utilization.get(names.STAGE_EMB, {}).get("windows", ())
    }
    series = metrics.series(names.METRIC_SERVING_LATENCY)
    table = Table(
        f"{config.name}: per-window dashboard "
        f"(window {args.window_ms} ms, SLA p{args.quantile:g} <= "
        f"{args.sla_ms} ms)",
        ["win", "t0 ms", "batches", "p50 ms", f"p{args.quantile:g} ms",
         "emb util", "alerts"],
    )
    for index in series.window_indices() if series is not None else ():
        tail = series.window_percentile(index, args.quantile)
        fired = ",".join(
            a["severity"] for a in alert_windows.get(index, ())
        )
        table.add_row(
            index,
            f"{index * window_ns / 1e6:.1f}",
            series.window_count(index),
            f"{series.window_percentile(index, 50.0) / 1e6:.2f}",
            f"{tail / 1e6:.2f}",
            _utilization_bar(emb_windows.get(index, 0.0)),
            fired or "-",
        )
    table.print()

    sketch = metrics.histogram(names.METRIC_SERVING_LATENCY).sketch
    if sketch is not None and sketch.n:
        print(f"stream tails (sketch k={sketch.k}, n={sketch.n}, "
              f"rank error <= {sketch.rank_error_bound()}): "
              f"p99 {sketch.quantile(99.0) / 1e6:.2f} ms / "
              f"p999 {sketch.quantile(99.9) / 1e6:.2f} ms / "
              f"p9999 {sketch.quantile(99.99) / 1e6:.2f} ms")
    if alerts:
        print("alert timeline:")
        for alert in alerts:
            print(f"  t={alert['t_ns'] / 1e6:8.1f} ms  "
                  f"[{alert['severity']}] {alert['type']} "
                  f"on {alert['objective']} (window {alert['window']}; "
                  f"burn {alert['long_burn']:.1f}x long / "
                  f"{alert['short_burn']:.1f}x short)")
    else:
        print("alert timeline: quiet (no burn-rate alerts)")
    if critpath is not None:
        from repro.obs import build_explain_document

        document = build_explain_document(
            critpath.requests,
            meta={
                "model": args.model, "mode": "device", "load": args.load,
                "queries": args.queries, "seed": args.seed,
            },
        )
        _print_explain_summary(document)
        if args.explain_out:
            _export_explain(document, args.explain_out)
    if args.timeseries_out:
        out = metrics.export_timeseries(
            args.timeseries_out, profiler=profiler, slo=slo
        )
        print(f"timeseries: {out}")
    if args.metrics_out:
        out = metrics.export_json(args.metrics_out)
        print(f"metrics: {out}")
    if args.prom_out:
        out = metrics.export_prometheus(args.prom_out)
        print(f"prometheus: {out}")
    return 0


def _utilization_bar(fraction: float, width: int = 10) -> str:
    """ASCII utilization bar, e.g. ``#######---  68%``."""
    clamped = min(1.0, max(0.0, fraction))
    filled = round(clamped * width)
    return f"{'#' * filled}{'-' * (width - filled)} {clamped:4.0%}"


def cmd_criteo_gen(args) -> int:
    from repro.workloads.criteo import generate_criteo_file

    path = generate_criteo_file(
        args.path,
        rows=args.rows,
        vocab_size=args.vocab,
        hot_access_fraction=args.locality,
        seed=args.seed,
    )
    print(f"wrote {args.rows} Criteo-format samples to {path}")
    return 0


def cmd_criteo_run(args) -> int:
    from repro.baselines import RMSSDBackend
    from repro.workloads.criteo import CriteoDataset

    config = get_config(args.model)
    model = build_model(config, rows_per_table=args.rows)
    dataset = CriteoDataset.load(args.path, limit=args.limit)
    requests = dataset.to_requests(
        batch_size=args.batch,
        num_tables=config.num_tables,
        rows_per_table=args.rows,
        dense_dim=config.dense_dim,
        lookups_per_table=config.lookups_per_table,
    )
    backend = RMSSDBackend(model, config.lookups_per_table, use_des=False)
    result = backend.run(requests)
    print(f"served {result.inferences} Criteo samples on {result.system}")
    print(f"throughput: {result.qps:.0f} QPS")
    print(f"CTR range: [{result.outputs.min():.3f}, {result.outputs.max():.3f}]")
    return 0


def cmd_trace_stats(args) -> int:
    from repro.workloads import TraceGenerator, TraceStatistics

    generator = TraceGenerator(
        num_tables=args.tables,
        rows_per_table=args.rows,
        lookups_per_table=args.lookups,
        hot_access_fraction=args.locality,
        seed=args.seed,
    )
    flat = generator.flat_indices(generator.generate(args.requests))
    stats = TraceStatistics.from_indices(flat)
    print(stats.summary())
    print(f"hot set size (per table): {generator.hot_set_size}")
    print(f"top-hot-set share: {stats.top_k_share(generator.hot_set_size):.2%}")
    table = Table("occurrence -> #indices", ["occurrence", "#indices"])
    for occurrence, count in stats.occurrence_table(8).items():
        table.add_row(occurrence, count)
    table.print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rmssd-repro",
        description="RM-SSD (HPCA 2022) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list model configurations").set_defaults(
        func=cmd_models
    )

    p_search = sub.add_parser("search", help="run the kernel search")
    p_search.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_search.add_argument("--bram-budget", type=int, default=1024,
                          help="Rule One BRAM budget in BRAM36 tiles")
    p_search.set_defaults(func=cmd_search)

    p_run = sub.add_parser("run", help="serve a request stream")
    p_run.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_run.add_argument("--backend", choices=BACKEND_CHOICES, default="rm-ssd")
    p_run.add_argument("--batch", type=int, default=1)
    p_run.add_argument("--requests", type=int, default=8)
    p_run.add_argument("--rows", type=int, default=8192,
                       help="rows per embedding table (scaled capacity)")
    p_run.add_argument("--locality", type=float, default=0.65,
                       help="hot-access fraction of the trace")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--no-compute", action="store_true",
                       help="skip numeric outputs (timing only)")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome-trace/Perfetto JSON of the run")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write latency histograms + I/O counters as JSON")
    p_run.add_argument("--timeseries-out", default=None, metavar="PATH",
                       help="write windowed metric series as JSON "
                            "(schema rmssd-timeseries/v1)")
    p_run.add_argument("--window-ms", type=float, default=1.0,
                       help="window width for --timeseries-out, in "
                            "simulated milliseconds")
    p_run.add_argument("--prom-out", default=None, metavar="PATH",
                       help="write a Prometheus text-format metrics snapshot")
    p_run.add_argument("--vcache-vectors", type=int, default=0,
                       help="controller-DRAM hot-vector cache capacity in "
                            "vectors (0 = disabled, the paper's design)")
    p_run.add_argument("--vcache-policy", default="lru",
                       choices=("lru", "freq", "static"),
                       help="vector-cache admission/eviction policy")
    p_run.set_defaults(func=cmd_run)

    p_profile = sub.add_parser(
        "profile",
        help="profiled DES run: utilization + bottleneck attribution",
    )
    p_profile.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_profile.add_argument("--backend", choices=("rm-ssd", "rm-ssd-naive"),
                           default="rm-ssd")
    p_profile.add_argument("--profile-out", required=True, metavar="PATH",
                           help="write the utilization/bottleneck profile "
                                "JSON (schema rmssd-profile/v1)")
    p_profile.add_argument("--batch", type=int, default=2)
    p_profile.add_argument("--requests", type=int, default=4)
    p_profile.add_argument("--rows", type=int, default=512,
                           help="rows per embedding table (scaled capacity)")
    p_profile.add_argument("--locality", type=float, default=0.65,
                           help="hot-access fraction of the trace")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--top", type=int, default=8,
                           help="resources to list in the utilization table")
    p_profile.add_argument("--no-fastpath", action="store_true",
                           help="force the per-read DES (the fast path "
                                "records bitwise-identical profiles)")
    p_profile.add_argument("--trace-out", default=None, metavar="PATH",
                           help="also write a Chrome-trace JSON of the run")
    p_profile.add_argument("--vcache-vectors", type=int, default=0,
                           help="controller-DRAM hot-vector cache capacity "
                                "in vectors (0 = disabled)")
    p_profile.add_argument("--vcache-policy", default="lru",
                           choices=("lru", "freq", "static"),
                           help="vector-cache admission/eviction policy")
    p_profile.set_defaults(func=cmd_profile)

    p_sweep = sub.add_parser("sweep", help="batch-size sweep")
    p_sweep.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_sweep.add_argument("--backends", default="rm-ssd,recssd,dram")
    p_sweep.add_argument("--batches", default="1,2,4,8,16")
    p_sweep.add_argument("--requests", type=int, default=4)
    p_sweep.add_argument("--rows", type=int, default=8192)
    p_sweep.add_argument("--locality", type=float, default=0.65)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.set_defaults(func=cmd_sweep)

    sub.add_parser(
        "selfcheck", help="verify the installation's core invariants"
    ).set_defaults(func=cmd_selfcheck)

    p_advise = sub.add_parser(
        "advise", help="should this model be served in-storage?"
    )
    p_advise.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_advise.set_defaults(func=cmd_advise)

    p_sla = sub.add_parser("sla", help="open-loop SLA study on RM-SSD")
    p_sla.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_sla.add_argument("--sla-ms", type=float, default=10.0,
                       help="p99 latency SLA in milliseconds")
    p_sla.add_argument("--rows", type=int, default=512)
    p_sla.add_argument("--queries", type=int, default=150)
    p_sla.add_argument("--seed", type=int, default=0)
    p_sla.add_argument("--no-fastpath", action="store_true",
                       help="force the event-driven pipeline (the "
                            "closed-form replay is bitwise-identical)")
    p_sla.add_argument("--window-ms", type=float, default=5.0,
                       help="window width for per-window summaries and "
                            "--timeseries-out, in simulated milliseconds")
    p_sla.add_argument("--timeseries-out", default=None, metavar="PATH",
                       help="write windowed serving series as JSON "
                            "(schema rmssd-timeseries/v1)")
    p_sla.add_argument("--cluster", action="store_true",
                       help="serve an open-loop arrival trace against a "
                            "replica fleet instead of the single-device "
                            "load sweep")
    p_sla.add_argument("--replicas", type=int, default=2,
                       help="initial replica count (cluster mode)")
    p_sla.add_argument("--balancer", default="round-robin",
                       choices=["round-robin", "jsq", "latency-weighted"],
                       help="cluster load balancer")
    p_sla.add_argument("--arrivals", default="flash-crowd",
                       choices=["poisson", "diurnal", "flash-crowd"],
                       help="arrival-trace shape (cluster mode)")
    p_sla.add_argument("--duration-ms", type=float, default=200.0,
                       help="trace duration in simulated ms (cluster mode)")
    p_sla.add_argument("--qps", type=float, default=None,
                       help="mean offered load in QPS (cluster mode; "
                            "default 60%% of fleet saturation)")
    p_sla.add_argument("--autoscale", action="store_true",
                       help="close the loop: scale replicas on SLO "
                            "burn-rate alerts (cluster mode)")
    p_sla.add_argument("--min-replicas", type=int, default=1,
                       help="autoscaler floor (cluster mode)")
    p_sla.add_argument("--max-replicas", type=int, default=8,
                       help="autoscaler ceiling (cluster mode)")
    p_sla.add_argument("--quantile", type=float, default=99.0,
                       help="SLA quantile (cluster mode)")
    p_sla.set_defaults(func=cmd_sla)

    p_report = sub.add_parser(
        "report",
        help="per-window serving dashboard: tails, utilization, SLO alerts",
    )
    p_report.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_report.add_argument("--load", type=float, default=0.9,
                          help="offered load as a fraction of saturation")
    p_report.add_argument("--queries", type=int, default=400)
    p_report.add_argument("--rows", type=int, default=512)
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--window-ms", type=float, default=5.0,
                          help="window width in simulated milliseconds")
    p_report.add_argument("--sla-ms", type=float, default=10.0,
                          help="per-window tail-latency objective in ms")
    p_report.add_argument("--quantile", type=float, default=99.0,
                          help="objective quantile (e.g. 99, 99.9)")
    p_report.add_argument("--sketch-k", type=int, default=1024,
                          help="rank-sketch compactor capacity "
                               "(rank error scales as ~8/k)")
    p_report.add_argument("--no-fastpath", action="store_true",
                          help="force the event-driven pipeline (the "
                               "closed-form replay is bitwise-identical)")
    p_report.add_argument("--timeseries-out", default=None, metavar="PATH",
                          help="write the full rmssd-timeseries/v1 document "
                               "(series + utilization + slo)")
    p_report.add_argument("--metrics-out", default=None, metavar="PATH",
                          help="also write the run-aggregate metrics JSON")
    p_report.add_argument("--prom-out", default=None, metavar="PATH",
                          help="write a Prometheus text-format snapshot")
    p_report.add_argument("--cluster", action="store_true",
                          help="report on a replica fleet fed by an "
                               "open-loop arrival trace")
    p_report.add_argument("--replicas", type=int, default=2,
                          help="initial replica count (cluster mode)")
    p_report.add_argument("--balancer", default="round-robin",
                          choices=["round-robin", "jsq", "latency-weighted"],
                          help="cluster load balancer")
    p_report.add_argument("--arrivals", default="flash-crowd",
                          choices=["poisson", "diurnal", "flash-crowd"],
                          help="arrival-trace shape (cluster mode)")
    p_report.add_argument("--duration-ms", type=float, default=200.0,
                          help="trace duration in simulated ms "
                               "(cluster mode)")
    p_report.add_argument("--qps", type=float, default=None,
                          help="mean offered load in QPS (cluster mode; "
                               "default 60%% of fleet saturation)")
    p_report.add_argument("--autoscale", action="store_true",
                          help="close the loop: scale replicas on SLO "
                               "burn-rate alerts (cluster mode)")
    p_report.add_argument("--min-replicas", type=int, default=1,
                          help="autoscaler floor (cluster mode)")
    p_report.add_argument("--max-replicas", type=int, default=8,
                          help="autoscaler ceiling (cluster mode)")
    p_report.add_argument("--explain", action="store_true",
                          help="append the per-request critical-path "
                               "attribution (tail blame + exemplars)")
    p_report.add_argument("--explain-out", default=None, metavar="PATH",
                          help="write the rmssd-explain/v1 attribution "
                               "document (implies --explain)")
    p_report.set_defaults(func=cmd_report)

    p_explain = sub.add_parser(
        "explain",
        help="per-request critical-path attribution and tail exemplars, "
             "or a cross-run regression diff (--diff)",
    )
    p_explain.add_argument("model", nargs="?", default=None,
                           choices=sorted(MODEL_CONFIGS))
    p_explain.add_argument("--diff", nargs=2, default=None,
                           metavar=("BASELINE", "FRESH"),
                           help="diff two exported explain/profile/"
                                "timeseries JSON documents and attribute "
                                "the regression instead of running")
    p_explain.add_argument("--explain-out", default=None, metavar="PATH",
                           help="write the rmssd-explain/v1 document")
    p_explain.add_argument("--trace-out", default=None, metavar="PATH",
                           help="also write a Chrome-trace JSON of the run "
                                "(single-device mode; tools/check_trace.py "
                                "cross-checks it against --explain-out)")
    p_explain.add_argument("--top-k", type=int, default=3,
                           help="exemplar requests listed per quantile")
    p_explain.add_argument("--load", type=float, default=0.9,
                           help="offered load as a fraction of saturation")
    p_explain.add_argument("--queries", type=int, default=400)
    p_explain.add_argument("--rows", type=int, default=512)
    p_explain.add_argument("--seed", type=int, default=0)
    p_explain.add_argument("--sla-ms", type=float, default=10.0,
                           help="tail objective in ms (cluster autoscale)")
    p_explain.add_argument("--window-ms", type=float, default=5.0,
                           help="SLO window in simulated ms (cluster "
                                "autoscale)")
    p_explain.add_argument("--quantile", type=float, default=99.0,
                           help="SLA quantile (cluster autoscale)")
    p_explain.add_argument("--no-fastpath", action="store_true",
                           help="force the event-driven pipeline (the "
                                "closed-form replay exports a "
                                "byte-identical document)")
    p_explain.add_argument("--cluster", action="store_true",
                           help="attribute an open-loop cluster run "
                                "instead of the single-device load point")
    p_explain.add_argument("--replicas", type=int, default=2,
                           help="initial replica count (cluster mode)")
    p_explain.add_argument("--balancer", default="round-robin",
                           choices=["round-robin", "jsq", "latency-weighted"],
                           help="cluster load balancer")
    p_explain.add_argument("--arrivals", default="flash-crowd",
                           choices=["poisson", "diurnal", "flash-crowd"],
                           help="arrival-trace shape (cluster mode)")
    p_explain.add_argument("--duration-ms", type=float, default=200.0,
                           help="trace duration in simulated ms "
                                "(cluster mode)")
    p_explain.add_argument("--qps", type=float, default=None,
                           help="mean offered load in QPS (cluster mode; "
                                "default 60%% of fleet saturation)")
    p_explain.add_argument("--autoscale", action="store_true",
                           help="close the loop: scale replicas on SLO "
                                "burn-rate alerts (cluster mode)")
    p_explain.add_argument("--min-replicas", type=int, default=1,
                           help="autoscaler floor (cluster mode)")
    p_explain.add_argument("--max-replicas", type=int, default=8,
                           help="autoscaler ceiling (cluster mode)")
    p_explain.set_defaults(func=cmd_explain)

    p_cgen = sub.add_parser("criteo-gen", help="generate a Criteo-format TSV")
    p_cgen.add_argument("path")
    p_cgen.add_argument("--rows", type=int, default=1000)
    p_cgen.add_argument("--vocab", type=int, default=100_000)
    p_cgen.add_argument("--locality", type=float, default=0.65)
    p_cgen.add_argument("--seed", type=int, default=0)
    p_cgen.set_defaults(func=cmd_criteo_gen)

    p_crun = sub.add_parser("criteo-run", help="serve a Criteo file on RM-SSD")
    p_crun.add_argument("path")
    p_crun.add_argument("model", choices=sorted(MODEL_CONFIGS))
    p_crun.add_argument("--batch", type=int, default=8)
    p_crun.add_argument("--rows", type=int, default=4096)
    p_crun.add_argument("--limit", type=int, default=None)
    p_crun.set_defaults(func=cmd_criteo_run)

    p_trace = sub.add_parser("trace-stats", help="Fig. 4-style trace statistics")
    p_trace.add_argument("--tables", type=int, default=1)
    p_trace.add_argument("--rows", type=int, default=100_000)
    p_trace.add_argument("--lookups", type=int, default=80)
    p_trace.add_argument("--locality", type=float, default=0.65)
    p_trace.add_argument("--requests", type=int, default=200)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.set_defaults(func=cmd_trace_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
