"""Comparator systems (Section VI).

Every backend runs the *same* numeric model on the *same* requests and
returns a :class:`repro.baselines.base.RunResult`; they differ only in
where the embedding lookups and the MLP execute and what that costs:

========================= ===========================================
Backend                   Paper system
========================= ===========================================
``DRAMBackend``           ideal DRAM-only DLRM (no memory limit)
``NaiveSSDBackend``       SSD-S / SSD-M (fileIO + page cache)
``EMBMMIOBackend``        EMB-MMIO (page fetch over MMIO, host sum)
``EMBPageSumBackend``     EMB-PageSum (page reads + in-SSD sum)
``EMBVectorSumBackend``   EMB-VectorSum (RM-SSD lookup engine only)
``RecSSDBackend``         RecSSD (in-SSD page sum + host vector cache)
``RMSSDBackend``          RM-SSD (full) and RM-SSD-Naive
========================= ===========================================
"""

from repro.baselines.base import InferenceBackend, RunResult
from repro.baselines.dram import DRAMBackend
from repro.baselines.emb_mmio import EMBMMIOBackend
from repro.baselines.emb_pagesum import EMBPageSumBackend
from repro.baselines.emb_vectorsum import EMBVectorSumBackend
from repro.baselines.recssd import RecSSDBackend
from repro.baselines.rmssd import RMSSDBackend
from repro.baselines.ssd_naive import NaiveSSDBackend

__all__ = [
    "DRAMBackend",
    "EMBMMIOBackend",
    "EMBPageSumBackend",
    "EMBVectorSumBackend",
    "InferenceBackend",
    "NaiveSSDBackend",
    "RMSSDBackend",
    "RecSSDBackend",
    "RunResult",
]
