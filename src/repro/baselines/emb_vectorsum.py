"""EMB-VectorSum: RM-SSD's Embedding Lookup Engine, host-side MLP.

The third rung (Section VI-B): vector-grained in-SSD reads and in-SSD
pooling — the full Embedding Lookup Engine — with the MLP still on the
host CPU.  This is the ablation that isolates the lookup engine's
contribution from the MLP Acceleration Engine's.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import EMB_FS, EMB_OP, EMB_SSD, InferenceBackend
from repro.core.lookup_engine import effective_vector_bandwidth
from repro.embedding.translator import EVTranslator
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.workloads.inputs import InferenceRequest


class EMBVectorSumBackend(InferenceBackend):
    name = "EMB-VectorSum"

    def __init__(
        self,
        model,
        costs: HostCostModel = DEFAULT_HOST_COSTS,
        geometry: Optional[SSDGeometry] = None,
        ssd_timing: Optional[SSDTimingModel] = None,
    ) -> None:
        super().__init__(model, costs)
        self.geometry = geometry or SSDGeometry()
        self.ssd_timing = ssd_timing or SSDTimingModel()
        self._vectors_per_cycle = effective_vector_bandwidth(
            self.geometry, self.ssd_timing, model.tables.ev_size
        )

    def pooled_return_bytes(self, batch: int) -> int:
        return batch * len(self.model.tables) * self.model.tables.dim * 4

    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        vectors = self._vectors_in(request)
        device_cycles = (
            vectors / self._vectors_per_cycle
            + EVTranslator.CYCLES_PER_LOOKUP * vectors / max(1, self.geometry.channels)
        )
        device_ns = self.ssd_timing.cycles_to_ns(device_cycles)
        return_bytes = self.pooled_return_bytes(request.batch_size)
        transfer_ns = self.costs.pcie_transfer_ns(return_bytes) + 2000.0
        self.stats.record_host_transfer(read_bytes=return_bytes)
        breakdown = {EMB_SSD: device_ns, EMB_FS: transfer_ns, EMB_OP: 0.0}
        breakdown.update(self._mlp_breakdown_ns(request.batch_size))
        return breakdown
