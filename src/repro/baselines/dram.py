"""The ideal DRAM-only backend (Fig. 2's "DRAM").

The whole model — embeddings included — lives in host memory without
any capacity limit, served by the Python framework: per-operator
dispatch overheads plus vectorized gather/GEMM work.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import EMB_OP, InferenceBackend
from repro.workloads.inputs import InferenceRequest


class DRAMBackend(InferenceBackend):
    name = "DRAM"

    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        vectors = self._vectors_in(request)
        breakdown = {
            EMB_OP: self.costs.sls_op_ns(len(self.model.tables), vectors),
        }
        breakdown.update(self._mlp_breakdown_ns(request.batch_size))
        return breakdown
