"""RecSSD (Wilkening et al., ASPLOS'21), reimplemented per Section VI-C.

RecSSD offloads *only* the embedding lookup: the device reads whole
pages and returns partial sums, while a host-side software cache holds
hot embedding vectors and merges them with the device partials.  The
paper characterizes it as "EMB-PageSum plus a userspace cache", which
is exactly this composition.  The MLP stays on the host.

The host cache makes RecSSD locality-sensitive — the Fig. 14 result:
its throughput tracks the trace hit ratio, while RM-SSD (no cache on
the critical path) does not.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import EMB_FS, EMB_OP, EMB_SSD, InferenceBackend
from repro.core.lookup_engine import effective_page_bandwidth
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.ssd.geometry import SSDGeometry
from repro.ssd.pagecache import LRUPageCache
from repro.ssd.timing import SSDTimingModel
from repro.workloads.inputs import InferenceRequest

#: Host-side merge cost per cached vector (vectorized add).
HOST_MERGE_PER_VECTOR_NS = 40.0
#: Per-request command handling on the device's EV path, cycles/page.
EV_PATH_CYCLES_PER_PAGE = 100
#: Per-lookup host work in RecSSD's userspace cache layer: probe the
#: cache, take locks, and build the device command list for misses.
#: This cost is paid for *every* lookup regardless of hit/miss and is
#: why "the performance improvement brought by the host-side cache of
#: RecSSD cannot compete with the direct MLP acceleration" (Section
#: VI-C) — calibrated to Fig. 12's 1.5-2x RM-SSD advantage on the
#: embedding-dominated models.
HOST_PROBE_PER_LOOKUP_NS = 1_500.0


class RecSSDBackend(InferenceBackend):
    name = "RecSSD"

    def __init__(
        self,
        model,
        cache_vectors: Optional[int] = None,
        ssd_cache_vectors: int = 0,
        costs: HostCostModel = DEFAULT_HOST_COSTS,
        geometry: Optional[SSDGeometry] = None,
        ssd_timing: Optional[SSDTimingModel] = None,
    ) -> None:
        super().__init__(model, costs)
        self.geometry = geometry or SSDGeometry()
        self.ssd_timing = ssd_timing or SSDTimingModel()
        self._pages_per_cycle = effective_page_bandwidth(self.geometry, self.ssd_timing)
        if cache_vectors is None:
            # RecSSD statically partitions its host cache from history;
            # default to ~1% of the index space, enough for the hot set.
            # Tables may have different row counts, so size from the
            # actual total rather than extrapolating table 0.
            cache_vectors = max(
                1, sum(table.rows for table in model.tables) // 100
            )
        self.host_cache = LRUPageCache(cache_vectors, model.tables.ev_size)
        # RecSSD's optional SSD-side cache (original paper; the RM-SSD
        # authors could not emulate it and argue it is marginal — this
        # implementation lets that claim be measured).  It caches
        # vectors in controller DRAM, absorbing flash page reads for
        # host-cache misses that repeat.
        self.ssd_cache = (
            LRUPageCache(ssd_cache_vectors, model.tables.ev_size)
            if ssd_cache_vectors > 0
            else None
        )
        #: Controller-DRAM hit cost per vector, cycles (DRAM fetch +
        #: accumulate) — far below a flash page read.
        self.ssd_cache_hit_cycles = 50

    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        misses = 0
        hits = 0
        ssd_hits = 0
        for sample in request.sparse:
            for table_id, lookups in enumerate(sample):
                for index in lookups:
                    if self.host_cache.access((table_id, index)):
                        hits += 1
                    elif self.ssd_cache is not None and self.ssd_cache.access(
                        (table_id, index)
                    ):
                        ssd_hits += 1
                    else:
                        misses += 1
        self.stats.cache_hits += hits
        self.stats.cache_misses += misses + ssd_hits
        # Device: page read + partial in-SSD sum for every flash miss;
        # SSD-cache hits cost only a controller-DRAM fetch.
        device_cycles = (
            misses / self._pages_per_cycle
            + (EV_PATH_CYCLES_PER_PAGE * misses) / max(1, self.geometry.channels)
            + self.ssd_cache_hit_cycles * ssd_hits
        )
        device_ns = self.ssd_timing.cycles_to_ns(device_cycles)
        # Host: probe the cache for every lookup — including the ones
        # the SSD-side cache later absorbs, which still miss the host
        # cache and pay the probe — then merge cached vectors into the
        # returned partial sums.
        merge_ns = (
            (hits + ssd_hits + misses) * HOST_PROBE_PER_LOOKUP_NS
            + hits * HOST_MERGE_PER_VECTOR_NS
            + len(self.model.tables) * self.costs.framework_op_ns
        )
        return_bytes = (
            request.batch_size * len(self.model.tables) * self.model.tables.dim * 4
        )
        transfer_ns = self.costs.pcie_transfer_ns(return_bytes) + 2000.0
        self.stats.record_host_transfer(read_bytes=return_bytes)
        breakdown = {EMB_SSD: device_ns, EMB_FS: transfer_ns, EMB_OP: merge_ns}
        breakdown.update(self._mlp_breakdown_ns(request.batch_size))
        return breakdown
