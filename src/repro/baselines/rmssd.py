"""RM-SSD as a backend (full system, plus the RM-SSD-Naive variant).

Wraps :class:`repro.core.device.RMSSD` behind the common backend
interface.  ``use_des=True`` runs every embedding read through the
discrete-event flash simulator (accurate queueing, slower); analytic
mode uses the closed-form Eq. 1 stage times — the two agree within the
striping-efficiency factor checked in the tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import (
    BOT_MLP,
    EMB_FS,
    EMB_SSD,
    TOP_MLP,
    InferenceBackend,
    RunResult,
)
from repro.core.device import (
    MLP_DESIGN_NAIVE,
    MLP_DESIGN_OPTIMIZED,
    RMSSD,
)
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.ssd.vcache import VectorCache
from repro.workloads.inputs import InferenceRequest


class RMSSDBackend(InferenceBackend):
    """Full RM-SSD (or RM-SSD-Naive with ``mlp_design="naive"``)."""

    def __init__(
        self,
        model,
        lookups_per_table: int,
        mlp_design: str = MLP_DESIGN_OPTIMIZED,
        use_des: bool = True,
        costs: HostCostModel = DEFAULT_HOST_COSTS,
        geometry: Optional[SSDGeometry] = None,
        ssd_timing: Optional[SSDTimingModel] = None,
        fastpath: Optional[bool] = None,
        tracer=None,
        metrics=None,
        vcache: Optional[VectorCache] = None,
        profiler=None,
    ) -> None:
        super().__init__(model, costs)
        self.name = "RM-SSD" if mlp_design == MLP_DESIGN_OPTIMIZED else "RM-SSD-Naive"
        # ``fastpath=None`` defers to RMSSD_FASTPATH; vector reads then
        # take the DES-equivalent vectorized path when channels are idle.
        # ``tracer``/``metrics``/``profiler`` flow straight to the
        # device (see repro.obs): spans on the simulated clock, latency
        # histograms, per-resource utilization.
        # ``vcache`` enables the optional controller-DRAM hot-vector
        # cache (repro.ssd.vcache); ``None`` keeps the paper's
        # cache-free lookup path.
        self.device = RMSSD(
            model,
            lookups_per_table,
            geometry=geometry,
            ssd_timing=ssd_timing,
            mlp_design=mlp_design,
            use_des=use_des,
            fastpath=fastpath,
            tracer=tracer,
            metrics=metrics,
            vcache=vcache,
            profiler=profiler,
        )
        self.stats = self.device.stats

    @property
    def vcache(self) -> Optional[VectorCache]:
        return self.device.vcache

    @property
    def supported_nbatch(self) -> int:
        return self.device.supported_nbatch

    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        _, timing = self.device.infer_batch(request.dense, request.sparse)
        return {
            EMB_SSD: timing.emb_ns,
            BOT_MLP: timing.bot_ns,
            TOP_MLP: timing.top_ns,
            EMB_FS: timing.io_ns,
        }

    def run(self, requests, compute: bool = True) -> RunResult:
        """Serve the stream with system-level pipelining.

        Unlike the host backends, consecutive device batches overlap:
        each request beyond the first costs its pipeline interval, not
        its latency (Section IV-D's pre-send optimization).
        """
        total_breakdown: Dict[str, float] = {}
        outputs = []
        inferences = 0
        total_ns = 0.0
        for position, request in enumerate(requests):
            device_nbatch = max(1, self.device.supported_nbatch)
            batch_out = []
            for start in range(0, request.batch_size, device_nbatch):
                stop = start + device_nbatch
                dense = None if request.dense is None else request.dense[start:stop]
                sparse = request.sparse[start:stop]
                out, timing = self.device.infer_batch(dense, sparse)
                if compute:
                    batch_out.append(out)
                first = position == 0 and start == 0
                total_ns += timing.latency_ns if first else timing.interval_ns
                for key, value in {
                    EMB_SSD: timing.emb_ns,
                    BOT_MLP: timing.bot_ns,
                    TOP_MLP: timing.top_ns,
                    EMB_FS: timing.io_ns,
                }.items():
                    total_breakdown[key] = total_breakdown.get(key, 0.0) + value
            if compute and batch_out:
                outputs.append(np.concatenate(batch_out))
            inferences += request.batch_size
        return RunResult(
            system=self.name,
            outputs=np.concatenate(outputs) if outputs else np.empty((0, 1)),
            total_ns=total_ns,
            inferences=inferences,
            requests=len(requests),
            breakdown=total_breakdown,
            stats=self.stats,
        )
