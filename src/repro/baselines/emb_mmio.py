"""EMB-MMIO: page-granular fetches over MMIO, host-side sum.

The first rung of the in-storage ladder (Section VI-B): bypasses the
kernel I/O stack entirely — every required page crosses to userspace
over the MMIO/DMA window — but still moves whole pages and still sums
on the host CPU.  Device page reads pipeline across channels while the
PCIe link serializes the 4 KB transfers, so whichever is slower bounds
the embedding stage.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import EMB_FS, EMB_OP, EMB_SSD, InferenceBackend
from repro.core.lookup_engine import effective_page_bandwidth
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.workloads.inputs import InferenceRequest

PAGE_SIZE = 4096
#: Per-page MMIO doorbell/completion handling on the host.
MMIO_PER_PAGE_NS = 500.0


class EMBMMIOBackend(InferenceBackend):
    name = "EMB-MMIO"

    def __init__(
        self,
        model,
        costs: HostCostModel = DEFAULT_HOST_COSTS,
        geometry: Optional[SSDGeometry] = None,
        ssd_timing: Optional[SSDTimingModel] = None,
    ) -> None:
        super().__init__(model, costs)
        self.geometry = geometry or SSDGeometry()
        self.ssd_timing = ssd_timing or SSDTimingModel()
        self._pages_per_cycle = effective_page_bandwidth(self.geometry, self.ssd_timing)

    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        pages = self._vectors_in(request)  # one page per lookup
        device_ns = self.ssd_timing.cycles_to_ns(pages / self._pages_per_cycle)
        transfer_ns = pages * (
            self.costs.pcie_transfer_ns(PAGE_SIZE) + MMIO_PER_PAGE_NS
        )
        self.stats.record_host_transfer(read_bytes=pages * PAGE_SIZE)
        op_ns = (
            len(self.model.tables) * self.costs.framework_op_ns
            + pages * self.costs.sls_per_vector_ns
        )
        # Device reads overlap the PCIe stream; the slower one bounds
        # the stage.  Report the device part as emb-ssd and whatever
        # transfer time it cannot hide as emb-fs (interface time).
        exposed_transfer = max(0.0, transfer_ns - device_ns)
        breakdown = {EMB_SSD: device_ns, EMB_FS: exposed_transfer, EMB_OP: op_ns}
        breakdown.update(self._mlp_breakdown_ns(request.batch_size))
        return breakdown
