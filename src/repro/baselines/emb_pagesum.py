"""EMB-PageSum: page-granular in-SSD reads with in-SSD pooling.

The second rung (Section VI-B): pages never leave the device — the
pooling happens next to the flash and only the pooled vectors return —
but the flash channels still move whole pages, so channel-bus occupancy
stays 32x higher than the vector-grained path at 128 B vectors.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import EMB_FS, EMB_OP, EMB_SSD, InferenceBackend
from repro.core.lookup_engine import effective_page_bandwidth
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel
from repro.workloads.inputs import InferenceRequest

PAGE_SIZE = 4096
#: Per-request EV-path handling in the controller (translate, path
#: buffer, DEMUX) in cycles.
EV_PATH_CYCLES_PER_REQUEST = 100


class EMBPageSumBackend(InferenceBackend):
    name = "EMB-PageSum"

    def __init__(
        self,
        model,
        costs: HostCostModel = DEFAULT_HOST_COSTS,
        geometry: Optional[SSDGeometry] = None,
        ssd_timing: Optional[SSDTimingModel] = None,
        use_des: bool = False,
    ) -> None:
        super().__init__(model, costs)
        self.geometry = geometry or SSDGeometry()
        self.ssd_timing = ssd_timing or SSDTimingModel()
        self._pages_per_cycle = effective_page_bandwidth(self.geometry, self.ssd_timing)
        self._des_engine = None
        if use_des:
            # Execute the page reads on the discrete-event simulator
            # over a real on-flash layout (honest queueing; slower).
            from repro.core.page_lookup import PageLookupEngine
            from repro.embedding.layout import EmbeddingLayout
            from repro.sim import Simulator
            from repro.ssd.blockdev import BlockDevice
            from repro.ssd.controller import SSDController

            controller = SSDController(Simulator(), self.geometry, self.ssd_timing)
            layout = EmbeddingLayout(BlockDevice(controller), model.tables)
            layout.create_all()
            self._des_engine = PageLookupEngine(controller, layout)

    def pooled_return_bytes(self, batch: int) -> int:
        return batch * len(self.model.tables) * self.model.tables.dim * 4

    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        pages = self._vectors_in(request)
        if self._des_engine is not None:
            _, device_ns, _ = self._des_engine.lookup_batch(request.sparse)
        else:
            device_cycles = pages / self._pages_per_cycle + (
                EV_PATH_CYCLES_PER_REQUEST * pages
            ) / max(1, self.geometry.channels)
            device_ns = self.ssd_timing.cycles_to_ns(device_cycles)
        return_bytes = self.pooled_return_bytes(request.batch_size)
        transfer_ns = self.costs.pcie_transfer_ns(return_bytes) + 2000.0
        self.stats.record_host_transfer(read_bytes=return_bytes)
        breakdown = {EMB_SSD: device_ns, EMB_FS: transfer_ns, EMB_OP: 0.0}
        breakdown.update(self._mlp_breakdown_ns(request.batch_size))
        return breakdown
