"""Common backend interface and result type."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.ssd.stats import IOStatistics
from repro.workloads.inputs import InferenceRequest

# Breakdown keys, matching Fig. 2's legend.
EMB_SSD = "emb-ssd"  # time inside the device
EMB_FS = "emb-fs"  # kernel I/O stack / interface transfers
EMB_OP = "emb-op"  # userspace SLS / pooling
BOT_MLP = "bot-mlp"
TOP_MLP = "top-mlp"
CONCAT = "concat"
OTHERS = "others"

ALL_COMPONENTS = (EMB_SSD, EMB_FS, EMB_OP, BOT_MLP, TOP_MLP, CONCAT, OTHERS)


@dataclass
class RunResult:
    """Outcome of running a request stream on one backend."""

    system: str
    outputs: np.ndarray
    total_ns: float
    inferences: int  # total samples across all requests
    requests: int
    breakdown: Dict[str, float] = field(default_factory=dict)
    stats: IOStatistics = field(default_factory=IOStatistics)

    @property
    def total_s(self) -> float:
        return self.total_ns / 1e9

    @property
    def qps(self) -> float:
        """Samples per second."""
        return self.inferences / self.total_s if self.total_ns else float("inf")

    @property
    def latency_per_request_ns(self) -> float:
        return self.total_ns / self.requests if self.requests else 0.0

    @property
    def embedding_ns(self) -> float:
        return sum(self.breakdown.get(k, 0.0) for k in (EMB_SSD, EMB_FS, EMB_OP))

    @property
    def mlp_ns(self) -> float:
        return sum(self.breakdown.get(k, 0.0) for k in (BOT_MLP, TOP_MLP, CONCAT))

    def breakdown_fractions(self) -> Dict[str, float]:
        total = sum(self.breakdown.values())
        if total == 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / total for k, v in self.breakdown.items()}

    def speedup_vs(self, other: "RunResult") -> float:
        """Throughput ratio (this backend over ``other``)."""
        return self.qps / other.qps


class InferenceBackend(ABC):
    """A system that can serve recommendation inference end to end."""

    name: str = "backend"

    def __init__(self, model, costs: HostCostModel = DEFAULT_HOST_COSTS) -> None:
        self.model = model
        self.costs = costs
        self.stats = IOStatistics()

    # ------------------------------------------------------------------
    # Shared numeric + cost helpers
    # ------------------------------------------------------------------
    def compute_outputs(self, request: InferenceRequest) -> np.ndarray:
        """Reference numeric forward pass (identical across backends)."""
        return self.model.forward(request.dense, request.sparse)

    def _mlp_breakdown_ns(self, batch: int) -> Dict[str, float]:
        """Host MLP cost split into bottom / top / concat components."""
        bottom_shapes = self.model.fc_shapes_bottom()
        top_shapes = self.model.fc_shapes_top()
        bottom_macs = sum(r * c for r, c in bottom_shapes)
        top_macs = sum(r * c for r, c in top_shapes)
        out: Dict[str, float] = {}
        if bottom_shapes:
            out[BOT_MLP] = self.costs.mlp_ns(bottom_macs, len(bottom_shapes), batch)
        out[TOP_MLP] = self.costs.mlp_ns(top_macs, len(top_shapes), batch)
        out[CONCAT] = self.costs.concat_ns()
        return out

    def _vectors_in(self, request: InferenceRequest) -> int:
        return sum(
            len(lookups) for sample in request.sparse for lookups in sample
        )

    # ------------------------------------------------------------------
    # The backend contract
    # ------------------------------------------------------------------
    @abstractmethod
    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        """Time breakdown (ns) for serving one batched request."""

    def run(
        self, requests: Sequence[InferenceRequest], compute: bool = True
    ) -> RunResult:
        """Serve a request stream; ``compute=False`` skips numerics
        (timing-only sweeps)."""
        total_breakdown: Dict[str, float] = {}
        outputs: List[np.ndarray] = []
        inferences = 0
        for request in requests:
            breakdown = self.request_cost_ns(request)
            for key, value in breakdown.items():
                total_breakdown[key] = total_breakdown.get(key, 0.0) + value
            if compute:
                outputs.append(self.compute_outputs(request))
            inferences += request.batch_size
            self.stats.record_useful(self._vectors_in(request) * self.model.tables.ev_size)
        return RunResult(
            system=self.name,
            outputs=np.concatenate(outputs) if outputs else np.empty((0, 1)),
            total_ns=sum(total_breakdown.values()),
            inferences=inferences,
            requests=len(requests),
            breakdown=total_breakdown,
            stats=self.stats,
        )
