"""SSD-S / SSD-M: the naive SSD deployment (Section III-B).

Embedding tables live in files on a commercial NVMe SSD; the customized
C++ SLS operator lseek/reads every vector through the file system, with
the OS page cache capped at a fraction of the tables' size (1/4 for
SSD-S, 1/2 for SSD-M).  Every cache miss drags in whole pages —
readahead included — which produces Fig. 3's ~26x read amplification.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import (
    BOT_MLP,
    CONCAT,
    EMB_FS,
    EMB_OP,
    EMB_SSD,
    TOP_MLP,
    InferenceBackend,
)
from repro.host.costs import DEFAULT_HOST_COSTS, HostCostModel
from repro.ssd.pagecache import LRUPageCache
from repro.workloads.inputs import InferenceRequest

PAGE_SIZE = 4096


class NaiveSSDBackend(InferenceBackend):
    """fileIO-based embedding lookups with a capped page cache."""

    def __init__(
        self,
        model,
        dram_fraction: float = 0.25,
        costs: HostCostModel = DEFAULT_HOST_COSTS,
        name: str = None,
    ) -> None:
        super().__init__(model, costs)
        if dram_fraction <= 0:
            raise ValueError("dram_fraction must be positive")
        self.dram_fraction = dram_fraction
        self.name = name or ("SSD-S" if dram_fraction <= 0.26 else "SSD-M")
        capacity_bytes = int(dram_fraction * model.tables.total_bytes)
        self.page_cache = LRUPageCache.with_byte_capacity(capacity_bytes, PAGE_SIZE)
        self._slots_per_page = PAGE_SIZE // model.tables.ev_size

    def _page_key(self, table_id: int, index: int) -> tuple:
        return (table_id, index // self._slots_per_page)

    def request_cost_ns(self, request: InferenceRequest) -> Dict[str, float]:
        ev_size = self.model.tables.ev_size
        fs_ns = 0.0
        ssd_ns = 0.0
        op_ns = 0.0
        pressure = self.costs.memory_pressure_factor(self.dram_fraction)
        for sample in request.sparse:
            for table_id, lookups in enumerate(sample):
                for index in lookups:
                    hit = self.page_cache.access(self._page_key(table_id, index))
                    fs_ns += self.costs.syscall_ns
                    if hit:
                        self.stats.cache_hits += 1
                        fs_ns += self.costs.pagecache_hit_ns * pressure
                    else:
                        self.stats.cache_misses += 1
                        fs_ns += self.costs.pagecache_miss_stack_ns * pressure
                        ssd_ns += (
                            self.costs.readahead_pages * self.costs.device_page_read_ns
                        )
                        self.stats.record_host_transfer(
                            read_bytes=self.costs.readahead_pages * PAGE_SIZE
                        )
                    op_ns += self.costs.sls_per_vector_ns
        op_ns += len(self.model.tables) * self.costs.framework_op_ns
        breakdown = {EMB_SSD: ssd_ns, EMB_FS: fs_ns, EMB_OP: op_ns}
        breakdown.update(self._mlp_breakdown_ns(request.batch_size))
        return breakdown
