"""repro — a full-system reproduction of RM-SSD (HPCA 2022).

RM-SSD offloads an entire deep-learning recommendation system into an
SSD with an FPGA-based in-storage computing engine.  This package
rebuilds the whole stack in simulation:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.ssd` — flash array, FTL, controllers, Table II timing
* :mod:`repro.embedding` — tables, on-SSD layout, EV translation, SLS
* :mod:`repro.models` — DLRM (RMC1/2/3), NCF, Wide&Deep in NumPy
* :mod:`repro.fpga` — kernel model, decomposition/composition, kernel
  search, resource model
* :mod:`repro.core` — the assembled RM-SSD device and host interfaces
* :mod:`repro.baselines` — every comparator system of the evaluation
* :mod:`repro.workloads` — synthetic Criteo-like traces and statistics
* :mod:`repro.host` — calibrated host cost model and pipelining
* :mod:`repro.analysis` — metrics and report rendering

Typical entry points: :func:`repro.models.build_model`,
:class:`repro.core.RMSSD`, :class:`repro.core.RMRuntime`, and the
backends in :mod:`repro.baselines`.
"""

__version__ = "1.0.0"
__all__ = ["__version__"]
