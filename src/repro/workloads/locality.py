"""Locality parameterization and measurement.

Fig. 14 sweeps the input-trace locality with a parameter K; the paper
gives the resulting cache hit ratios directly: K=0 -> 80%, K=1 -> 45%,
K=2 -> 30%, with the default synthetic trace at K=0.3 -> 65%.  We
interpolate the published points (log-linearly in K, which fits the
four published values well) so intermediate Ks are meaningful.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

from repro.ssd.pagecache import LRUPageCache

#: The paper's published (K, hit-ratio) pairs.
K_TO_HIT_RATIO: Dict[float, float] = {
    0.0: 0.80,
    0.3: 0.65,
    1.0: 0.45,
    2.0: 0.30,
}


def hit_ratio_for_k(k: float) -> float:
    """Hit ratio for a locality parameter K.

    Published points are returned exactly; other Ks interpolate
    piecewise-linearly between (and clamp beyond) them.
    """
    if k < 0:
        raise ValueError("K must be non-negative")
    points = sorted(K_TO_HIT_RATIO.items())
    if k in K_TO_HIT_RATIO:
        return K_TO_HIT_RATIO[k]
    if k <= points[0][0]:
        return points[0][1]
    if k >= points[-1][0]:
        return points[-1][1]
    for (k0, h0), (k1, h1) in zip(points, points[1:]):
        if k0 <= k <= k1:
            fraction = (k - k0) / (k1 - k0)
            return h0 + fraction * (h1 - h0)
    raise AssertionError("unreachable")


def measured_cache_hit_ratio(
    keys: Iterable[Hashable],
    capacity_entries: int,
    entry_size: int = 1,
) -> float:
    """Replay ``keys`` through an LRU cache and report its hit ratio.

    Used to verify the generator: with capacity covering the hot set,
    the measured ratio converges to the configured
    ``hot_access_fraction``.
    """
    cache = LRUPageCache(capacity_entries, entry_size)
    for key in keys:
        cache.access(key)
    return cache.hit_ratio
