"""Workloads: synthetic traces, locality control, input generation.

The paper synthesizes input traces "based on the locality of the public
Kaggle Criteo Ad Competition dataset by applying the method in
[RecSSD]" and sweeps locality with a parameter K (Fig. 14: K=0, 0.3, 1,
2 give 80%, 65%, 45%, 30% hit ratios).  This package reproduces that:
a hot/cold mixture generator whose hot-access fraction is the target
hit ratio, plus the statistics of Fig. 4.
"""

from repro.workloads.arrivals import (
    ArrivalTrace,
    batch_arrivals,
    diurnal_trace,
    flash_crowd_trace,
    merge_traces,
    poisson_trace,
)
from repro.workloads.inputs import InferenceRequest, RequestGenerator
from repro.workloads.locality import (
    K_TO_HIT_RATIO,
    hit_ratio_for_k,
    measured_cache_hit_ratio,
)
from repro.workloads.stats import TraceStatistics
from repro.workloads.tracegen import TraceGenerator

__all__ = [
    "ArrivalTrace",
    "InferenceRequest",
    "K_TO_HIT_RATIO",
    "RequestGenerator",
    "TraceGenerator",
    "TraceStatistics",
    "batch_arrivals",
    "diurnal_trace",
    "flash_crowd_trace",
    "hit_ratio_for_k",
    "measured_cache_hit_ratio",
    "merge_traces",
    "poisson_trace",
]
