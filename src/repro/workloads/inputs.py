"""Batched inference request generation (dense + sparse inputs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.models.configs import ModelConfig
from repro.workloads.tracegen import TraceGenerator


@dataclass
class InferenceRequest:
    """One batched request: dense features plus sparse lookups."""

    dense: Optional[np.ndarray]  # batch x dense_dim (None if model has none)
    sparse: List[List[List[int]]]  # [sample][table][lookups]

    @property
    def batch_size(self) -> int:
        return len(self.sparse)


class RequestGenerator:
    """Generates full inference requests for a model configuration."""

    def __init__(
        self,
        config: ModelConfig,
        rows_per_table: int,
        hot_access_fraction: float = 0.65,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.rows_per_table = rows_per_table
        self.trace = TraceGenerator(
            num_tables=config.num_tables,
            rows_per_table=rows_per_table,
            lookups_per_table=config.lookups_per_table,
            hot_access_fraction=hot_access_fraction,
            seed=seed,
        )
        self._rng = np.random.default_rng(seed + 1)

    def request(self, batch_size: int) -> InferenceRequest:
        """One batched request of ``batch_size`` samples."""
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        sparse = self.trace.generate(batch_size)
        if self.config.dense_dim > 0:
            dense = self._rng.standard_normal(
                (batch_size, self.config.dense_dim)
            ).astype(np.float32)
        else:
            dense = None
        return InferenceRequest(dense=dense, sparse=sparse)

    def requests(self, count: int, batch_size: int) -> List[InferenceRequest]:
        """``count`` batched requests (the paper's "1K inferences")."""
        return [self.request(batch_size) for _ in range(count)]
