"""Trace persistence.

Benchmark runs should be replayable: a trace generated once can be
saved and re-served byte-identically later (or on another machine),
the way the paper reuses one synthetic Criteo-derived trace across all
its experiments.  The format is JSON-lines — one inference's sparse
input per line — with a small header describing the generator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

FORMAT = "rmssd-trace-v1"


def save_trace(
    path,
    trace: Sequence[Sequence[Sequence[int]]],
    metadata: Optional[Dict] = None,
) -> Path:
    """Write a trace (``[inference][table][lookups]``) as JSONL."""
    path = Path(path)
    if not trace:
        raise ValueError("empty trace")
    tables = len(trace[0])
    with path.open("w") as handle:
        header = {"format": FORMAT, "tables": tables, "inferences": len(trace)}
        if metadata:
            header["metadata"] = metadata
        handle.write(json.dumps(header) + "\n")
        for sample in trace:
            if len(sample) != tables:
                raise ValueError("inconsistent table count across samples")
            handle.write(json.dumps([list(map(int, l)) for l in sample]) + "\n")
    return path


def load_trace(path) -> tuple:
    """Read a trace; returns ``(trace, header)``."""
    path = Path(path)
    with path.open() as handle:
        first = handle.readline()
        if not first:
            raise ValueError("empty trace file")
        header = json.loads(first)
        if header.get("format") != FORMAT:
            raise ValueError(f"not a trace file: format={header.get('format')!r}")
        trace: List[List[List[int]]] = []
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            sample = json.loads(line)
            if len(sample) != header["tables"]:
                raise ValueError(
                    f"line {line_no}: expected {header['tables']} tables"
                )
            trace.append(sample)
    if len(trace) != header["inferences"]:
        raise ValueError(
            f"header promises {header['inferences']} inferences, "
            f"file holds {len(trace)}"
        )
    return trace, header
