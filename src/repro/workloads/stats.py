"""Trace statistics (Fig. 4).

Fig. 4 characterizes the Criteo-derived trace with an occurrence
histogram and two headline numbers: indices accessed exactly once make
up 84.74% of distinct indices, and the 10,000 most frequent indices
receive 59.2% of all lookups.  :class:`TraceStatistics` computes the
same quantities for any trace so benchmarks can print the comparison.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass
class TraceStatistics:
    """Occurrence statistics of a flat index trace."""

    total_lookups: int
    total_indices: int
    occurrence_counts: Counter  # occurrence -> number of indices

    @classmethod
    def from_indices(cls, indices: Sequence[int]) -> "TraceStatistics":
        indices = np.asarray(indices)
        if indices.size == 0:
            raise ValueError("empty trace")
        per_index = Counter(indices.tolist())
        occurrence_counts = Counter(per_index.values())
        return cls(
            total_lookups=int(indices.size),
            total_indices=len(per_index),
            occurrence_counts=occurrence_counts,
        )

    # ------------------------------------------------------------------
    # Fig. 4 headline numbers
    # ------------------------------------------------------------------
    def unique_access_fraction(self) -> float:
        """Fraction of distinct indices accessed exactly once
        (the paper's 84.74%)."""
        return self.occurrence_counts.get(1, 0) / self.total_indices

    def top_k_share(self, k: int) -> float:
        """Fraction of all lookups landing on the k hottest indices
        (the paper's 59.2% for k = 10,000)."""
        if k < 1:
            raise ValueError("k must be positive")
        # Occurrences sorted hottest first.
        occurrences = sorted(self.occurrence_counts.items(), reverse=True)
        taken = 0
        lookups = 0
        for occurrence, count in occurrences:
            use = min(count, k - taken)
            lookups += use * occurrence
            taken += use
            if taken >= k:
                break
        return lookups / self.total_lookups

    def occurrence_table(self, top: int = 10) -> Dict[int, int]:
        """Fig. 4's right-hand table: occurrence -> #indices."""
        return {
            occurrence: self.occurrence_counts[occurrence]
            for occurrence in sorted(self.occurrence_counts)[:top]
        }

    def histogram(self, bins: int = 50) -> np.ndarray:
        """Counts of indices per occurrence bin (for plotting)."""
        occurrences = np.array(
            [occ for occ, n in self.occurrence_counts.items() for _ in range(n)]
        )
        counts, _ = np.histogram(occurrences, bins=bins)
        return counts

    def summary(self) -> str:
        return (
            f"lookups={self.total_lookups}, distinct={self.total_indices}, "
            f"unique-once={self.unique_access_fraction():.2%}, "
            f"top-1%-share={self.top_k_share(max(1, self.total_indices // 100)):.2%}"
        )
