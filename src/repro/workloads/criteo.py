"""Synthetic Criteo-format dataset (file substrate).

The paper's traces derive from the public Kaggle Criteo Ad Competition
dataset, which we cannot ship.  This module generates and parses files
in the same TSV format — ``label <tab> 13 integer features <tab> 26
hashed categorical features`` — with the categorical columns drawn
from the same hot/cold mixture the trace generator uses, so a file's
access statistics match Fig. 4's shape.

This closes the loop for downstream users: the same ingestion code
that would read real Criteo data runs against the synthetic files.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.workloads.inputs import InferenceRequest

NUM_DENSE = 13
NUM_SPARSE = 26


def generate_criteo_file(
    path,
    rows: int,
    vocab_size: int = 100_000,
    hot_access_fraction: float = 0.65,
    hot_set_fraction: float = 0.001,
    seed: int = 0,
) -> Path:
    """Write a synthetic Criteo-format TSV of ``rows`` samples.

    Dense columns are non-negative integers with a heavy tail (like
    real count features); categorical columns are 8-hex-digit hashes
    drawn from a hot/cold mixture per column.
    """
    if rows < 1:
        raise ValueError("rows must be positive")
    path = Path(path)
    rng = np.random.default_rng(seed)
    hot_size = max(1, int(vocab_size * hot_set_fraction))
    hot_sets = [
        rng.choice(vocab_size, size=hot_size, replace=False)
        for _ in range(NUM_SPARSE)
    ]
    ranks = np.arange(1, hot_size + 1, dtype=np.float64)
    weights = ranks ** -1.05
    weights /= weights.sum()

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        for _ in range(rows):
            label = int(rng.random() < 0.25)  # ~CTR-like positive rate
            dense = [
                int(v)
                for v in np.minimum(rng.lognormal(1.0, 1.5, NUM_DENSE), 1e6)
            ]
            sparse = []
            for column in range(NUM_SPARSE):
                if rng.random() < hot_access_fraction:
                    value = int(rng.choice(hot_sets[column], p=weights))
                else:
                    value = int(rng.integers(0, vocab_size))
                sparse.append(f"{value:08x}")
            writer.writerow([label, *dense, *sparse])
    return path


@dataclass
class CriteoSample:
    label: int
    dense: np.ndarray  # NUM_DENSE float32 (log-transformed)
    sparse: List[int]  # NUM_SPARSE raw category hashes (ints)


class CriteoDataset:
    """Parsed Criteo-format file with model-ready batching."""

    def __init__(self, samples: Sequence[CriteoSample]) -> None:
        if not samples:
            raise ValueError("empty dataset")
        self.samples = list(samples)

    @classmethod
    def load(cls, path, limit: Optional[int] = None) -> "CriteoDataset":
        samples: List[CriteoSample] = []
        with Path(path).open(newline="") as handle:
            reader = csv.reader(handle, delimiter="\t")
            for line_no, row in enumerate(reader):
                if limit is not None and len(samples) >= limit:
                    break
                if len(row) != 1 + NUM_DENSE + NUM_SPARSE:
                    raise ValueError(
                        f"line {line_no + 1}: expected "
                        f"{1 + NUM_DENSE + NUM_SPARSE} columns, got {len(row)}"
                    )
                label = int(row[0])
                dense_raw = np.array(
                    [float(v) if v else 0.0 for v in row[1 : 1 + NUM_DENSE]],
                    dtype=np.float32,
                )
                # The standard Criteo transform: log(1 + x).
                dense = np.log1p(np.maximum(dense_raw, 0.0)).astype(np.float32)
                sparse = [int(v, 16) for v in row[1 + NUM_DENSE :]]
                samples.append(CriteoSample(label=label, dense=dense, sparse=sparse))
        return cls(samples)

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------
    # Model-facing conversion
    # ------------------------------------------------------------------
    def to_requests(
        self,
        batch_size: int,
        num_tables: int,
        rows_per_table: int,
        dense_dim: Optional[int] = None,
        lookups_per_table: int = 1,
    ) -> List[InferenceRequest]:
        """Convert to inference requests for a model configuration.

        Each of the model's ``num_tables`` tables maps to a Criteo
        categorical column (cycling when the model has more than 26);
        hashes fold into the table's index space.  Multi-lookup models
        pool the categories of ``lookups_per_table`` consecutive
        samples per table, the multi-hot synthesis RecSSD introduced.
        """
        if batch_size < 1 or lookups_per_table < 1:
            raise ValueError("batch and lookups must be positive")
        dense_dim = dense_dim if dense_dim is not None else NUM_DENSE
        requests: List[InferenceRequest] = []
        cursor = 0
        total = len(self.samples)
        stride = lookups_per_table

        def dense_vector(sample: CriteoSample) -> np.ndarray:
            if dense_dim <= NUM_DENSE:
                return sample.dense[:dense_dim]
            reps = -(-dense_dim // NUM_DENSE)
            return np.tile(sample.dense, reps)[:dense_dim]

        while cursor + batch_size * stride <= total:
            dense_rows = []
            sparse_rows = []
            for b in range(batch_size):
                window = self.samples[
                    cursor + b * stride : cursor + (b + 1) * stride
                ]
                dense_rows.append(dense_vector(window[0]))
                sample_sparse = []
                for table in range(num_tables):
                    column = table % NUM_SPARSE
                    sample_sparse.append(
                        [s.sparse[column] % rows_per_table for s in window]
                    )
                sparse_rows.append(sample_sparse)
            requests.append(
                InferenceRequest(
                    dense=np.stack(dense_rows).astype(np.float32),
                    sparse=sparse_rows,
                )
            )
            cursor += batch_size * stride
        if not requests:
            raise ValueError(
                f"dataset too small: {total} samples for batch {batch_size} "
                f"x {stride} lookups"
            )
        return requests

    def column_indices(self, column: int, rows_per_table: int) -> np.ndarray:
        """One categorical column folded to an index space (for trace
        statistics)."""
        if not 0 <= column < NUM_SPARSE:
            raise ValueError("column out of range")
        return np.array(
            [s.sparse[column] % rows_per_table for s in self.samples],
            dtype=np.int64,
        )
