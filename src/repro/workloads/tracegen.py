"""Synthetic embedding lookup trace generator.

Models the Criteo-derived access pattern of Fig. 4: a small *hot set*
of indices receives a configurable fraction of all lookups (Zipf-
weighted within the set), while the remaining lookups scatter almost
uniformly over the full index space — which is why "simply increasing
the cache capacity can only marginally improve the performance" (the
cold tail is near-random and mostly unique).

``hot_access_fraction`` is the paper's *hit ratio*: a cache big enough
for the hot set converges to exactly this hit rate, which is how the
Fig. 14 locality sweep is parameterized.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class TraceGenerator:
    """Hot/cold Zipf mixture over one model's tables."""

    def __init__(
        self,
        num_tables: int,
        rows_per_table: int,
        lookups_per_table: int,
        hot_access_fraction: float = 0.65,
        hot_set_fraction: float = 0.001,
        zipf_exponent: float = 1.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= hot_access_fraction <= 1.0:
            raise ValueError("hot_access_fraction must be in [0, 1]")
        if not 0.0 < hot_set_fraction <= 1.0:
            raise ValueError("hot_set_fraction must be in (0, 1]")
        if num_tables < 1 or rows_per_table < 1 or lookups_per_table < 1:
            raise ValueError("table/lookup counts must be positive")
        self.num_tables = num_tables
        self.rows_per_table = rows_per_table
        self.lookups_per_table = lookups_per_table
        self.hot_access_fraction = hot_access_fraction
        self.hot_set_size = max(1, int(rows_per_table * hot_set_fraction))
        self.zipf_exponent = zipf_exponent
        self._rng = np.random.default_rng(seed)
        # One hot set per table: a random sample of its index space,
        # with Zipf weights (rank 1 is hottest), like Fig. 4's head.
        self._hot_sets: List[np.ndarray] = []
        self._hot_weights: Optional[np.ndarray] = None
        for _ in range(num_tables):
            self._hot_sets.append(
                self._rng.choice(rows_per_table, size=self.hot_set_size, replace=False)
            )
        ranks = np.arange(1, self.hot_set_size + 1, dtype=np.float64)
        weights = ranks ** (-zipf_exponent)
        self._hot_weights = weights / weights.sum()

    def _draw_table(self, table_id: int, count: int) -> np.ndarray:
        hot_mask = self._rng.random(count) < self.hot_access_fraction
        n_hot = int(hot_mask.sum())
        out = np.empty(count, dtype=np.int64)
        if n_hot:
            out[hot_mask] = self._rng.choice(
                self._hot_sets[table_id], size=n_hot, p=self._hot_weights
            )
        n_cold = count - n_hot
        if n_cold:
            out[~hot_mask] = self._rng.integers(0, self.rows_per_table, size=n_cold)
        return out

    def sample(self) -> List[List[int]]:
        """One inference's sparse input: per table, its lookup indices."""
        return [
            self._draw_table(t, self.lookups_per_table).tolist()
            for t in range(self.num_tables)
        ]

    def generate(self, num_inferences: int) -> List[List[List[int]]]:
        """A trace of ``num_inferences`` sparse inputs."""
        return [self.sample() for _ in range(num_inferences)]

    def flat_indices(self, trace: Sequence[Sequence[Sequence[int]]]) -> np.ndarray:
        """All ``(table_id, index)`` pairs of a trace, flattened in
        lookup order, encoded as ``table_id * rows + index``."""
        flat = []
        for sample in trace:
            for table_id, indices in enumerate(sample):
                for index in indices:
                    flat.append(table_id * self.rows_per_table + index)
        return np.asarray(flat, dtype=np.int64)
