"""Calibrated host cost model.

All host-side time in the reproduction flows through this one
dataclass, so every calibration constant is in one place with its
provenance.  The reference points come from the paper's own
measurements on the AWS F1 host (8-vCPU Xeon E5-2686 v4):

* **DRAM-only DLRM** (Fig. 2): ~1.4 ms per RMC1 batch-1 inference,
  dominated by framework op dispatch (~15 ops), growing sub-linearly
  with batch (vectorization).
* **SSD-S fileIO path** (Fig. 2/3): ~45 us per embedding lookup at
  batch 1 — a syscall pair plus, on a page-cache miss, the fs/driver
  stack and a ~20 us device page read, with readahead doubling the
  fetched pages (which is what pushes Fig. 3's read amplification to
  ~26x rather than the raw 32x page/vector ratio times the miss rate).
* **EMB-MMIO** (Fig. 10a): bypassing the kernel I/O stack leaves the
  PCIe page transfer plus the device read, pipelined across lookups.

The model is deliberately *simple* — per-operation constants, no
queueing — because the host is never the subsystem under study; it
only needs to place the baselines correctly relative to the device.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostCostModel:
    """Per-operation host costs, in nanoseconds unless noted."""

    # -- Framework (PyTorch-style) costs --------------------------------
    #: One framework operator dispatch (SLS call, FC layer, concat).
    framework_op_ns: float = 90_000.0
    #: Vectorized gather+sum per embedding vector once inside the op.
    sls_per_vector_ns: float = 25.0
    #: Batched fp32 GEMM throughput of the 8-vCPU host.
    cpu_gflops: float = 20.0

    # -- File-backed I/O path (SSD-S / SSD-M) ---------------------------
    #: lseek+read syscall pair per lookup.
    syscall_ns: float = 3_000.0
    #: Page-cache hit: lookup + 4 KB copy to userspace.
    pagecache_hit_ns: float = 2_000.0
    #: Page-cache miss: fs + block layer + driver + IRQ (excludes the
    #: device time itself).
    pagecache_miss_stack_ns: float = 20_000.0
    #: Pages actually fetched per miss (readahead pollution).
    readahead_pages: int = 2
    #: Extra I/O-stack slowdown under memory pressure, per unit of
    #: missing DRAM fraction (SSD-S runs with 1/4 of the tables' size).
    memory_pressure_slope: float = 0.8

    # -- Host-visible device constants ----------------------------------
    #: Device-internal 4 KB page read (Table II's 20 us).
    device_page_read_ns: float = 20_000.0
    #: PCIe effective bandwidth for bulk transfers (bytes per ns).
    pcie_bytes_per_ns: float = 3.2

    # ------------------------------------------------------------------
    # Composite host operations
    # ------------------------------------------------------------------
    def memory_pressure_factor(self, dram_fraction: float) -> float:
        """I/O-stack multiplier when only ``dram_fraction`` of the
        embedding tables' size is available as page cache."""
        if not 0.0 <= dram_fraction:
            raise ValueError("dram_fraction must be non-negative")
        missing = max(0.0, 1.0 - min(dram_fraction, 1.0))
        return 1.0 + self.memory_pressure_slope * missing

    def sls_op_ns(self, tables: int, total_vectors: int) -> float:
        """Host SparseLengthSum over all tables (the DRAM path)."""
        return tables * self.framework_op_ns + total_vectors * self.sls_per_vector_ns

    def mlp_ns(self, macs_per_sample: int, num_layers: int, batch: int) -> float:
        """Host MLP forward: per-layer dispatch + batched GEMM time."""
        flops = 2.0 * macs_per_sample * batch
        return num_layers * self.framework_op_ns + flops / self.cpu_gflops

    def concat_ns(self) -> float:
        """Feature-interaction concatenation (one framework op)."""
        return self.framework_op_ns

    def fileio_lookup_ns(self, is_miss: bool, dram_fraction: float) -> float:
        """One embedding lookup through the file system (SSD-S path)."""
        pressure = self.memory_pressure_factor(dram_fraction)
        if is_miss:
            stack = self.pagecache_miss_stack_ns * pressure
            device = self.readahead_pages * self.device_page_read_ns
            return self.syscall_ns + stack + device
        return self.syscall_ns + self.pagecache_hit_ns * pressure

    def pcie_transfer_ns(self, nbytes: int) -> float:
        return nbytes / self.pcie_bytes_per_ns


DEFAULT_HOST_COSTS = HostCostModel()
