"""Host-side models: CPU/framework/I/O-stack costs and the runtime."""

from repro.host.autoscale import Autoscaler, ScalingEvent
from repro.host.cluster_serving import (
    BALANCERS,
    ClusterLoadPoint,
    ClusterServingSimulator,
)
from repro.host.costs import HostCostModel
from repro.host.runtime import HostPipeline

__all__ = [
    "Autoscaler",
    "BALANCERS",
    "ClusterLoadPoint",
    "ClusterServingSimulator",
    "HostCostModel",
    "HostPipeline",
    "ScalingEvent",
]
