"""Host-side models: CPU/framework/I/O-stack costs and the runtime."""

from repro.host.costs import HostCostModel
from repro.host.runtime import HostPipeline

__all__ = ["HostCostModel", "HostPipeline"]
