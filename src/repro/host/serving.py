"""Open-loop serving study (SLA analysis).

The paper's very first sentence: recommendation systems must "meet the
strict service level agreement requirements".  This module turns the
reproduction into an SLA tool: offer a Poisson query stream to a
serving pipeline, measure the latency distribution, and search for the
highest sustainable load under a tail-latency SLA — the
DeepRecSys-style question the paper's motivation implies but its
evaluation (closed-loop throughput) does not answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import percentile
from repro.core.pipeline_sim import PipelineSimulator
from repro.fpga.compose import StageTimes


@dataclass(frozen=True)
class WindowStat:
    """Latencies of the batches that *completed* inside one window."""

    index: int
    start_ns: float
    #: Latencies of the window's completions, in completion order.
    latencies_ns: tuple

    @property
    def count(self) -> int:
        return len(self.latencies_ns)

    def percentile(self, q: float) -> float:
        """The q-th latency percentile within this window."""
        return percentile(self.latencies_ns, q)


@dataclass(frozen=True)
class LoadPoint:
    """Latency distribution at one offered load."""

    offered_qps: float
    achieved_qps: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    mean_ns: float
    #: Mean wait before the embedding stage started serving — the
    #: queueing component of the latency (service time is the rest).
    mean_queue_ns: float = 0.0
    #: Raw per-batch latencies behind the pinned percentiles, so SLA
    #: checks can use any quantile (empty for hand-built points).
    latencies_ns: tuple = ()
    #: Per-window latency summaries (simulated-clock windows keyed by
    #: completion instant), populated when the simulator was built
    #: with ``window_ns=`` — the run aggregate can hide a bad window,
    #: these don't.
    windows: tuple = ()

    def worst_window(self, quantile: float = 99.0):
        """The :class:`WindowStat` with the highest ``quantile``-th
        latency percentile (earliest wins ties); None when the point
        carries no windows."""
        worst = None
        worst_value = -1.0
        for window in self.windows:
            value = window.percentile(quantile)
            if value > worst_value:
                worst, worst_value = window, value
        return worst

    def meets_sla(self, sla_ns: float, quantile: float = 99.0) -> bool:
        """Whether the ``quantile``-th latency percentile is within SLA.

        Any quantile in [0, 100] works: 50/95/99 read the pinned
        fields, others are computed from :attr:`latencies_ns` when
        present and interpolated over the pinned points otherwise.
        """
        if not 0.0 <= quantile <= 100.0:
            raise ValueError("quantile must be in [0, 100]")
        pinned = {50.0: self.p50_ns, 95.0: self.p95_ns, 99.0: self.p99_ns}
        value = pinned.get(float(quantile))
        if value is None:
            if self.latencies_ns:
                value = percentile(self.latencies_ns, quantile)
            else:
                value = float(
                    np.interp(
                        quantile,
                        (50.0, 95.0, 99.0),
                        (self.p50_ns, self.p95_ns, self.p99_ns),
                    )
                )
        return value <= sla_ns


@dataclass(frozen=True)
class SLASearchResult:
    """Outcome of :meth:`ServingSimulator.sla_search`.

    ``points`` keeps every :class:`LoadPoint` the bisection evaluated
    (the trickle probe first, then the probes in evaluation order), so
    callers can plot the latency-vs-load trajectory without
    re-simulating the same offered loads.
    """

    max_qps: float
    points: Tuple[LoadPoint, ...]


class ServingSimulator:
    """Poisson arrivals into a 3-stage serving pipeline."""

    def __init__(
        self,
        times: StageTimes,
        cycle_ns: float = 5.0,
        nbatch: int = 1,
        seed: int = 0,
        tracer=None,
        metrics=None,
        profiler=None,
        window_ns: Optional[float] = None,
        critpath=None,
    ) -> None:
        self.pipeline = PipelineSimulator.from_stage_times(
            times, cycle_ns, tracer=tracer, profiler=profiler,
            metrics=metrics, critpath=critpath,
        )
        self.nbatch = max(1, nbatch)
        self.saturation_qps = times.throughput_qps(1e9 / cycle_ns)
        self._seed = seed
        #: Optional MetricsRegistry, observed by the pipeline itself
        #: (both DES and fast paths): per-batch ``serving.latency_ns``
        #: / ``serving.queue_ns`` observations and the
        #: ``serving.batches`` counter, stamped at completion time so
        #: a windowed registry builds per-window series.
        self.metrics = metrics
        if window_ns is not None and window_ns <= 0:
            raise ValueError("window width must be positive")
        #: Fixed window width for LoadPoint.windows summaries (None
        #: disables them); independent of the registry's window so SLA
        #: tooling can summarize without a registry attached.
        self.window_ns = window_ns
        #: Optional CritPathCollector (repro.obs.critpath), fed by the
        #: pipeline with per-request critical-path breakdowns —
        #: identically on both paths, like the metrics registry.
        self.critpath = critpath

    def offered_load(
        self,
        qps: float,
        queries: int = 200,
        seed: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> LoadPoint:
        """Latency distribution at an offered Poisson load of ``qps``.

        Queries arrive individually; the device serves them in batches
        of ``nbatch`` (the paper's small-batch partitioning), so the
        batch arrival process is the nbatch-fold thinning of the query
        process.

        ``seed=None`` (the default) redraws the constructor seed every
        call — common random numbers, so every point of a sweep sees
        the same gap pattern and curves differ only through the load.
        Pass an explicit ``seed`` for replicate runs that need
        independent arrival processes.  ``fast`` is forwarded to
        :meth:`PipelineSimulator.run` (None follows ``RMSSD_FASTPATH``).
        """
        if qps <= 0:
            raise ValueError("offered load must be positive")
        if queries < 1:
            raise ValueError("need at least one query")
        rng = np.random.default_rng(self._seed if seed is None else seed)
        # Serve every offered query: full batches plus one short batch
        # for the remainder, so the achieved total equals ``queries``.
        full, remainder = divmod(queries, self.nbatch)
        sizes = [self.nbatch] * full
        if remainder:
            sizes.append(remainder)
        # Inter-arrival of a size-k batch: Erlang(k, qps) — the k-fold
        # thinning of the Poisson query process.  The first gap is the
        # wait for the first batch to fill and is kept: clamping batch
        # 0 to t=0 deterministically biased window-0 stats and
        # short-run tails.
        gaps = rng.gamma(shape=np.asarray(sizes, dtype=float), scale=1e9 / qps)
        arrivals = np.cumsum(gaps)
        result = self.pipeline.run(
            len(sizes), arrival_times_ns=list(arrivals), fast=fast
        )
        # Inlined latency_ns / queue_ns: this comprehension runs once
        # per batch per sweep point, where property dispatch is the
        # single biggest cost of the fast replay path.  The metrics
        # registry (when attached) was already fed by the pipeline's
        # _observe_completions — identically on both paths.
        latencies = [r.top_done_ns - r.arrival_ns for r in result.records]
        queue_waits = [r.emb_start_ns - r.arrival_ns for r in result.records]
        elapsed_s = result.makespan_ns / 1e9
        ordered = sorted(latencies)
        return LoadPoint(
            offered_qps=qps,
            achieved_qps=queries / elapsed_s if elapsed_s else 0.0,
            p50_ns=percentile(ordered, 50, presorted=True),
            p95_ns=percentile(ordered, 95, presorted=True),
            p99_ns=percentile(ordered, 99, presorted=True),
            mean_ns=sum(latencies) / len(latencies),
            mean_queue_ns=sum(queue_waits) / len(queue_waits),
            latencies_ns=tuple(latencies),
            windows=self._window_stats(result.records, latencies),
        )

    def _window_stats(self, records, latencies) -> tuple:
        """Group each batch's latency into the window containing its
        completion instant (matching the windowed-registry semantics
        of :mod:`repro.obs.timeseries`)."""
        width = self.window_ns
        if width is None:
            return ()
        grouped: dict = {}
        for record, latency in zip(records, latencies):
            index = int(record.top_done_ns // width)
            grouped.setdefault(index, []).append(latency)
        return tuple(
            WindowStat(
                index=index,
                start_ns=index * width,
                latencies_ns=tuple(grouped[index]),
            )
            for index in sorted(grouped)
        )

    def load_sweep(
        self, fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.9, 0.95),
        queries: int = 200,
        seed: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> List[LoadPoint]:
        """Latency-vs-load curve as fractions of the saturation QPS."""
        return [
            self.offered_load(
                self.saturation_qps * fraction, queries, seed=seed, fast=fast
            )
            for fraction in fractions
        ]

    def sla_search(
        self,
        sla_ns: float,
        quantile: float = 99.0,
        queries: int = 200,
        tolerance: float = 0.02,
        seed: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> SLASearchResult:
        """Bisect for the largest offered load meeting the SLA.

        Returns the sustained QPS *and* every load point the search
        evaluated (trickle probe included), in evaluation order;
        ``max_qps`` is 0.0 if even a trickle misses the SLA (the
        unloaded latency already exceeds it).
        """
        low, high = 0.0, self.saturation_qps
        trickle = self.offered_load(
            max(1e-3, 0.01 * high), queries=queries, seed=seed, fast=fast
        )
        points = [trickle]
        if not trickle.meets_sla(sla_ns, quantile):
            return SLASearchResult(max_qps=0.0, points=tuple(points))
        while (high - low) > tolerance * self.saturation_qps:
            mid = (low + high) / 2
            point = self.offered_load(mid, queries=queries, seed=seed, fast=fast)
            points.append(point)
            if point.meets_sla(sla_ns, quantile):
                low = mid
            else:
                high = mid
        return SLASearchResult(max_qps=low, points=tuple(points))

    def max_qps_under_sla(
        self,
        sla_ns: float,
        quantile: float = 99.0,
        queries: int = 200,
        tolerance: float = 0.02,
        seed: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> float:
        """Largest offered load whose latency quantile meets the SLA.

        Convenience wrapper over :meth:`sla_search` for callers that
        only need the number; the search's evaluated points are on
        ``sla_search(...).points``.
        """
        return self.sla_search(
            sla_ns,
            quantile=quantile,
            queries=queries,
            tolerance=tolerance,
            seed=seed,
            fast=fast,
        ).max_qps
