"""Deadline-aware dynamic batching (extension).

RM-SSD serves small device batches; the host decides how to group an
incoming query stream into them.  Batching raises device efficiency
(up to ``II`` samples ride the kernel pipeline free, and embedding
reads amortize fixed costs) but holding queries to fill a batch adds
queueing delay — the classic trade-off the DeepRecSys line of work
schedules around.

:class:`DynamicBatcher` implements the standard policy: dispatch when
either ``max_batch`` queries are waiting or the oldest has waited
``max_wait_ns``.  Batches then flow through the three-stage RM-SSD
pipeline with batch-size-dependent stage times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Sequence

from repro.analysis.metrics import percentile
from repro.obs import names
from repro.fpga.compose import StageTimes
from repro.sim import Server, Simulator

#: Maps a batch size to its (emb_ns, bot_ns, top_ns) stage times.
StageTimesFn = Callable[[int], tuple]


@dataclass
class BatchingResult:
    """Outcome of one batching-policy run."""

    query_latencies_ns: List[float]
    batch_sizes: List[int]
    makespan_ns: float

    @property
    def queries(self) -> int:
        return len(self.query_latencies_ns)

    @property
    def qps(self) -> float:
        return self.queries / (self.makespan_ns / 1e9) if self.makespan_ns else 0.0

    @property
    def mean_batch_size(self) -> float:
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def latency_percentile_ns(self, q: float) -> float:
        return percentile(self.query_latencies_ns, q)


class DynamicBatcher:
    """Batch-or-deadline dispatch into a 3-stage pipeline."""

    def __init__(
        self,
        stage_times_fn: StageTimesFn,
        max_batch: int,
        max_wait_ns: float,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ns < 0:
            raise ValueError("max_wait_ns must be non-negative")
        self.stage_times_fn = stage_times_fn
        self.max_batch = max_batch
        self.max_wait_ns = max_wait_ns

    @classmethod
    def from_engine(cls, mlp_engine, max_batch: int, max_wait_ns: float):
        """Build from an :class:`MLPAccelerationEngine` (stage times in
        engine cycles at 5 ns)."""

        def fn(nbatch: int) -> tuple:
            times: StageTimes = mlp_engine.stage_times_for(nbatch)
            cycle = mlp_engine.settings.cycle_ns
            return (times.temb * cycle, times.tbot * cycle, times.ttop * cycle)

        return cls(fn, max_batch, max_wait_ns)

    # ------------------------------------------------------------------
    def run(self, arrival_times_ns: Sequence[float]) -> BatchingResult:
        """Serve queries arriving at the given (sorted) instants."""
        arrivals = list(arrival_times_ns)
        if not arrivals:
            raise ValueError("no queries")
        if arrivals != sorted(arrivals):
            raise ValueError("arrival times must be sorted")

        sim = Simulator()
        emb_server = Server(sim, names.STAGE_EMB)
        bot_server = Server(sim, names.STAGE_BOT)
        top_server = Server(sim, names.STAGE_TOP)
        latencies: List[float] = [0.0] * len(arrivals)
        batch_sizes: List[int] = []

        def serve_batch(members: List[int]) -> Generator:
            emb_ns, bot_ns, top_ns = self.stage_times_fn(len(members))

            def emb_stage() -> Generator:
                yield emb_server.serve(emb_ns)

            def bot_stage() -> Generator:
                if bot_ns > 0:
                    yield bot_server.serve(bot_ns)

            yield sim.all_of([sim.process(emb_stage()), sim.process(bot_stage())])
            if top_ns > 0:
                yield top_server.serve(top_ns)
            for query in members:
                latencies[query] = sim.now - arrivals[query]

        def batcher() -> Generator:
            index = 0
            while index < len(arrivals):
                if sim.now < arrivals[index]:
                    yield sim.timeout(arrivals[index] - sim.now)
                deadline = arrivals[index] + self.max_wait_ns
                take = 1
                while (
                    take < self.max_batch
                    and index + take < len(arrivals)
                    and arrivals[index + take] <= deadline
                ):
                    take += 1
                if take == self.max_batch:
                    dispatch_at = max(sim.now, arrivals[index + take - 1])
                else:
                    dispatch_at = max(sim.now, deadline)
                if sim.now < dispatch_at:
                    yield sim.timeout(dispatch_at - sim.now)
                members = list(range(index, index + take))
                batch_sizes.append(take)
                sim.process(serve_batch(members))
                index += take

        sim.process(batcher())
        sim.run()
        return BatchingResult(
            query_latencies_ns=latencies,
            batch_sizes=batch_sizes,
            makespan_ns=sim.now,
        )
