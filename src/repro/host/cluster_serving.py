"""Open-loop cluster serving: arrival traces, balancers, autoscaling.

:mod:`repro.host.serving` answers the single-device SLA question; this
module scales it out: an :class:`~repro.workloads.arrivals.ArrivalTrace`
of per-query instants flows through a pluggable load balancer into a
fleet of replica pipelines, optionally under the closed-loop
:class:`~repro.host.autoscale.Autoscaler`.

Structure of one run (:meth:`ClusterServingSimulator.serve`):

1. Query arrivals fold into batch arrivals (``nbatch`` queries per
   batch, a batch arrives with its last query).
2. The *dispatch plan* assigns each batch to a replica using an exact
   analytic mirror of the pipeline's max-plus recurrence — the same
   float operations ``Server.serve`` performs — so the balancer's view
   of queue depths and completion times matches what the simulation
   will actually do, bit for bit.  The autoscaler evaluates between
   epochs on the same exact quantities.
3. Each replica's assigned arrivals replay through its own
   :class:`~repro.core.pipeline_sim.PipelineSimulator` (DES or fast
   path), feeding the shared metrics registry / profiler.  Replicas
   replay in id order on both paths, so windowed timeseries exports
   are **byte-identical** across DES and fast — the single-device
   parity contract, lifted to the cluster.

The dispatch plan itself never touches the execution path, so the
balancer choice, the autoscaler's scaling-event log, and the final
latency distribution are all path-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import percentile
from repro.core.pipeline_fast import resolve_fast
from repro.core.pipeline_sim import BatchRecord, PipelineSimulator
from repro.fpga.compose import StageTimes
from repro.host.autoscale import Autoscaler, EpochSignal, ScalingEvent
from repro.obs import names
from repro.obs.timeseries import build_document
from repro.workloads.arrivals import ArrivalTrace, batch_arrivals

BALANCER_ROUND_ROBIN = "round-robin"
BALANCER_JSQ = "jsq"
BALANCER_LATENCY = "latency-weighted"
BALANCERS = (BALANCER_ROUND_ROBIN, BALANCER_JSQ, BALANCER_LATENCY)

#: Stage keys of the replica pipeline, in bottleneck tie-break order
#: (mirrors repro.obs.profiler.STAGE_KEYS semantics: ties -> emb).
_STAGE_KEYS = ("emb", "bot", "top")


class _ReplicaModel:
    """Exact analytic mirror of one replica's three-stage pipeline.

    Tracks each stage server's ``free_at`` with the same arithmetic as
    ``Server.serve`` (``start = arrival if arrival >= free else free``,
    caller resumes at ``arrival + (finish - arrival)``), so predicted
    completion times equal the simulated ones bitwise for constant
    stage times.  Per-replica batch arrivals are sorted (they are a
    subsequence of the sorted global arrivals) and the stage times are
    constant, so ready times are non-decreasing and the top stage's
    stable service order is arrival order — the sequential recurrence
    is the whole story.
    """

    __slots__ = ("emb_ns", "bot_ns", "top_ns", "_free", "_done", "_head")

    def __init__(self, emb_ns: float, bot_ns: float, top_ns: float) -> None:
        self.emb_ns = float(emb_ns)
        self.bot_ns = float(bot_ns)
        self.top_ns = float(top_ns)
        #: (emb, bot, top) server free_at clocks.
        self._free = [0.0, 0.0, 0.0]
        #: Completion instants of dispatched batches — non-decreasing,
        #: because arrivals are sorted and the recurrence is monotone —
        #: with a head cursor marking the still-in-flight suffix.
        self._done: List[float] = []
        self._head = 0

    def predict(self, arrival_ns: float):
        """Completion instant and post-dispatch frees for ``arrival_ns``
        — pure (no state change)."""
        a = arrival_ns if arrival_ns >= 0.0 else 0.0
        emb_free, bot_free, top_free = self._free
        emb_start = a if a >= emb_free else emb_free
        emb_finish = emb_start + self.emb_ns
        emb_done = a + (emb_finish - a)
        if self.bot_ns > 0:
            bot_start = a if a >= bot_free else bot_free
            bot_finish = bot_start + self.bot_ns
            bot_done = a + (bot_finish - a)
        else:
            bot_finish = bot_free
            bot_done = a
        ready = emb_done if emb_done >= bot_done else bot_done
        if self.top_ns > 0:
            top_start = ready if ready >= top_free else top_free
            top_finish = top_start + self.top_ns
            top_done = ready + (top_finish - ready)
        else:
            top_finish = top_free
            top_done = ready
        return top_done, (emb_finish, bot_finish, top_finish)

    def commit(self, arrival_ns: float) -> float:
        """Dispatch one batch: advance the frees, return completion."""
        top_done, frees = self.predict(arrival_ns)
        self._free = list(frees)
        self._done.append(top_done)
        return top_done

    def backlog(self, t_ns: float) -> int:
        """Batches dispatched to this replica still in flight at
        ``t_ns`` (queued or in service)."""
        done = self._done
        while self._head < len(done) and done[self._head] <= t_ns:
            self._head += 1
        return len(done) - self._head


# ---------------------------------------------------------------------------
# Load balancers
# ---------------------------------------------------------------------------
class RoundRobinBalancer:
    """Cycle through the active replicas in id order."""

    name = BALANCER_ROUND_ROBIN

    def __init__(self) -> None:
        self._cursor = 0

    def pick(
        self,
        arrival_ns: float,
        replicas: Sequence[_ReplicaModel],
        active: Sequence[int],
    ) -> int:
        choice = active[self._cursor % len(active)]
        self._cursor += 1
        return choice


class JoinShortestQueueBalancer:
    """Send each batch to the replica with the fewest in-flight
    batches at its arrival instant (ties -> lowest replica id)."""

    name = BALANCER_JSQ

    def pick(
        self,
        arrival_ns: float,
        replicas: Sequence[_ReplicaModel],
        active: Sequence[int],
    ) -> int:
        return min(active, key=lambda rid: (replicas[rid].backlog(arrival_ns), rid))


class LatencyWeightedBalancer:
    """Send each batch to the replica with the earliest *predicted*
    completion — the exact analytic recurrence weights each candidate
    by the latency the batch would see there (ties -> lowest id)."""

    name = BALANCER_LATENCY

    def pick(
        self,
        arrival_ns: float,
        replicas: Sequence[_ReplicaModel],
        active: Sequence[int],
    ) -> int:
        return min(
            active,
            key=lambda rid: (replicas[rid].predict(arrival_ns)[0], rid),
        )


def make_balancer(name: str):
    """Balancer instance for a catalogue name."""
    if name == BALANCER_ROUND_ROBIN:
        return RoundRobinBalancer()
    if name == BALANCER_JSQ:
        return JoinShortestQueueBalancer()
    if name == BALANCER_LATENCY:
        return LatencyWeightedBalancer()
    raise ValueError(
        f"unknown balancer {name!r}; choose one of {', '.join(BALANCERS)}"
    )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterLoadPoint:
    """Latency distribution of one cluster run."""

    offered_qps: float
    achieved_qps: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    mean_ns: float
    latencies_ns: tuple
    queries: int
    batches: int
    balancer: str
    initial_replicas: int
    final_replicas: int
    #: Batches served per replica id (ids never reused; drained
    #: replicas keep their slot with their final count).
    per_replica_batches: Tuple[int, ...]
    scale_events: Tuple[ScalingEvent, ...]
    #: Which execution path replayed the replicas ("des" or "fast").
    path: str

    @property
    def scale_ups(self) -> int:
        return sum(
            1 for e in self.scale_events if e.action == names.EVENT_SCALE_UP
        )

    @property
    def scale_downs(self) -> int:
        return sum(
            1 for e in self.scale_events if e.action == names.EVENT_SCALE_DOWN
        )

    def meets_sla(self, sla_ns: float, quantile: float = 99.0) -> bool:
        """Whether the run's ``quantile``-th latency is within SLA."""
        if not 0.0 <= quantile <= 100.0:
            raise ValueError("quantile must be in [0, 100]")
        return percentile(self.latencies_ns, quantile) <= sla_ns

    def cluster_section(self) -> dict:
        """The ``cluster`` section of the timeseries document.

        Path-independent by construction (the dispatch plan never sees
        which execution path replays it), so the exported document
        stays byte-identical across DES and fast runs — ``path`` is
        deliberately not included.
        """
        return {
            "balancer": self.balancer,
            "initial_replicas": self.initial_replicas,
            "final_replicas": self.final_replicas,
            "per_replica_batches": list(self.per_replica_batches),
            "queries": self.queries,
            "batches": self.batches,
            "offered_qps": self.offered_qps,
            "scaling_events": [e.as_dict() for e in self.scale_events],
        }


@dataclass
class _DispatchPlan:
    """Balancer + autoscaler output: who serves what, and when the
    fleet changed size."""

    assignments: Dict[int, List[float]]
    events: List[ScalingEvent]
    initial_replicas: int
    final_replicas: int
    offered_qps: float
    queries: int
    batches: int
    balancer: str
    replica_count: int = field(default=0)


# ---------------------------------------------------------------------------
# The simulator
# ---------------------------------------------------------------------------
class ClusterServingSimulator:
    """An arrival trace against a fleet of replica pipelines."""

    def __init__(
        self,
        times: StageTimes,
        cycle_ns: float = 5.0,
        nbatch: int = 1,
        replicas: int = 2,
        balancer: str = BALANCER_ROUND_ROBIN,
        autoscaler: Optional[Autoscaler] = None,
        metrics=None,
        profiler=None,
        critpath=None,
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        if balancer not in BALANCERS:
            raise ValueError(
                f"unknown balancer {balancer!r}; "
                f"choose one of {', '.join(BALANCERS)}"
            )
        self.times = times
        self.cycle_ns = float(cycle_ns)
        self.nbatch = max(1, nbatch)
        self.replicas = replicas
        self.balancer_name = balancer
        self.autoscaler = autoscaler
        #: Shared observability: every replica's pipeline feeds these,
        #: in replica-id order on both paths (stage profiles merge
        #: under the shared stage names — utilization then reads "any
        #: replica busy").
        self.metrics = metrics
        self.profiler = profiler
        #: Optional CritPathCollector: replicas replay in id order with
        #: the collector's replica context set before each replay, so
        #: per-request breakdowns carry the serving replica id —
        #: identically on both paths.
        self.critpath = critpath
        self.stage_ns = {
            "emb": times.temb * self.cycle_ns,
            "bot": times.tbot * self.cycle_ns,
            "top": times.ttop * self.cycle_ns,
        }
        #: Saturation throughput of one replica (queries/s).
        self.replica_qps = times.throughput_qps(1e9 / self.cycle_ns)
        self._last_point: Optional[ClusterLoadPoint] = None

    # ------------------------------------------------------------------
    def _fresh_replica(self) -> _ReplicaModel:
        return _ReplicaModel(
            self.stage_ns["emb"], self.stage_ns["bot"], self.stage_ns["top"]
        )

    def _bottleneck(self) -> Tuple[str, bool]:
        """The replica pipeline's limiting stage, with the profiler's
        tie-break (equal totals resolve to the earliest key: emb)."""
        stage = max(_STAGE_KEYS, key=lambda key: self.stage_ns[key])
        for key in _STAGE_KEYS:
            if self.stage_ns[key] >= self.stage_ns[stage]:
                stage = key
                break
        return stage, stage == "emb"

    @staticmethod
    def _query_times(trace) -> List[float]:
        if isinstance(trace, ArrivalTrace):
            times = list(trace.times_ns)
        else:
            times = [float(t) for t in trace]
        if not times:
            raise ValueError("need at least one query arrival")
        return times

    # ------------------------------------------------------------------
    def _plan(self, query_times: List[float]) -> _DispatchPlan:
        """Assign every batch to a replica; run the autoscaler loop."""
        batch_times = batch_arrivals(query_times, self.nbatch).tolist()
        queries = len(query_times)
        span_ns = query_times[-1]
        offered_qps = queries / (span_ns / 1e9) if span_ns > 0 else 0.0

        pool: List[_ReplicaModel] = [
            self._fresh_replica() for _ in range(self.replicas)
        ]
        active = list(range(self.replicas))
        assignments: Dict[int, List[float]] = {
            rid: [] for rid in range(self.replicas)
        }
        balancer = make_balancer(self.balancer_name)
        scaler = self.autoscaler
        bottleneck_stage, invariant_holds = self._bottleneck()
        events: List[ScalingEvent] = []
        arrivals_array = np.asarray(query_times, dtype=np.float64)
        next_eval_ns = scaler.epoch_ns if scaler is not None else None

        for arrival in batch_times:
            while next_eval_ns is not None and arrival >= next_eval_ns:
                self._evaluate_epoch(
                    scaler,
                    next_eval_ns,
                    pool,
                    active,
                    assignments,
                    events,
                    arrivals_array,
                    bottleneck_stage,
                    invariant_holds,
                )
                next_eval_ns += scaler.epoch_ns
            rid = balancer.pick(arrival, pool, active)
            done_ns = pool[rid].commit(arrival)
            assignments[rid].append(arrival)
            if scaler is not None:
                scaler.observe(done_ns - arrival, done_ns)
        return _DispatchPlan(
            assignments=assignments,
            events=events,
            initial_replicas=self.replicas,
            final_replicas=len(active),
            offered_qps=offered_qps,
            queries=queries,
            batches=len(batch_times),
            balancer=self.balancer_name,
            replica_count=len(pool),
        )

    def _evaluate_epoch(
        self,
        scaler: Autoscaler,
        t_ns: float,
        pool: List[_ReplicaModel],
        active: List[int],
        assignments: Dict[int, List[float]],
        events: List[ScalingEvent],
        arrivals_array: np.ndarray,
        bottleneck_stage: str,
        invariant_holds: bool,
    ) -> None:
        """One autoscaler decision at epoch boundary ``t_ns``."""
        lo, hi = np.searchsorted(
            arrivals_array, (t_ns - scaler.epoch_ns, t_ns), side="right"
        )
        epoch_offered = (hi - lo) / (scaler.epoch_ns / 1e9)
        # The replica carrying the deepest backlog at the decision
        # instant (ties -> lowest id): the fleet-level analogue of the
        # stage bottleneck, logged on the scaling event so a page can
        # be traced to the member that caused it.
        bottleneck_replica = max(
            active, key=lambda rid: pool[rid].backlog(t_ns)
        )
        signal = EpochSignal(
            t_ns=t_ns,
            replicas=len(active),
            alerts=scaler.causal_alerts(t_ns),
            offered_qps=float(epoch_offered),
            capacity_qps=len(active) * self.replica_qps,
            bottleneck_stage=bottleneck_stage,
            invariant_holds=invariant_holds,
            bottleneck_replica=bottleneck_replica,
        )
        delta = scaler.evaluate(signal)
        if delta > 0:
            # Fresh instances: a new replica starts cold and idle.
            for _ in range(delta):
                rid = len(pool)
                pool.append(self._fresh_replica())
                assignments[rid] = []
                active.append(rid)
        elif delta < 0:
            # Drain the newest replicas: stop assigning, let their
            # in-flight batches finish (no cancellation).
            for _ in range(-delta):
                active.pop()
        if delta:
            events.append(scaler.events[-1])

    # ------------------------------------------------------------------
    # Execution: replay the plan per replica (R9 CLUSTER_PARITY roots).
    # ------------------------------------------------------------------
    def _serve_des(self, plan: _DispatchPlan) -> ClusterLoadPoint:
        """Event-driven replay of a dispatch plan."""
        return self._replay(plan, fast=False)

    def _serve_fast(self, plan: _DispatchPlan) -> ClusterLoadPoint:
        """Closed-form replay of a dispatch plan (bitwise-equal)."""
        return self._replay(plan, fast=True)

    def _replay(self, plan: _DispatchPlan, fast: bool) -> ClusterLoadPoint:
        records: List[BatchRecord] = []
        per_replica: List[int] = []
        path = "fast" if fast else "des"
        for rid in range(plan.replica_count):
            assigned = plan.assignments.get(rid, [])
            per_replica.append(len(assigned))
            if not assigned:
                continue
            if self.critpath is not None:
                self.critpath.set_replica(rid)
            pipeline = PipelineSimulator(
                emb_ns=self.stage_ns["emb"],
                bot_ns=self.stage_ns["bot"],
                top_ns=self.stage_ns["top"],
                metrics=self.metrics,
                profiler=self.profiler,
                critpath=self.critpath,
            )
            result = pipeline.run(
                len(assigned), arrival_times_ns=assigned, fast=fast
            )
            path = result.path
            records.extend(result.records)
        self._emit_cluster_metrics(plan)
        latencies = [r.top_done_ns - r.arrival_ns for r in records]
        makespan_ns = max(r.top_done_ns for r in records)
        ordered = sorted(latencies)
        point = ClusterLoadPoint(
            offered_qps=plan.offered_qps,
            achieved_qps=(
                plan.queries / (makespan_ns / 1e9) if makespan_ns > 0 else 0.0
            ),
            p50_ns=percentile(ordered, 50, presorted=True),
            p95_ns=percentile(ordered, 95, presorted=True),
            p99_ns=percentile(ordered, 99, presorted=True),
            mean_ns=sum(latencies) / len(latencies),
            latencies_ns=tuple(latencies),
            queries=plan.queries,
            batches=plan.batches,
            balancer=plan.balancer,
            initial_replicas=plan.initial_replicas,
            final_replicas=plan.final_replicas,
            per_replica_batches=tuple(per_replica),
            scale_events=tuple(plan.events),
            path=path,
        )
        self._last_point = point
        return point

    def _emit_cluster_metrics(self, plan: _DispatchPlan) -> None:
        """Replica-count gauge and scale-event counter, stamped at the
        simulated decision instants (identical on both paths)."""
        metrics = self.metrics
        if metrics is None:
            return
        gauge = metrics.gauge(names.METRIC_CLUSTER_REPLICAS)
        gauge.set(plan.initial_replicas, t_ns=0.0)
        counter = metrics.counter(names.METRIC_CLUSTER_SCALE_EVENTS)
        for event in plan.events:
            gauge.set(event.to_replicas, t_ns=event.t_ns)
            counter.inc(1, t_ns=event.t_ns)

    # ------------------------------------------------------------------
    def serve_trace(
        self, trace, fast: Optional[bool] = None
    ) -> ClusterLoadPoint:
        """Serve an :class:`ArrivalTrace` (or raw sorted query instants)
        through the cluster; ``fast=None`` follows ``RMSSD_FASTPATH``."""
        plan = self._plan(self._query_times(trace))
        if resolve_fast(fast):
            return self._serve_fast(plan)
        return self._serve_des(plan)

    def timeseries_document(self, slo=None) -> dict:
        """The ``rmssd-timeseries/v1`` document with the ``cluster``
        section of the last run (requires a windowed registry)."""
        if self._last_point is None:
            raise ValueError("no cluster run to export; call serve() first")
        cluster = self._last_point.cluster_section()
        if self.autoscaler is not None:
            cluster["autoscaler"] = self.autoscaler.report_dict()
        return build_document(
            metrics=self.metrics,
            profiler=self.profiler,
            slo=slo,
            cluster=cluster,
        )
