"""Host-side pipelining helper (Section IV-D's throughput optimization).

Given a stream of per-request stage costs ``(send, device, receive)``,
computes total wall time with and without the pre-send optimization:
pipelined, the host sends request *i+1* while the device processes *i*,
so the steady-state cost per request is ``max(send, device, receive)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.obs import names


@dataclass(frozen=True)
class StageCost:
    """One request's host-send / device / host-receive costs in ns."""

    send_ns: float
    device_ns: float
    receive_ns: float

    @property
    def serial_ns(self) -> float:
        return self.send_ns + self.device_ns + self.receive_ns

    @property
    def bottleneck_ns(self) -> float:
        return max(self.send_ns, self.device_ns, self.receive_ns)


class HostPipeline:
    """Accumulates request costs and reports total wall time."""

    def __init__(self, pipelined: bool = True) -> None:
        self.pipelined = pipelined
        self._costs: List[StageCost] = []

    def add(self, send_ns: float, device_ns: float, receive_ns: float) -> None:
        self._costs.append(StageCost(send_ns, device_ns, receive_ns))

    def extend(self, costs: Iterable[Tuple[float, float, float]]) -> None:
        for send, device, receive in costs:
            self.add(send, device, receive)

    @property
    def requests(self) -> int:
        return len(self._costs)

    def total_ns(self) -> float:
        """Wall time for the whole stream.

        Pipelined: the first request fills the pipe at full cost, each
        further request costs its bottleneck stage.  Serial: every
        request costs its full sum.
        """
        if not self._costs:
            return 0.0
        if not self.pipelined:
            return sum(cost.serial_ns for cost in self._costs)
        total = self._costs[0].serial_ns
        for cost in self._costs[1:]:
            total += cost.bottleneck_ns
        return total

    def speedup_from_pipelining(self) -> float:
        serial = sum(cost.serial_ns for cost in self._costs)
        piped = self.total_ns()
        return serial / piped if piped else 1.0

    def emit_trace(self, tracer, base_ns: float = 0.0) -> float:
        """Replay the stream as spans on three host-pipeline tracks.

        Each stage is one FIFO resource: pipelined, request *i+1*'s
        send starts as soon as the send stage frees (the Section IV-D
        pre-send); serial, it waits for request *i*'s receive.  Spans
        land on ``host.send`` / ``host.device`` / ``host.recv``
        starting at ``base_ns``; returns when the last receive ends.
        """
        send_free = device_free = recv_free = base_ns
        for index, cost in enumerate(self._costs):
            send_start = send_free if self.pipelined else max(send_free, recv_free)
            send_end = send_start + cost.send_ns
            device_start = max(send_end, device_free)
            device_end = device_start + cost.device_ns
            recv_start = max(device_end, recv_free)
            recv_end = recv_start + cost.receive_ns
            if tracer.enabled:
                args = {"request": index}
                tracer.add_span(
                    names.SPAN_HOST_SEND, send_start, send_end,
                    cat="host", track="host.send", args=args,
                )
                tracer.add_span(
                    names.SPAN_HOST_DEVICE, device_start, device_end,
                    cat="host", track="host.device", args=args,
                )
                tracer.add_span(
                    names.SPAN_HOST_RECV, recv_start, recv_end,
                    cat="host", track="host.recv", args=args,
                )
            send_free, device_free, recv_free = send_end, device_end, recv_end
        return recv_free
