"""SLA-driven autoscaling for the cluster serving study.

The paper's scale-out context (FleetRec, capacity-driven clusters)
assumes someone decides *how many* RM-SSDs serve the model.  This
module is that someone: a closed-loop controller that watches the
same signals an operator would —

* **burn-rate alerts** from the :class:`~repro.obs.slo.SLOEngine`
  (the PR-8 multi-window page/ticket rules) evaluated over a private
  *control* registry fed with each batch's latency at dispatch time;
* the **bottleneck invariant** of
  :meth:`~repro.obs.profiler.Profiler.bottleneck_report` — whether
  the embedding stage still bounds the replica pipeline, which tells
  the controller that adding replicas buys linear throughput (and is
  recorded on every scaling event for the post-mortem);
* the epoch's **offered/capacity ratio**, the scale-*down* signal.

Decisions happen at fixed *epochs* (a whole number of SLO windows),
with hysteresis: a page alert scales up immediately, scale-down
requires a cooldown since the last action plus a run of quiet epochs
below the utilization watermark.  Every action is logged as a
:class:`ScalingEvent` that lands in the ``rmssd-timeseries/v1``
document's ``cluster`` section.

Determinism: the controller sees only simulated-clock quantities (the
dispatcher's exact analytic completion times), so the decision
sequence — and therefore the whole cluster run — is identical on the
DES and fast serving paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_RULES, BurnRateRule, SLOEngine


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler action, stamped on the simulated clock."""

    t_ns: float
    action: str
    from_replicas: int
    to_replicas: int
    reason: str
    #: Severity of the alert that triggered a scale-up ("" otherwise).
    severity: str
    #: Offered/capacity ratio over the evaluation epoch.
    utilization: float
    #: The replica pipeline's limiting stage (emb/bot/top) and whether
    #: the paper's embedding-stage-bottleneck invariant held — the
    #: bottleneck_report signal, evaluated on the stage composition.
    bottleneck_stage: str
    invariant_holds: bool
    #: The replica with the deepest backlog at the decision instant
    #: (ties -> lowest id) — the fleet member the page traces to.
    bottleneck_replica: int = 0

    def as_dict(self) -> dict:
        return {
            "t_ns": self.t_ns,
            "action": self.action,
            "from_replicas": self.from_replicas,
            "to_replicas": self.to_replicas,
            "reason": self.reason,
            "severity": self.severity,
            "utilization": self.utilization,
            "bottleneck_stage": self.bottleneck_stage,
            "invariant_holds": self.invariant_holds,
            "bottleneck_replica": self.bottleneck_replica,
        }


@dataclass(frozen=True)
class EpochSignal:
    """What the controller sees at one evaluation epoch."""

    t_ns: float
    replicas: int
    #: Causal alerts: burn-rate events with ``t_ns`` inside this epoch.
    alerts: Tuple[dict, ...]
    offered_qps: float
    capacity_qps: float
    bottleneck_stage: str
    invariant_holds: bool
    #: Deepest-backlog replica id at the epoch boundary (0 when the
    #: caller does not track per-replica backlogs).
    bottleneck_replica: int = 0

    @property
    def utilization(self) -> float:
        if self.capacity_qps <= 0:
            return 0.0
        return self.offered_qps / self.capacity_qps


class Autoscaler:
    """Closed-loop replica controller with hysteresis.

    ``sla_ns``/``quantile`` declare the serving-tail objective on a
    private windowed control registry; the burn-rate ``rules`` default
    to the SRE page/ticket pair.  ``epoch_windows`` sets the decision
    cadence in SLO windows; ``cooldown_epochs`` is the minimum epoch
    gap between *any* two actions, and scale-down additionally needs
    ``quiet_epochs`` alert-free epochs with utilization below
    ``scale_down_utilization``.
    """

    def __init__(
        self,
        sla_ns: float,
        quantile: float = 99.0,
        window_ns: float = 1e6,
        min_replicas: int = 1,
        max_replicas: int = 8,
        scale_up_step: int = 1,
        epoch_windows: int = 4,
        cooldown_epochs: int = 1,
        quiet_epochs: int = 2,
        scale_down_utilization: float = 0.5,
        rules: Sequence[BurnRateRule] = DEFAULT_RULES,
    ) -> None:
        if min_replicas < 1:
            raise ValueError("need at least one replica")
        if max_replicas < min_replicas:
            raise ValueError("max replicas must be >= min replicas")
        if scale_up_step < 1:
            raise ValueError("scale-up step must be >= 1")
        if epoch_windows < 1:
            raise ValueError("epoch must span at least one window")
        if cooldown_epochs < 0 or quiet_epochs < 0:
            raise ValueError("hysteresis spans must be non-negative")
        if not 0.0 < scale_down_utilization < 1.0:
            raise ValueError("scale-down watermark must be in (0, 1)")
        self.sla_ns = float(sla_ns)
        self.quantile = float(quantile)
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_up_step = scale_up_step
        self.cooldown_epochs = cooldown_epochs
        self.quiet_epochs = quiet_epochs
        self.scale_down_utilization = scale_down_utilization
        self.engine = SLOEngine(window_ns, rules=rules)
        self.engine.objective(
            names.SLO_SERVING_TAIL,
            names.METRIC_SERVING_LATENCY,
            quantile=quantile,
            threshold_ns=sla_ns,
        )
        #: Private control-plane registry: the dispatcher feeds it the
        #: analytic latency of every batch at its completion instant.
        self.control = MetricsRegistry(window_ns=window_ns)
        self.epoch_ns = epoch_windows * float(window_ns)
        self.events: List[ScalingEvent] = []
        self._epoch = 0
        self._last_eval_ns = 0.0
        self._last_action_epoch: Optional[int] = None
        self._quiet_run = 0

    # ------------------------------------------------------------------
    def observe(self, latency_ns: float, done_ns: float) -> None:
        """Record one dispatched batch's (exact) predicted latency."""
        self.control.histogram(names.METRIC_SERVING_LATENCY).observe(
            latency_ns, t_ns=done_ns
        )

    def causal_alerts(self, t_ns: float) -> Tuple[dict, ...]:
        """Burn-rate alerts that became visible since the last epoch.

        An alert stamped ``t <= t_ns`` depends only on windows that
        closed before ``t_ns`` — batches arriving later complete
        later — so filtering on the stamp keeps the loop causal.
        """
        return tuple(
            alert
            for alert in self.engine.alerts(self.control)
            if self._last_eval_ns < alert["t_ns"] <= t_ns
        )

    # ------------------------------------------------------------------
    def evaluate(self, signal: EpochSignal) -> int:
        """One control decision; returns the replica delta (0 = hold)."""
        self._epoch += 1
        self._last_eval_ns = signal.t_ns
        if signal.alerts:
            self._quiet_run = 0
        else:
            self._quiet_run += 1
        in_cooldown = (
            self._last_action_epoch is not None
            and self._epoch - self._last_action_epoch <= self.cooldown_epochs
        )
        pages = [
            a for a in signal.alerts if a["severity"] == names.ALERT_PAGE
        ]
        if pages and signal.replicas < self.max_replicas:
            target = min(
                signal.replicas + self.scale_up_step, self.max_replicas
            )
            self._record(
                signal,
                target,
                action=names.EVENT_SCALE_UP,
                reason="burn-rate",
                severity=names.ALERT_PAGE,
            )
            return target - signal.replicas
        if (
            not in_cooldown
            and signal.replicas > self.min_replicas
            and self._quiet_run >= self.quiet_epochs
            and signal.utilization < self.scale_down_utilization
        ):
            target = signal.replicas - 1
            self._record(
                signal,
                target,
                action=names.EVENT_SCALE_DOWN,
                reason="idle-capacity",
                severity="",
            )
            return -1
        return 0

    def _record(
        self,
        signal: EpochSignal,
        target: int,
        action: str,
        reason: str,
        severity: str,
    ) -> None:
        self._last_action_epoch = self._epoch
        self.events.append(
            ScalingEvent(
                t_ns=signal.t_ns,
                action=action,
                from_replicas=signal.replicas,
                to_replicas=target,
                reason=reason,
                severity=severity,
                utilization=signal.utilization,
                bottleneck_stage=signal.bottleneck_stage,
                invariant_holds=signal.invariant_holds,
                bottleneck_replica=signal.bottleneck_replica,
            )
        )

    # ------------------------------------------------------------------
    def report_dict(self) -> dict:
        """The autoscaler's slice of the cluster document section."""
        return {
            "sla_ns": self.sla_ns,
            "quantile": self.quantile,
            "window_ns": self.engine.window_ns,
            "epoch_ns": self.epoch_ns,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "scale_up_step": self.scale_up_step,
            "cooldown_epochs": self.cooldown_epochs,
            "quiet_epochs": self.quiet_epochs,
            "scale_down_utilization": self.scale_down_utilization,
            "events": [event.as_dict() for event in self.events],
        }
