"""Vectorized replay of the two-phase flash read protocol.

The DES path spawns one Python generator process per embedding vector
read; a realistic batch costs tens of thousands of heap pushes and
callback dispatches, so the *simulator* — not the simulated SSD —
becomes the bottleneck.  This module replays the exact same protocol
(request overhead -> die flush -> shared-bus transfer) without any
processes: per channel, a small event loop over plain tuples applies
the same greedy resource semantics as :class:`repro.sim.resources.
Resource` (FIFO die mutex) and :class:`repro.sim.resources.Server`
(FIFO channel bus), reproducing the DES event order *and* its float
arithmetic bit for bit.

Exactness rests on three properties of the kernel:

* Events fire in ``(time, sequence)`` order and sequences are assigned
  at scheduling time, so within one channel the relative order of the
  replayed events equals the relative order of the DES events (channel
  events are only ever scheduled while processing channel events; the
  per-request entry timeouts are all scheduled up front, in issue
  order, before any channel event exists).
* ``Server.serve`` computes ``finish = max(now, free_at) + duration``
  but resumes the caller at ``now + (finish - now)`` — the replay
  tracks both quantities instead of assuming the round trip is exact.
* Sequential float accumulation (``busy_time``, back-to-back server
  finishes) is replayed with ``np.add.accumulate`` or an explicit
  left-to-right loop, never with closed-form multiplication.

The fast path is only entered when the event queue is idle (no
concurrent block I/O sharing the channels); ``RMSSD_FASTPATH=0``
disables it globally.  See ``docs/performance.md``.
"""
# lint: ok-file[R3]  -- this module *is* a (mini) event kernel: the
# heapq use replays Resource/Server scheduling outside repro.sim by
# design, with equivalence pinned by tests/test_fastpath_equivalence.

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import List, Tuple

import numpy as np

from repro.obs import names

#: Environment variable that disables the fast path when set to a
#: falsey value ("0", "false", "off", "no").  Unset means enabled.
ENV_FLAG = "RMSSD_FASTPATH"

_FALSEY = ("0", "false", "off", "no")


def enabled() -> bool:
    """Whether ``RMSSD_FASTPATH`` allows the vectorized fast path."""
    return os.environ.get(ENV_FLAG, "1").strip().lower() not in _FALSEY


def serialize_server(server, count: int, service_ns: float) -> np.ndarray:
    """Replay ``count`` back-to-back ``Server.serve`` calls issued *now*.

    Mirrors the DES case where every caller enqueues at the current
    time (all FTL lookups of a batch are requested in the same
    scheduling round): job ``i`` finishes at ``max(now, free_at) +
    (i + 1) * service_ns`` — accumulated sequentially, because float
    addition does not distribute — and its caller resumes at
    ``now + (finish_i - now)``.

    Updates the server's ``_free_at``/``busy_time``/``jobs_served``
    exactly as ``count`` real calls would, and returns the resume
    (fire) times in issue order.
    """
    t0 = server.sim.now
    steps = np.empty(count + 1, dtype=np.float64)
    steps[0] = t0 if t0 > server._free_at else server._free_at
    steps[1:] = service_ns
    accumulated = np.add.accumulate(steps)
    finishes = accumulated[1:]
    busy = np.empty(count + 1, dtype=np.float64)
    busy[0] = server.busy_time
    busy[1:] = service_ns
    if count:
        server.busy_time = float(np.add.accumulate(busy)[-1])
        server._free_at = float(finishes[-1])
        server.jobs_served += count
        profiler = getattr(server.sim, "profiler", None)
        if profiler is not None and profiler.enabled:
            # Job i starts where job i-1 finished: accumulated[i] is
            # both finish_{i-1} and start_i, the same floats the DES
            # ``Server.serve`` records (all jobs arrive at t0).
            starts = accumulated[:-1]
            for index in range(count):
                profiler.record_service(
                    server.name,
                    t0,
                    float(starts[index]),
                    float(finishes[index]),
                    server.kind,
                )
    return t0 + (finishes - t0)


# Replay event kinds, in the order they occur for one request.
_ARRIVE, _GRANT, _FLUSH, _DONE = 0, 1, 2, 3


def _replay_channel(
    enter_ns: np.ndarray,
    die_ids: np.ndarray,
    transfer_ns: np.ndarray,
    oh_ns: float,
    flush_ns: float,
    num_dies: int,
    bus_free: float,
    bus_busy: float,
    staged: bool,
    profiler=None,
    bus_name=None,
    die_names=None,
) -> Tuple[np.ndarray, float, float, int]:
    """Replay one channel's reads; returns completion times + bus state.

    ``enter_ns`` (sorted, issue order) carries one entry per request:
    with ``staged=True`` it is the time the request *enters* the flash
    stage (an upstream server released it; the request-overhead wait
    still follows), with ``staged=False`` it is the time the overhead
    wait already elapsed (the overhead timeouts were scheduled up
    front, as ``FlashArray.run_reads`` does).

    The entry stream owns the smallest sequence numbers (its DES
    timeouts were scheduled before any channel event), so on time ties
    it is drained first; dynamically scheduled events get increasing
    sequences from ``n`` — matching the kernel's global counter
    restricted to this channel.
    """
    n = len(enter_ns)
    completion = np.empty(n, dtype=np.float64)
    heap: List[tuple] = []
    seq = n
    ptr = 0
    die_busy = [False] * num_dies
    die_busy_since = [0.0] * num_dies
    die_waiters = [deque() for _ in range(num_dies)]
    jobs = 0
    while ptr < n or heap:
        if ptr < n and (not heap or enter_ns[ptr] <= heap[0][0]):
            t = float(enter_ns[ptr])
            idx = ptr
            ptr += 1
            if staged:
                # Entry processing schedules the overhead timeout.
                heapq.heappush(heap, (t + oh_ns, seq, _ARRIVE, idx))
                seq += 1
                continue
            kind = _ARRIVE
        else:
            t, _, kind, idx = heapq.heappop(heap)
        if kind == _ARRIVE:
            # Resource.acquire: grant immediately (a delay-0 event) or
            # join the die's FIFO wait queue.
            die = die_ids[idx]
            if die_busy[die]:
                if profiler is not None:
                    # Mirrors Resource.acquire's pre-append sample.
                    profiler.record_queue_depth(
                        die_names[die], t, len(die_waiters[die])
                    )
                die_waiters[die].append(idx)
            else:
                die_busy[die] = True
                die_busy_since[die] = t
                heapq.heappush(heap, (t, seq, _GRANT, idx))
                seq += 1
        elif kind == _GRANT:
            heapq.heappush(heap, (t + flush_ns, seq, _FLUSH, idx))
            seq += 1
        elif kind == _FLUSH:
            # Server.serve on the shared bus: note the fire time is
            # now + (finish - now), not finish.
            duration = transfer_ns[idx]
            begin = t if t > bus_free else bus_free
            finish = begin + duration
            bus_free = finish
            bus_busy = bus_busy + duration
            jobs += 1
            if profiler is not None:
                profiler.record_service(
                    bus_name, t, begin, finish, names.KIND_CHANNEL_BUS
                )
            heapq.heappush(heap, (t + (finish - t), seq, _DONE, idx))
            seq += 1
        else:  # _DONE
            completion[idx] = t
            # Resource.release: hand the die to the next waiter.
            die = die_ids[idx]
            waiters = die_waiters[die]
            if waiters:
                heapq.heappush(heap, (t, seq, _GRANT, waiters.popleft()))
                seq += 1
            else:
                die_busy[die] = False
                if profiler is not None:
                    # Occupancy closes only when the die goes idle —
                    # handoffs keep the busy interval open, exactly as
                    # Resource tracks ``_busy_since``.
                    profiler.record_busy(
                        die_names[die], die_busy_since[die], t, names.KIND_DIE
                    )
    return completion, float(bus_free), float(bus_busy), jobs


def replay_reads(
    flash,
    enter_ns: np.ndarray,
    channel_ids: np.ndarray,
    die_ids: np.ndarray,
    transfer_ns: np.ndarray,
    staged: bool,
) -> Tuple[np.ndarray, float]:
    """Replay a batch of flash reads across channels.

    All arrays are in issue order.  Channels are independent once the
    entry times are known (the shared upstream FTL stage is serialized
    by :func:`serialize_server` *before* this call), so each channel
    replays on its own.  Writes the post-batch bus state back into the
    flash array's channel servers and mirrors the sanitizer's
    per-channel accounting; the caller is responsible for advancing
    the simulation clock (``sim.run(until=end)``).

    Returns ``(completion_ns, end_ns)`` where ``end_ns`` equals the
    simulated time at which the DES event queue would have drained.
    """
    timing = flash.timing
    sanitizer = flash.sanitizer
    profiler = getattr(flash.sim, "profiler", None)
    if profiler is not None and not profiler.enabled:
        profiler = None
    completion = np.empty(len(enter_ns), dtype=np.float64)
    for channel in flash.channels:
        members = np.flatnonzero(channel_ids == channel.index)
        if members.size == 0:
            continue
        channel_transfers = transfer_ns[members]
        if sanitizer is not None:
            sanitizer.channel_batch(channel.name, int(members.size))
            sanitizer.check_latency(
                channel.name, "request_overhead_ns", timing.request_overhead_ns
            )
            sanitizer.check_latency(channel.name, "flush_ns", timing.flush_ns)
            for value in np.unique(channel_transfers):
                sanitizer.check_latency(channel.name, "transfer_ns", float(value))
        done, bus_free, bus_busy, jobs = _replay_channel(
            enter_ns[members],
            die_ids[members],
            channel_transfers,
            timing.request_overhead_ns,
            timing.flush_ns,
            len(channel.dies),
            channel.bus._free_at,
            channel.bus.busy_time,
            staged,
            profiler,
            channel.bus.name,
            [die.name for die in channel.dies],
        )
        channel.bus._free_at = bus_free
        channel.bus.busy_time = bus_busy
        channel.bus.jobs_served += jobs
        completion[members] = done
    end = float(completion.max()) if len(enter_ns) else flash.sim.now
    return completion, end
