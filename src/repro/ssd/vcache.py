"""Controller-DRAM hot-vector cache for the RM-SSD lookup path.

The paper argues RM-SSD wins over RecSSD partly because it keeps *no*
cache on the critical path (Section VI-C, Fig. 14): its throughput is
locality-invariant by construction.  RecSSD (Wilkening et al.) and
RecFlash make the opposite bet — skewed embedding access patterns let a
small cache of hot vectors absorb most flash reads.  This module makes
that trade-off *measurable* instead of asserted: an optional cache of
embedding vectors held in controller DRAM, consulted by the Embedding
Lookup Engine **before** EV translation.  A hit skips the FTL pass and
the flash read entirely and is handed straight to the EV Sum unit after
a short DRAM fetch; only misses reach the flash channels, so absorbed
reads decrement per-channel load one for one.

Three admission policies cover the design space the related systems
explore:

* ``"lru"`` — classic probe-and-fill with LRU eviction (RecSSD's
  host-cache discipline, moved into the device);
* ``"freq"`` — frequency-gated admission: a vector is only admitted
  after it has missed ``admit_after`` times (TinyLFU-style doorkeeper),
  which keeps the cold tail of Fig. 4's access pattern from flushing
  the hot set;
* ``"static"`` — static-hot (RecFlash): the cache fills once — either
  explicitly via :meth:`VectorCache.warm` with a profiled hot set, or
  lazily on first misses — and is never evicted afterwards.

Cache decisions are pure functions of the probe sequence, so the DES
path and the vectorized fast path — which probe in the same issue
order — produce identical hit sets, identical timing, and identical
span trees (the PR 2 bitwise-equivalence contract, extended by
``tests/test_vcache_equivalence.py``).

Timing model: cached vectors stream from controller DRAM at
:data:`DRAM_BYTES_PER_CYCLE` (a conservative single-channel DDR share
at the 200 MHz controller clock), overlapping the flash reads of the
same batch; the embedding stage ends when the slower of the two
streams drains.  Capacity is counted in *vectors* — the unit the EV
Sum consumes — so ``--vcache-vectors`` maps directly onto controller
DRAM bytes via ``capacity * EVsize``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

import numpy as np

#: Admission policies understood by :class:`VectorCache`.
POLICIES = ("lru", "freq", "static")

#: Controller-DRAM streaming bandwidth seen by the EV Sum unit, in
#: bytes per controller cycle (64-bit interface at the 200 MHz clock).
#: A 64 B vector costs 8 cycles — far below its ~2800-cycle flash read.
DRAM_BYTES_PER_CYCLE = 8.0

#: Default miss count before ``"freq"`` admits a vector.
DEFAULT_ADMIT_AFTER = 2


def fetch_cycles(vectors: int, ev_size: int) -> float:
    """Controller cycles to stream ``vectors`` cached EVs from DRAM.

    The fetches of one batch are serialized on the DRAM interface but
    overlap the flash reads of the same batch's misses; the lookup
    engine charges ``max(flash, dram)`` for the combined stage.
    """
    if vectors <= 0:
        return 0.0
    return vectors * (ev_size / DRAM_BYTES_PER_CYCLE)


class VectorCache:
    """Fixed-capacity cache of embedding vectors in controller DRAM.

    Keys are ``(table_id, row_index)`` pairs; values are the vector's
    fp32 contents (so a hit returns bit-identical data to the flash
    read it absorbs).  All statistics are cumulative across batches;
    :attr:`hit_ratio` is the replayable Fig. 14 metric.
    """

    def __init__(
        self,
        capacity_vectors: int,
        policy: str = "lru",
        admit_after: int = DEFAULT_ADMIT_AFTER,
        ev_size: int = 0,
    ) -> None:
        if capacity_vectors < 0:
            raise ValueError("capacity must be non-negative")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown vcache policy {policy!r}; expected one of {POLICIES}"
            )
        if admit_after < 1:
            raise ValueError("admit_after must be >= 1")
        self.capacity_vectors = capacity_vectors
        self.policy = policy
        self.admit_after = admit_after
        #: Bytes per cached vector (0 when unknown; set by the engine).
        self.ev_size = ev_size
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        # Doorkeeper miss counts for the "freq" policy.
        self._freq: Dict[Hashable, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fills = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_vectors * self.ev_size

    @property
    def lookups(self) -> int:
        """Total probes observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VectorCache(capacity={self.capacity_vectors}, "
            f"policy={self.policy!r}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    # ------------------------------------------------------------------
    # The probe-and-fill step (one per lookup, in issue order)
    # ------------------------------------------------------------------
    def access(
        self, key: Hashable, loader: Callable[[], np.ndarray]
    ) -> Optional[np.ndarray]:
        """Probe the cache for ``key``; fill per policy on a miss.

        Returns the cached vector on a hit (refreshing recency) or
        ``None`` on a miss.  ``loader`` is only called when the policy
        admits the vector — it fetches the fp32 contents functionally
        (no simulated time; the *timed* read of the same data is issued
        by the caller for every miss).
        """
        entries = self._entries
        cached = entries.get(key)
        if cached is not None:
            self.hits += 1
            entries.move_to_end(key)
            return cached
        self.misses += 1
        if self.capacity_vectors == 0:
            return None
        if self.policy == "static":
            if len(entries) < self.capacity_vectors:
                self._fill(key, loader())
            return None
        if self.policy == "freq":
            seen = self._freq.get(key, 0) + 1
            self._freq[key] = seen
            if seen < self.admit_after:
                return None
        self._fill(key, loader())
        return None

    def _fill(self, key: Hashable, value: np.ndarray) -> None:
        entries = self._entries
        if len(entries) >= self.capacity_vectors:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = value
        self.fills += 1

    # ------------------------------------------------------------------
    # Warming (static-hot pinning; usable by any policy)
    # ------------------------------------------------------------------
    def warm(
        self, items: Iterable[Tuple[Hashable, np.ndarray]]
    ) -> int:
        """Pre-fill with ``(key, vector)`` pairs, oldest first.

        Stops at capacity; already-present keys are refreshed without
        consuming a slot.  Does not touch the hit/miss statistics.
        Returns the number of vectors now resident.
        """
        for key, value in items:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                continue
            if len(self._entries) >= self.capacity_vectors:
                break
            self._entries[key] = value
        return len(self._entries)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fills = 0

    def clear(self) -> None:
        """Drop all entries, doorkeeper state, and statistics."""
        self._entries.clear()
        self._freq.clear()
        self.reset_stats()
