"""SSD substrate: flash array, FTL, controllers, timing, page cache.

This package implements the emulated SSD of the paper's Section V: a
flash array organized as channels x dies x planes x blocks x pages with
the Table II timing model, a flash translation layer, flash memory
controllers with vector-grained read support (EV-FMC), an LRU page
cache used by the host-side baselines, and I/O traffic accounting.
"""

from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import FlashTranslationLayer, LinearMapping, PageMapping
from repro.ssd.geometry import PhysicalAddress, SSDGeometry
from repro.ssd.pagecache import LRUPageCache
from repro.ssd.stats import IOSnapshot, IOStatistics
from repro.ssd.timing import SSDTimingModel
from repro.ssd.vcache import VectorCache

__all__ = [
    "BlockDevice",
    "FlashArray",
    "FlashTranslationLayer",
    "IOSnapshot",
    "IOStatistics",
    "LRUPageCache",
    "LinearMapping",
    "PageMapping",
    "PhysicalAddress",
    "SSDController",
    "SSDGeometry",
    "SSDTimingModel",
    "VectorCache",
]
