"""The flash array: data plane plus Table II timing on the DES kernel.

Every read follows the two-phase flash protocol the paper's Section
IV-B2 describes:

1. **Flush** — the addressed die copies a whole page from the cell
   array into its page buffer (``Tflush = 0.7 * Tpage``).  Dies operate
   independently, so flushes on different dies of one channel overlap.
2. **Transfer** — the page buffer is shifted out over the channel bus,
   which is shared by all dies of the channel ("though flash arrays
   have a deep hierarchy of storage, all in/out data share one bus for
   each channel").  A *page read* transfers ``Psize`` bytes; a
   *vector read* transfers only ``EVsize`` bytes, which is where the
   vector-grained strategy wins.

Data contents are stored sparsely (only written pages consume memory),
so a "32 GB" array whose workload touches a few hundred MB stays cheap
to host in RAM.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from repro.obs import names
from repro.sim import Resource, Server, Simulator
from repro.ssd import fastpath
from repro.ssd.geometry import PhysicalAddress, SSDGeometry
from repro.ssd.stats import IOStatistics
from repro.ssd.timing import SSDTimingModel


class _Channel:
    """Per-channel shared bus plus one mutex per die."""

    def __init__(self, sim: Simulator, geometry: SSDGeometry, index: int) -> None:
        self.index = index
        self.name = names.channel_name(index)
        self.bus = Server(
            sim,
            name=names.channel_bus_name(index),
            kind=names.KIND_CHANNEL_BUS,
        )
        self.dies: List[Resource] = [
            Resource(
                sim,
                capacity=1,
                name=names.channel_die_name(index, die),
                kind=names.KIND_DIE,
            )
            for die in range(geometry.dies_per_channel)
        ]


class FlashArray:
    """Sparse-backed flash array with simulated read timing."""

    def __init__(
        self,
        sim: Simulator,
        geometry: Optional[SSDGeometry] = None,
        timing: Optional[SSDTimingModel] = None,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        self.sim = sim
        self.geometry = geometry or SSDGeometry()
        self.timing = timing or SSDTimingModel(page_size=self.geometry.page_size)
        if self.timing.page_size != self.geometry.page_size:
            raise ValueError("timing model and geometry disagree on page size")
        self.stats = stats if stats is not None else IOStatistics()
        self._pages: Dict[int, bytearray] = {}
        self.channels = [
            _Channel(sim, self.geometry, i) for i in range(self.geometry.channels)
        ]
        #: Sanitizer-mode invariant checks (``None`` when disabled).
        self.sanitizer = getattr(sim, "sanitizer", None)

    # ------------------------------------------------------------------
    # Functional data plane (no simulated time)
    # ------------------------------------------------------------------
    def write_page(self, page_index: int, data: bytes, offset: int = 0) -> None:
        """Store ``data`` into a physical page at ``offset`` (functional)."""
        page_size = self.geometry.page_size
        if not 0 <= page_index < self.geometry.total_pages:
            raise ValueError(f"page index {page_index} out of range")
        if offset < 0 or offset + len(data) > page_size:
            raise ValueError("write crosses the page boundary")
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(page_size)
            self._pages[page_index] = page
        page[offset : offset + len(data)] = data

    def peek(self, page_index: int, col: int = 0, size: Optional[int] = None) -> bytes:
        """Read page contents without consuming simulated time."""
        page_size = self.geometry.page_size
        if size is None:
            size = page_size - col
        if col < 0 or col + size > page_size:
            raise ValueError("read crosses the page boundary")
        page = self._pages.get(page_index)
        if page is None:
            return bytes(size)
        return bytes(page[col : col + size])

    def peek_vectors(self, page_indices, cols, size: int) -> np.ndarray:
        """Batched functional read of fixed-size fp32 vectors.

        Equivalent to ``np.frombuffer(peek(page, col, size), float32)``
        per request (unwritten pages read as zeros), as one gather over
        the touched pages.  ``size`` must be a multiple of 4.
        """
        page_size = self.geometry.page_size
        if size % 4 != 0:
            raise ValueError(f"vector size {size} is not a whole number of fp32")
        page_indices = np.asarray(page_indices, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if cols.size and bool(((cols < 0) | (cols + size > page_size)).any()):
            raise ValueError("read crosses the page boundary")
        touched, inverse = np.unique(page_indices, return_inverse=True)
        page_bytes = np.zeros((len(touched), page_size), dtype=np.uint8)
        for position, page_index in enumerate(touched.tolist()):
            page = self._pages.get(page_index)
            if page is not None:
                page_bytes[position] = np.frombuffer(bytes(page), dtype=np.uint8)
        if cols.size == 0 or bool((cols % 4 == 0).all()):
            # Vector-aligned columns (the layout always aligns): gather
            # whole fp32 words instead of bytes.
            page_words = page_bytes.view(np.float32)
            return page_words[
                inverse[:, None],
                cols[:, None] // 4 + np.arange(size // 4, dtype=np.int64),
            ]
        gathered = page_bytes[
            inverse[:, None], cols[:, None] + np.arange(size, dtype=np.int64)
        ]
        return gathered.view(np.float32)

    @property
    def written_pages(self) -> int:
        return len(self._pages)

    def erase_block(self, page_index: int) -> None:
        """Erase the whole block containing ``page_index`` (functional).

        Real flash erases at block granularity; the sanitizer's
        erase-before-write tracking keys off this call, so a rewrite of
        a timed-programmed page must erase its block first.
        """
        address = self.geometry.page_index_to_address(page_index)
        for page in range(self.geometry.pages_per_block):
            erased = PhysicalAddress(
                channel=address.channel,
                die=address.die,
                plane=address.plane,
                block=address.block,
                page=page,
            )
            flat = self.geometry.address_to_page_index(erased)
            self._pages.pop(flat, None)
            if self.sanitizer is not None:
                self.sanitizer.on_erase(flat)

    # ------------------------------------------------------------------
    # Timed read operations (DES processes)
    # ------------------------------------------------------------------
    def read_page_proc(self, page_index: int, to_host: bool = True) -> Generator:
        """Timed full-page read; returns the page bytes.

        ``to_host`` controls traffic accounting only: a page consumed
        inside the device (EMB-PageSum) does not cross the host link.
        """
        data = yield from self._read_proc(
            page_index, col=0, size=self.geometry.page_size, is_vector=False
        )
        self.stats.record_page_read(self.geometry.page_size, to_host=to_host)
        return data

    def read_vector_proc(self, page_index: int, col: int, size: int) -> Generator:
        """Timed vector-grained read of ``size`` bytes at ``col``."""
        data = yield from self._read_proc(page_index, col=col, size=size, is_vector=True)
        self.stats.record_vector_read(size)
        return data

    def write_page_proc(self, page_index: int, data: bytes, offset: int = 0) -> Generator:
        """Timed page program: bus-in transfer, then cell programming.

        Writes only matter for the ``RM_create_table`` setup phase; the
        inference path is read-only.  The die is held through the
        program (no cache-program pipelining).
        """
        address = self.geometry.page_index_to_address(page_index)
        channel = self.channels[address.channel]
        die = channel.dies[address.die]
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_program(page_index, component=channel.name)
            sanitizer.channel_enqueue(channel.name)
            sanitizer.check_latency(
                channel.name, "page_program_ns", self.timing.page_program_ns
            )
        yield self.sim.timeout(self.timing.request_overhead_ns)
        yield die.acquire()
        try:
            yield channel.bus.serve(self.timing.transfer_ns)
            yield self.sim.timeout(self.timing.page_program_ns)
        finally:
            die.release()
        self.write_page(page_index, data, offset)
        self.stats.record_host_transfer(write_bytes=len(data))
        if sanitizer is not None:
            sanitizer.channel_complete(channel.name)
        return page_index

    def _read_proc(
        self, page_index: int, col: int, size: int, is_vector: bool
    ) -> Generator:
        address = self.geometry.page_index_to_address(page_index, col)
        channel = self.channels[address.channel]
        die = channel.dies[address.die]
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.channel_enqueue(channel.name)
            sanitizer.check_latency(
                channel.name, "request_overhead_ns", self.timing.request_overhead_ns
            )
            sanitizer.check_latency(channel.name, "flush_ns", self.timing.flush_ns)
        # Request decode / FTL / path-buffer handling.
        yield self.sim.timeout(self.timing.request_overhead_ns)
        # Phase 1: flush the page into the die's page buffer.
        yield die.acquire()
        try:
            yield self.sim.timeout(self.timing.flush_ns)
            # Phase 2: shift the requested bytes over the shared bus.
            if is_vector:
                transfer_ns = self.timing.vector_transfer_ns(size)
            else:
                transfer_ns = self.timing.transfer_ns
            if sanitizer is not None:
                sanitizer.check_latency(channel.name, "transfer_ns", transfer_ns)
            yield channel.bus.serve(transfer_ns)
        finally:
            die.release()
        if sanitizer is not None:
            sanitizer.channel_complete(channel.name)
        return self.peek(page_index, col, size)

    # ------------------------------------------------------------------
    # Convenience: run a batch of reads to completion, return elapsed ns
    # ------------------------------------------------------------------
    def run_reads(self, requests, vector: bool, fast: Optional[bool] = None) -> float:
        """Issue ``requests`` concurrently and run the sim to completion.

        ``requests`` is an iterable of ``(page_index, col, size)``
        triples for vector reads or plain page indices for page reads.
        Returns elapsed simulated nanoseconds.

        ``fast=None`` defers to the ``RMSSD_FASTPATH`` flag: when the
        event queue is idle, the batch is replayed by
        :mod:`repro.ssd.fastpath` (same elapsed time, no per-request
        processes).  Any in-flight work — e.g. concurrent block I/O —
        forces the DES path, which is always the reference.
        """
        requests = list(requests)
        if fast is None:
            fast = fastpath.enabled()
        if fast and requests and self.sim.peek() is None:
            return self._run_reads_fast(requests, vector)
        start = self.sim.now
        events = []
        for request in requests:
            if vector:
                page_index, col, size = request
                events.append(self.sim.process(self.read_vector_proc(page_index, col, size)))
            else:
                events.append(self.sim.process(self.read_page_proc(request)))
        self.sim.run()
        del events
        return self.sim.now - start

    def _run_reads_fast(self, requests, vector: bool) -> float:
        """Vectorized replay of :meth:`run_reads` (bitwise-equal time)."""
        start = self.sim.now
        count = len(requests)
        page_size = self.geometry.page_size
        if vector:
            pages = np.fromiter((r[0] for r in requests), np.int64, count)
            cols = np.fromiter((r[1] for r in requests), np.int64, count)
            sizes = np.fromiter((r[2] for r in requests), np.int64, count)
            transfer_ns = self.timing.vector_transfer_ns_array(sizes)
        else:
            pages = np.fromiter(requests, np.int64, count)
            cols = np.zeros(count, dtype=np.int64)
            sizes = np.full(count, page_size, dtype=np.int64)
            transfer_ns = np.full(count, self.timing.transfer_ns)
        channel_ids, die_ids = self.geometry.split_page_indices(pages)
        if bool(((cols < 0) | (cols >= page_size)).any()):
            bad = int(cols[(cols < 0) | (cols >= page_size)][0])
            raise ValueError(f"column {bad} out of range [0, {page_size})")
        if bool(((cols + sizes) > page_size).any()):
            raise ValueError("read crosses the page boundary")
        # All request-overhead timeouts are scheduled in the same
        # round, so every read enters the flash stage at start + OH.
        enter_ns = np.full(count, start + self.timing.request_overhead_ns)
        _, end = fastpath.replay_reads(
            self, enter_ns, channel_ids, die_ids, transfer_ns, staged=False
        )
        if vector:
            self.stats.record_vector_reads(count, int(sizes.sum()))
        else:
            self.stats.record_page_reads(count, page_size, to_host=True)
        self.sim.run(until=end)
        return self.sim.now - start

    def address_of(self, address: PhysicalAddress) -> int:
        """Flat page index of a structured physical address."""
        return self.geometry.address_to_page_index(address)
