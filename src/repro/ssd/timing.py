"""Table II timing model of the emulated SSD.

All constants come straight from the paper (Section V and Table II):

* The FPGA controller runs at 200 MHz, so one cycle is 5 ns.
* A full page read takes ``Tpage = 20 us`` (``Cpage = 4000`` cycles).
* ``Tpage`` splits into the flash-cell-to-page-buffer *flush* and the
  page-buffer-to-controller *transfer* at a 7:3 ratio (the ratio the
  authors attribute to an industry partner), i.e. ``Tflush = 0.7 Tpage``
  and ``Ttrans = 0.3 Tpage``.
* A vector-grained read transfers only ``EVsize`` of the page:
  ``Tev = (EVsize / Psize) * Ttrans + Tflush``.  In cycles at 4 KB
  pages this is the paper's ``CEV = 0.293 * EVsize + 2800`` (because
  ``0.3 * 4000 / 4096 = 0.29297``).

Timing is expressed in **nanoseconds** throughout the simulator.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SSDTimingModel:
    """Latency formulas for the emulated flash array."""

    clock_hz: float = 200e6
    page_read_us: float = 20.0
    flush_fraction: float = 0.7
    page_size: int = 4096
    #: Fixed per-request controller/FTL handling cost (command decode,
    #: FTL lookup, path-buffer bookkeeping).  Small relative to flash
    #: latency; calibrated so 4K random read lands near Table II's
    #: 45K IOPS at queue depth ~1 per channel.
    request_overhead_cycles: int = 300
    #: Page program time.  Table II only specifies the read path; 200 us
    #: is typical for the MLC-class flash the emulation mimics.  Writes
    #: only matter for the RM_create_table setup phase.
    page_program_us: float = 200.0

    def __post_init__(self) -> None:
        if not 0.0 < self.flush_fraction < 1.0:
            raise ValueError("flush_fraction must be in (0, 1)")
        if self.page_size < 1 or self.page_read_us <= 0 or self.clock_hz <= 0:
            raise ValueError("invalid timing parameters")

    # ------------------------------------------------------------------
    # Cycle/time conversions
    # ------------------------------------------------------------------
    @property
    def cycle_ns(self) -> float:
        """Duration of one controller cycle in ns (5 ns at 200 MHz)."""
        return 1e9 / self.clock_hz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.cycle_ns

    # ------------------------------------------------------------------
    # Core latencies (cycles)
    # ------------------------------------------------------------------
    @property
    def page_read_cycles(self) -> float:
        """``Cpage``: 4000 cycles for the default 20 us page read."""
        return self.page_read_us * 1e3 / self.cycle_ns

    @property
    def flush_cycles(self) -> float:
        """Cell-array-to-page-buffer flush (``0.7 * Cpage`` = 2800)."""
        return self.flush_fraction * self.page_read_cycles

    @property
    def transfer_cycles(self) -> float:
        """Full-page buffer-to-controller transfer (``0.3 * Cpage``)."""
        return (1.0 - self.flush_fraction) * self.page_read_cycles

    def vector_read_cycles(self, ev_size: int) -> float:
        """``CEV = (EVsize/Psize) * Ttrans + Tflush`` in cycles.

        For 4 KB pages this evaluates to ``0.293 * EVsize + 2800``,
        matching Table II.
        """
        if not 0 < ev_size <= self.page_size:
            raise ValueError(
                f"vector size {ev_size} must be in (0, page_size={self.page_size}]"
            )
        return (ev_size / self.page_size) * self.transfer_cycles + self.flush_cycles

    def vector_transfer_cycles(self, ev_size: int) -> float:
        """Bus-occupancy portion of a vector read (transfer only)."""
        if not 0 < ev_size <= self.page_size:
            raise ValueError("vector size out of range")
        return (ev_size / self.page_size) * self.transfer_cycles

    # ------------------------------------------------------------------
    # Core latencies (ns)
    # ------------------------------------------------------------------
    @property
    def page_read_ns(self) -> float:
        return self.cycles_to_ns(self.page_read_cycles)

    @property
    def flush_ns(self) -> float:
        return self.cycles_to_ns(self.flush_cycles)

    @property
    def transfer_ns(self) -> float:
        return self.cycles_to_ns(self.transfer_cycles)

    def vector_read_ns(self, ev_size: int) -> float:
        return self.cycles_to_ns(self.vector_read_cycles(ev_size))

    def vector_transfer_ns(self, ev_size: int) -> float:
        return self.cycles_to_ns(self.vector_transfer_cycles(ev_size))

    def vector_transfer_ns_array(self, ev_sizes) -> np.ndarray:
        """Batched :meth:`vector_transfer_ns`.

        Applies the scalar formula's float operations in the same
        association order, so each element is bitwise identical to the
        scalar result for that size.
        """
        ev_sizes = np.asarray(ev_sizes, dtype=np.float64)
        if ev_sizes.size and not bool(
            ((ev_sizes > 0) & (ev_sizes <= self.page_size)).all()
        ):
            raise ValueError("vector size out of range")
        return ((ev_sizes / self.page_size) * self.transfer_cycles) * self.cycle_ns

    @property
    def request_overhead_ns(self) -> float:
        return self.cycles_to_ns(self.request_overhead_cycles)

    @property
    def page_program_ns(self) -> float:
        """Page program (write) time in ns."""
        return self.page_program_us * 1e3

    @property
    def program_ns(self) -> float:
        """Deprecated alias for :attr:`page_program_ns`.

        The bare name does not say *what* is being programmed nor pair
        with a ``*_us`` source field, so the unit-suffix lint steers
        code to the explicit accessor.
        """
        warnings.warn(
            "SSDTimingModel.program_ns is deprecated; "
            "use page_program_ns instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.page_program_ns

    # ------------------------------------------------------------------
    # Derived headline numbers
    # ------------------------------------------------------------------
    def random_read_iops_bound(self, channels: int, queue_depth_per_channel: int = 1) -> float:
        """Upper bound on 4K random read IOPS.

        At queue depth 1 per channel each read costs a full page read
        plus the request overhead, serialized on its channel.
        """
        per_read_ns = self.page_read_ns + self.request_overhead_ns
        per_channel = queue_depth_per_channel / (per_read_ns / 1e9)
        return channels * per_channel
