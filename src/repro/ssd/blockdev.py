"""Host-facing block device with a tiny extent-based file layer.

The paper stores embedding tables "as normal files" through the file
system, then ships each file's extent list (start LBA + length) to the
device so the EV Translator can resolve indices without the host
(Section IV-D, ``RM_create_table`` / ``RM_open_table``).

:class:`BlockDevice` provides exactly that much of a file system: named
files allocated as extents of logical pages, functional read/write, and
timed page reads on the simulation clock.  Real file systems fragment
files across several extents; an allocation policy knob lets tests
exercise multi-extent translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.sim import Simulator
from repro.ssd.controller import SSDController


@dataclass(frozen=True)
class Extent:
    """A contiguous run of logical pages belonging to one file."""

    start_lba: int
    page_count: int

    @property
    def end_lba(self) -> int:
        return self.start_lba + self.page_count

    def byte_range(self, page_size: int) -> tuple:
        return self.start_lba * page_size, self.end_lba * page_size


@dataclass
class FileHandle:
    """A named file: its extents plus its logical size in bytes."""

    name: str
    size_bytes: int
    extents: List[Extent]

    def extent_for_offset(self, byte_offset: int, page_size: int) -> tuple:
        """Map a file-relative byte offset to ``(extent, device_offset)``."""
        if not 0 <= byte_offset < self.size_bytes:
            raise ValueError(f"offset {byte_offset} outside file {self.name!r}")
        remaining = byte_offset
        for extent in self.extents:
            extent_bytes = extent.page_count * page_size
            if remaining < extent_bytes:
                return extent, extent.start_lba * page_size + remaining
            remaining -= extent_bytes
        raise ValueError(f"offset {byte_offset} beyond extents of {self.name!r}")


class BlockDevice:
    """Extent-allocating block device over an :class:`SSDController`."""

    def __init__(
        self,
        controller: SSDController,
        max_extent_pages: Optional[int] = None,
    ) -> None:
        self.controller = controller
        self.page_size = controller.geometry.page_size
        #: Splitting allocations into extents of at most this many pages
        #: emulates file-system fragmentation.  ``None`` = one extent.
        self.max_extent_pages = max_extent_pages
        self._files: Dict[str, FileHandle] = {}
        self._next_lba = 0

    @property
    def sim(self) -> Simulator:
        return self.controller.sim

    # ------------------------------------------------------------------
    # File layer
    # ------------------------------------------------------------------
    def create_file(self, name: str, size_bytes: int) -> FileHandle:
        """Allocate a file of ``size_bytes`` (page-granular extents)."""
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        if size_bytes <= 0:
            raise ValueError("file size must be positive")
        pages_needed = -(-size_bytes // self.page_size)
        if self._next_lba + pages_needed > self.controller.geometry.total_pages:
            raise RuntimeError("device is full")
        extents: List[Extent] = []
        remaining = pages_needed
        while remaining > 0:
            chunk = remaining
            if self.max_extent_pages is not None:
                chunk = min(chunk, self.max_extent_pages)
            extents.append(Extent(start_lba=self._next_lba, page_count=chunk))
            self._next_lba += chunk
            remaining -= chunk
        handle = FileHandle(name=name, size_bytes=size_bytes, extents=extents)
        self._files[name] = handle
        return handle

    def open_file(self, name: str) -> FileHandle:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def write_file(self, name: str, data: bytes, offset: int = 0) -> None:
        """Functional write of ``data`` at a file-relative offset."""
        handle = self.open_file(name)
        if offset + len(data) > handle.size_bytes:
            raise ValueError("write beyond end of file")
        cursor = 0
        while cursor < len(data):
            _, device_offset = handle.extent_for_offset(offset + cursor, self.page_size)
            # Stay within the current page so extents are respected.
            col = device_offset % self.page_size
            chunk = min(self.page_size - col, len(data) - cursor)
            self.controller.write_logical(device_offset, data[cursor : cursor + chunk])
            cursor += chunk
        self.controller.stats.record_host_transfer(write_bytes=len(data))

    def read_file(self, name: str, offset: int, size: int) -> bytes:
        """Functional read (no simulated time)."""
        handle = self.open_file(name)
        if offset + size > handle.size_bytes:
            raise ValueError("read beyond end of file")
        out = bytearray()
        cursor = 0
        while cursor < size:
            _, device_offset = handle.extent_for_offset(offset + cursor, self.page_size)
            col = device_offset % self.page_size
            chunk = min(self.page_size - col, size - cursor)
            out += self.controller.peek_logical(device_offset, chunk)
            cursor += chunk
        return bytes(out)

    # ------------------------------------------------------------------
    # Timed host reads (page-granular, as a file system would issue)
    # ------------------------------------------------------------------
    def read_file_pages_proc(self, name: str, offset: int, size: int) -> Generator:
        """Process: read the pages covering ``[offset, offset+size)``.

        This is the fileIO path of the SSD-S baseline: whole pages
        cross to the host even when only a vector is needed.
        """
        handle = self.open_file(name)
        if offset + size > handle.size_bytes:
            raise ValueError("read beyond end of file")
        first_page = offset // self.page_size
        last_page = (offset + size - 1) // self.page_size
        events = []
        for file_page in range(first_page, last_page + 1):
            _, device_offset = handle.extent_for_offset(
                file_page * self.page_size, self.page_size
            )
            lba = device_offset // self.page_size
            events.append(self.sim.process(self.controller.read_block_proc(lba)))
        results = yield self.sim.all_of(events)
        data = b"".join(request.data for request in results)
        start = offset - first_page * self.page_size
        return data[start : start + size]

    def device_offset_of(self, name: str, offset: int) -> int:
        """Device byte address of a file-relative offset (for EV path)."""
        handle = self.open_file(name)
        _, device_offset = handle.extent_for_offset(offset, self.page_size)
        return device_offset
