"""LRU page cache.

Used in two roles:

* the **OS page cache** of the naive SSD deployments (SSD-S caps it at
  1/4 of the embedding-table size, SSD-M at 1/2 — Section III-B);
* the **host-side embedding cache** of RecSSD (Section VI-C), where the
  cached unit is an embedding vector rather than a 4 KB page.

The unit is abstract: capacity and accesses are counted in *entries*,
each of a fixed ``entry_size`` in bytes (4096 for an OS page cache).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple


class LRUPageCache:
    """Fixed-capacity LRU map from keys to opaque values."""

    def __init__(self, capacity_entries: int, entry_size: int = 4096) -> None:
        if capacity_entries < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_entries = capacity_entries
        self.entry_size = entry_size
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def with_byte_capacity(cls, capacity_bytes: int, entry_size: int) -> "LRUPageCache":
        """Build a cache holding ``capacity_bytes`` worth of entries."""
        return cls(max(0, capacity_bytes // entry_size), entry_size)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_entries * self.entry_size

    def lookup(self, key: Hashable) -> Tuple[bool, Optional[object]]:
        """Probe the cache; a hit refreshes recency.

        Returns ``(hit, value)``.
        """
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def insert(self, key: Hashable, value: object = None) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        if self.capacity_entries == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def access(self, key: Hashable, value: object = None) -> bool:
        """Probe-and-fill in one step; returns whether it was a hit."""
        hit, _ = self.lookup(key)
        if not hit:
            self.insert(key, value)
        return hit

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        self._entries.clear()
        self.reset_stats()
